"""Unit tests for the standard-cell library."""

import numpy as np
import pytest

from repro.netlist.cells import (
    FEEDBACK_PORTS,
    LIBRARY,
    combinational_cells,
    get_cell,
    sequential_cells,
)
from repro.utils.errors import NetlistError

FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def reference(cell_name, bits):
    """Pure-Python reference semantics for every cell."""
    if cell_name == "IV":
        return 1 - bits[0]
    if cell_name == "BUF":
        return bits[0]
    if cell_name.startswith("AN"):
        return int(all(bits))
    if cell_name.startswith("ND"):
        return 1 - int(all(bits))
    if cell_name.startswith("OR"):
        return int(any(bits))
    if cell_name.startswith("NR"):
        return 1 - int(any(bits))
    if cell_name == "XOR2":
        return bits[0] ^ bits[1]
    if cell_name == "XNR2":
        return 1 - (bits[0] ^ bits[1])
    if cell_name == "MUX2":
        a, b, s = bits
        return b if s else a
    if cell_name == "AO2":
        return 1 - ((bits[0] & bits[1]) | (bits[2] & bits[3]))
    if cell_name == "AO3":
        return 1 - ((bits[0] & bits[1]) | bits[2])
    if cell_name == "OA2":
        return 1 - ((bits[0] | bits[1]) & (bits[2] | bits[3]))
    if cell_name == "OA3":
        return 1 - ((bits[0] | bits[1]) & bits[2])
    if cell_name == "TIE0":
        return 0
    if cell_name == "TIE1":
        return 1
    if cell_name == "DFF":
        return bits[0]
    if cell_name == "DFFR":
        return bits[0] & (1 - bits[1])
    if cell_name == "DFFE":
        d, e, q = bits
        return d if e else q
    raise AssertionError(f"no reference for {cell_name}")


@pytest.mark.parametrize("cell_name", sorted(LIBRARY))
def test_truth_table_matches_reference(cell_name):
    cell = LIBRARY[cell_name]
    for bits, out in cell.truth_table():
        assert out == reference(cell_name, bits), (cell_name, bits)


@pytest.mark.parametrize("cell_name", sorted(LIBRARY))
def test_packed_evaluation_matches_scalar(cell_name):
    """Cell functions behave identically on uint64 words."""
    cell = LIBRARY[cell_name]
    rng = np.random.default_rng(7)
    words = [rng.integers(0, 2**63, dtype=np.uint64)
             for _ in range(cell.n_inputs)]
    packed = cell.evaluate(words, FULL)
    for bit in range(8):  # spot-check several bit lanes
        bits = [int(word >> np.uint64(bit)) & 1 for word in words]
        expected = int(cell.function(bits, 1)) & 1
        assert (int(packed) >> bit) & 1 == expected


def test_inverting_tags_match_semantics():
    """The inverting flag agrees with the cell's all-zero/all-one rows."""
    for cell in LIBRARY.values():
        if cell.sequential or cell.n_inputs == 0:
            continue
        # An inverting cell maps the all-ones input to 0 for AND-ish
        # gates, or all-zeros to 1 for OR-ish gates; either way its
        # output differs from the non-inverting twin.  We assert the
        # flags chosen for the canonical families.
        if cell.name.startswith(("ND", "NR", "IV", "XNR", "AO", "OA")):
            assert cell.inverting, cell.name
        if cell.name.startswith(("AN", "OR2", "OR3", "OR4", "BUF",
                                 "XOR", "MUX")):
            assert not cell.inverting, cell.name


def test_output_probability_known_cases():
    an2 = get_cell("AN2")
    assert an2.output_probability([0.5, 0.5]) == pytest.approx(0.25)
    nd2 = get_cell("ND2")
    assert nd2.output_probability([0.5, 0.5]) == pytest.approx(0.75)
    xor2 = get_cell("XOR2")
    assert xor2.output_probability([0.5, 0.5]) == pytest.approx(0.5)
    iv = get_cell("IV")
    assert iv.output_probability([0.3]) == pytest.approx(0.7)
    mux = get_cell("MUX2")
    # P(out) = P(s)*P(b) + (1-P(s))*P(a)
    assert mux.output_probability([0.2, 0.8, 0.5]) == pytest.approx(0.5)


def test_output_probability_bad_arity():
    with pytest.raises(NetlistError):
        get_cell("AN2").output_probability([0.5])


def test_evaluate_bad_arity():
    with pytest.raises(NetlistError):
        get_cell("ND2").evaluate([1])


def test_get_cell_unknown():
    with pytest.raises(NetlistError):
        get_cell("NAND99")


def test_cell_partitions():
    combinational = set(combinational_cells())
    sequential = set(sequential_cells())
    assert combinational.isdisjoint(sequential)
    assert "DFF" in sequential and "ND2" in combinational
    assert "TIE0" not in combinational  # zero-input ties excluded


def test_feedback_ports_registered():
    assert FEEDBACK_PORTS == {"DFFE": "QFB"}
    assert LIBRARY["DFFE"].ports[-1] == "QFB"
