"""ECO mode: netlist diffing, the CSR adjacency cache, dirty-region
computation, and bitwise incremental-vs-full campaign equality."""

from __future__ import annotations

import re
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_netlist
from repro.core import AnalyzerConfig, EcoAnalysis, FaultCriticalityAnalyzer
from repro.features import extract_features, patch_features
from repro.fi import (
    EcoTraces,
    WorkloadFailure,
    compute_dirty_region,
    run_campaign,
    run_campaign_with_traces,
    run_eco_campaign,
    run_eco_transient_campaign,
    run_transient_campaign,
)
from repro.fi.eco import ECO_TRACES_NAME
from repro.netlist import (
    Netlist,
    check_equivalence,
    diff_netlists,
    from_verilog,
    to_verilog,
)
from repro.sim import design_workloads
from repro.utils.errors import EcoError, NetlistError

TWO_INPUT_CELLS = ("AN2", "ND2", "NR2", "OR2", "XOR2", "XNR2")


def _cell_swap(text: str, occurrence: int = 0) -> str:
    """Swap the Nth two-input combinational instance to the next cell
    in the rotation — a single-gate functional ECO, applied as text so
    the edited design goes through the real Verilog reader."""
    pattern = rf"\b({'|'.join(TWO_INPUT_CELLS)}) (\w+) "
    matches = list(re.finditer(pattern, text))
    assert matches, "no two-input combinational gates to edit"
    match = matches[occurrence % len(matches)]
    old_cell = match.group(1)
    new_cell = TWO_INPUT_CELLS[
        (TWO_INPUT_CELLS.index(old_cell) + 1) % len(TWO_INPUT_CELLS)
    ]
    return (
        text[: match.start()]
        + f"{new_cell} {match.group(2)} "
        + text[match.end():]
    )


def _assert_campaigns_bitwise(result, reference):
    assert [f.node_name for f in result.faults] == [
        f.node_name for f in reference.faults
    ]
    assert np.array_equal(result.error_cycles, reference.error_cycles)
    assert np.array_equal(
        result.detection_cycle, reference.detection_cycle
    )
    assert np.array_equal(result.latent, reference.latent)
    assert not result.failures and not reference.failures


@pytest.fixture(scope="module")
def eco_pair():
    """(old, new, workloads): a random sequential design and a
    single-gate cell-swap ECO of it, both via the Verilog reader."""
    built = random_netlist(n_inputs=6, n_gates=36, n_flops=5,
                           n_outputs=4, seed=23, name="ecokit")
    text = to_verilog(built)
    old = from_verilog(text)
    new = from_verilog(_cell_swap(text, occurrence=5))
    workloads = design_workloads(old.name, old, count=3, cycles=32,
                                 seed=1)
    return old, new, workloads


@pytest.fixture(scope="module")
def base_campaign(eco_pair):
    old, _, workloads = eco_pair
    return run_campaign(old, workloads)


@pytest.fixture(scope="module")
def full_new_campaign(eco_pair):
    _, new, workloads = eco_pair
    return run_campaign(new, workloads)


# ----------------------------------------------------------------------
# netlist diffing
# ----------------------------------------------------------------------
def _tiny() -> Netlist:
    netlist = Netlist("tiny_eco")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y = netlist.add_gate("AN2", [a, b], instance="U1")
    z = netlist.add_gate("IV", [a], instance="U2")
    netlist.add_output(y, "y")
    netlist.add_output(z, "z")
    return netlist


def test_diff_identical_designs_is_empty(eco_pair):
    old, _, _ = eco_pair
    again = from_verilog(to_verilog(old))
    diff = diff_netlists(old, again)
    assert diff.is_empty
    assert diff.n_edits == 0
    assert "no structural differences" in diff.summary()


def test_diff_reports_cell_swap(eco_pair):
    old, new, _ = eco_pair
    diff = diff_netlists(old, new)
    assert not diff.is_empty
    assert len(diff.changed_gates) == 1
    change = diff.changed_gates[0]
    assert change.cell_changed
    assert change.old_inputs == change.new_inputs
    assert change.instance in diff.summary()


def test_diff_reports_added_and_removed_gates():
    old = _tiny()
    new = _tiny()
    extra = new.add_gate("IV", [new.net_index("n_U1")], instance="U9")
    diff = diff_netlists(old, new)
    assert diff.added_gates == ("U9",)
    assert not diff.removed_gates
    reverse = diff_netlists(new, old)
    assert reverse.removed_gates == ("U9",)
    assert extra is not None


def test_diff_reports_redriven_output():
    old = _tiny()
    new = Netlist("tiny_eco")
    a = new.add_input("a")
    b = new.add_input("b")
    y = new.add_gate("AN2", [a, b], instance="U1")
    z = new.add_gate("IV", [a], instance="U2")
    new.add_output(z, "y")        # port y now bound to the inverter
    new.add_output(y, "z")
    diff = diff_netlists(old, new)
    assert set(diff.redriven_outputs) == {"y", "z"}


# ----------------------------------------------------------------------
# CSR adjacency cache (satellite: shared fanin/fanout substrate)
# ----------------------------------------------------------------------
def test_adjacency_matches_list_scan(eco_pair):
    old, _, _ = eco_pair
    adjacency = old.gate_adjacency()
    for gate in old.gates:
        drivers = []
        for net in gate.inputs:
            driver = old.nets[net].driver
            if (driver is not None and driver != gate.index
                    and driver not in drivers):
                drivers.append(driver)
        readers = []
        for sink_gate, _ in old.nets[gate.output].sinks:
            if sink_gate != gate.index and sink_gate not in readers:
                readers.append(sink_gate)
        assert old.fanin_gates(gate) == drivers
        assert old.fanout_gates(gate) == readers
        assert adjacency.fanin_row(gate.index).tolist() == drivers


def test_adjacency_cache_invalidated_by_mutation():
    netlist = _tiny()
    u1 = netlist.gate_by_instance("U1")
    assert netlist.fanout_gates(u1) == []
    first = netlist.gate_adjacency()
    assert netlist.gate_adjacency() is first        # cached
    netlist.add_gate("IV", [netlist.net_index("n_U1")], instance="U3")
    assert netlist.gate_adjacency() is not first    # invalidated
    u3 = netlist.gate_by_instance("U3")
    assert netlist.fanout_gates(u1) == [u3.index]
    # add_output changes fanout connection counts (PO ports count).
    before = netlist.fanout_count(u3)
    netlist.add_output(u3.output, "tap")
    assert netlist.fanout_count(u3) == before + 1


# ----------------------------------------------------------------------
# check_equivalence(outputs=...) (satellite)
# ----------------------------------------------------------------------
def test_equivalence_output_subset():
    old = _tiny()
    new = Netlist("tiny_eco")
    a = new.add_input("a")
    b = new.add_input("b")
    y = new.add_gate("AN2", [a, b], instance="U1")
    z = new.add_gate("BUF", [a], instance="U2")   # was an inverter
    new.add_output(y, "y")
    new.add_output(z, "z")
    full = check_equivalence(old, new, workloads=2, cycles=16)
    assert not full.equivalent
    assert full.counterexample.output == "z"
    subset = check_equivalence(old, new, workloads=2, cycles=16,
                               outputs=["y"])
    assert subset.equivalent
    with pytest.raises(NetlistError):
        check_equivalence(old, new, outputs=["nope"])


# ----------------------------------------------------------------------
# dirty regions
# ----------------------------------------------------------------------
def test_dirty_region_empty_for_identical(eco_pair):
    old, _, _ = eco_pair
    region = compute_dirty_region(old, from_verilog(to_verilog(old)))
    assert region.n_dirty == 0
    assert not region.affected_outputs
    assert set(region.clean_outputs) == set(old.output_names())


def test_dirty_region_covers_edit(eco_pair):
    old, new, _ = eco_pair
    diff = diff_netlists(old, new)
    region = compute_dirty_region(old, new, diff=diff)
    change = diff.changed_gates[0]
    edited = new.gate_by_instance(change.instance)
    assert region.is_dirty(edited.node_name)
    # affected + clean outputs partition the edited design's ports
    assert (set(region.affected_outputs) | set(region.clean_outputs)
            == set(new.output_names()))
    assert not (set(region.affected_outputs)
                & set(region.clean_outputs))
    assert "dirty" in region.summary()


# ----------------------------------------------------------------------
# incremental campaigns: bitwise equality against a full rerun
# ----------------------------------------------------------------------
def test_eco_campaign_bitwise_serial(eco_pair, base_campaign,
                                     full_new_campaign):
    old, new, workloads = eco_pair
    eco = run_eco_campaign(old, new, workloads, base=base_campaign)
    _assert_campaigns_bitwise(eco.result, full_new_campaign)
    assert eco.n_dirty + eco.n_reused == eco.n_faults
    assert 0.0 <= eco.reuse_fraction <= 1.0
    assert "re-simulated" in eco.summary()


def test_eco_campaign_bitwise_parallel_sharded(
        eco_pair, base_campaign, full_new_campaign, tmp_path):
    old, new, workloads = eco_pair
    eco = run_eco_campaign(
        old, new, workloads, base=base_campaign,
        jobs=2, shard_size=8,
        checkpoint_dir=tmp_path / "dirty",
    )
    _assert_campaigns_bitwise(eco.result, full_new_campaign)
    # resume of the dirty sub-campaign replays from checkpoints
    resumed = run_eco_campaign(
        old, new, workloads, base=base_campaign,
        jobs=2, shard_size=8,
        checkpoint_dir=tmp_path / "dirty", resume=True,
    )
    _assert_campaigns_bitwise(resumed.result, full_new_campaign)


def test_eco_campaign_collapsed_dirty_pass(eco_pair, base_campaign,
                                           full_new_campaign):
    old, new, workloads = eco_pair
    eco = run_eco_campaign(old, new, workloads, base=base_campaign,
                           collapse=True)
    _assert_campaigns_bitwise(eco.result, full_new_campaign)


@pytest.mark.parametrize("collapse", [False, True])
def test_eco_campaign_from_checkpoint_store(
        eco_pair, full_new_campaign, tmp_path, collapse):
    old, new, workloads = eco_pair
    store = tmp_path / f"base-{collapse}"
    run_campaign(old, workloads, collapse=collapse,
                 checkpoint_dir=store)
    eco = run_eco_campaign(old, new, workloads,
                           base_checkpoint_dir=store)
    _assert_campaigns_bitwise(eco.result, full_new_campaign)
    assert eco.base_seconds > 0.0


# ----------------------------------------------------------------------
# typed refusals — never a silent merge
# ----------------------------------------------------------------------
def test_eco_requires_exactly_one_baseline(eco_pair, base_campaign,
                                           tmp_path):
    old, new, workloads = eco_pair
    with pytest.raises(EcoError, match="exactly one"):
        run_eco_campaign(old, new, workloads)
    with pytest.raises(EcoError, match="exactly one"):
        run_eco_campaign(old, new, workloads, base=base_campaign,
                         base_checkpoint_dir=tmp_path)


def test_eco_refuses_interface_change(eco_pair, base_campaign):
    old, _, workloads = eco_pair
    widened = random_netlist(n_inputs=7, n_gates=20, n_flops=3,
                             n_outputs=3, seed=2, name="ecokit")
    with pytest.raises(EcoError, match="primary-input"):
        run_eco_campaign(old, widened, workloads, base=base_campaign)


def test_eco_refuses_failed_base(eco_pair, base_campaign):
    old, new, workloads = eco_pair
    failed = replace(base_campaign, failures=[WorkloadFailure(
        workload=workloads[0].name, status="timeout", attempts=1,
        elapsed_seconds=0.0, error="synthetic",
    )])
    with pytest.raises(EcoError, match="incomplete"):
        run_eco_campaign(old, new, workloads, base=failed)


def test_eco_refuses_wrong_base_design(eco_pair):
    old, new, workloads = eco_pair
    other = random_netlist(n_inputs=6, n_gates=20, n_flops=3,
                           n_outputs=3, seed=9, name="elsewhere")
    other_workloads = design_workloads(other.name, other, count=3,
                                       cycles=32, seed=1)
    foreign = run_campaign(other, other_workloads)
    with pytest.raises(EcoError, match="was run on"):
        run_eco_campaign(old, new, workloads, base=foreign)


def test_eco_refuses_bad_checkpoint_store(eco_pair, tmp_path):
    old, new, workloads = eco_pair
    with pytest.raises(EcoError, match="no manifest"):
        run_eco_campaign(old, new, workloads,
                         base_checkpoint_dir=tmp_path / "empty")
    # a store from a different stimulus suite: fingerprint mismatch
    other_suite = design_workloads(old.name, old, count=3, cycles=48,
                                   seed=1)
    store = tmp_path / "other"
    run_campaign(old, other_suite, checkpoint_dir=store)
    with pytest.raises(EcoError, match="different campaign"):
        run_eco_campaign(old, new, workloads,
                         base_checkpoint_dir=store)


# ----------------------------------------------------------------------
# transient (SEU) incremental campaigns
# ----------------------------------------------------------------------
def test_eco_transient_bitwise(eco_pair):
    old, new, workloads = eco_pair
    base = run_transient_campaign(old, workloads,
                                  injections_per_flop=2, seed=7)
    full = run_transient_campaign(new, workloads,
                                  injections_per_flop=2, seed=7)
    eco = run_eco_transient_campaign(old, new, workloads, base=base,
                                     injections_per_flop=2, seed=7)
    _assert_campaigns_bitwise(eco.result, full)


# ----------------------------------------------------------------------
# incremental features
# ----------------------------------------------------------------------
def test_patch_features_bitwise(eco_pair):
    old, new, workloads = eco_pair
    region = compute_dirty_region(old, new)
    base = extract_features(old, workloads=workloads)
    fresh = extract_features(new, workloads=workloads)
    patched = patch_features(base, new, region.dirty_nodes,
                             workloads=workloads)
    assert patched.feature_names == fresh.feature_names
    assert patched.node_names == fresh.node_names
    assert np.array_equal(patched.matrix, fresh.matrix)


def test_patch_features_refuses_foreign_region(eco_pair):
    old, _, workloads = eco_pair
    base = extract_features(old, workloads=workloads)
    stranger = random_netlist(n_inputs=6, n_gates=20, n_flops=3,
                              n_outputs=3, seed=31, name="ecokit")
    with pytest.raises(EcoError, match="missing from the feature"):
        patch_features(base, stranger, frozenset(),
                       workloads=design_workloads(
                           stranger.name, stranger, count=2,
                           cycles=16, seed=0))


# ----------------------------------------------------------------------
# analyzer integration
# ----------------------------------------------------------------------
def test_analyzer_eco_update(eco_pair):
    old, new, workloads = eco_pair
    config = AnalyzerConfig(n_workloads=3, workload_cycles=32, seed=1)
    analyzer = FaultCriticalityAnalyzer(old, config,
                                        workloads=workloads)
    update = analyzer.eco_update(new)
    assert isinstance(update, EcoAnalysis)

    reference = FaultCriticalityAnalyzer(new, config,
                                         workloads=workloads)
    _assert_campaigns_bitwise(update.campaign, reference.campaign)
    assert np.array_equal(update.features.matrix,
                          reference.features.matrix)
    assert np.array_equal(update.data.x, reference.data.x)
    assert np.array_equal(update.data.y_score, reference.data.y_score)
    # transferred weights, not retrained: identical parameter tensors
    for moved, trained in zip(update.classifier.model.parameters(),
                              analyzer.classifier.model.parameters()):
        assert np.array_equal(moved.value, trained.value)
    assert update.predictions().shape == (new.n_gates,)
    assert update.scores().shape == (new.n_gates,)
    summary = update.summary()
    assert summary["edits"] == 1
    assert summary["faults_reused"] == update.eco.n_reused

    seeded = update.as_analyzer(config=config, workloads=workloads)
    assert seeded.campaign is update.campaign
    assert seeded.features is update.features


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_campaign_eco(tmp_path, capsys):
    from repro.__main__ import main

    base_dir = tmp_path / "ckpt"
    common = ["campaign", "or1200_icfsm", "--workloads", "2",
              "--cycles", "40"]
    assert main(common + ["--checkpoint-dir", str(base_dir)]) == 0
    capsys.readouterr()

    text = to_verilog(
        __import__("repro.circuits", fromlist=["build_or1200_icfsm"]
                   ).build_or1200_icfsm()
    )
    edited = tmp_path / "edited.v"
    edited.write_text(_cell_swap(text, occurrence=3),
                      encoding="utf-8")

    assert main(common + ["--eco", str(edited),
                          "--base-checkpoint-dir", str(base_dir)]) == 0
    out = capsys.readouterr().out
    assert "ECO diff" in out
    assert "fault reuse" in out

    # --eco without a baseline store is a usage error
    assert main(common + ["--eco", str(edited)]) == 2
    # incompatible store (different cycle count) is refused, exit 2
    assert main(["campaign", "or1200_icfsm", "--workloads", "2",
                 "--cycles", "60", "--eco", str(edited),
                 "--base-checkpoint-dir", str(base_dir)]) == 2
    err = capsys.readouterr().err
    assert "cannot reuse baseline" in err


# ----------------------------------------------------------------------
# trace-merge fast path: baseline traces + packed support-cone pass
# ----------------------------------------------------------------------
def test_campaign_with_traces_bitwise(eco_pair, tmp_path):
    """Recording traces must not perturb the campaign itself."""
    old, _, workloads = eco_pair
    plain = run_campaign(old, workloads, collapse=False)
    traced, traces = run_campaign_with_traces(
        old, workloads, checkpoint_dir=tmp_path / "base",
    )
    _assert_campaigns_bitwise(traced, plain)
    assert traces.output_names == old.output_names()
    assert traces.flop_names == [
        gate.node_name for gate in old.sequential_gates()
    ]
    assert len(traces.output_diff) == len(workloads)
    assert (tmp_path / "base" / ECO_TRACES_NAME).exists()


def test_eco_trace_merge_bitwise(eco_pair, full_new_campaign,
                                 tmp_path, monkeypatch):
    """With a trace sidecar the ECO never re-simulates the full cone:
    the dirty rows come from the packed support-cone pass, so the
    fallback CampaignRunner must never be instantiated."""
    old, new, workloads = eco_pair
    store = tmp_path / "base"
    run_campaign_with_traces(old, workloads, checkpoint_dir=store)

    from repro.fi import runner as runner_module

    def _no_fallback(*args, **kwargs):
        raise AssertionError("trace merge fell back to a cone rerun")

    monkeypatch.setattr(runner_module, "CampaignRunner", _no_fallback)
    eco = run_eco_campaign(old, new, workloads,
                           base_checkpoint_dir=store)
    _assert_campaigns_bitwise(eco.result, full_new_campaign)


def test_eco_trace_merge_nonuniform_cycles(tmp_path):
    """Mixed workload lengths skip the packed pass but stay bitwise."""
    built = random_netlist(n_inputs=5, n_gates=30, n_flops=4,
                           n_outputs=4, seed=41, name="mixedlen")
    text = to_verilog(built)
    old = from_verilog(text)
    new = from_verilog(_cell_swap(text, occurrence=3))
    short = design_workloads(old.name, old, count=2, cycles=24, seed=2)
    long = [
        replace(w, name=f"long-{w.name}")
        for w in design_workloads(old.name, old, count=1, cycles=40,
                                  seed=3)
    ]
    workloads = short + long

    base, traces = run_campaign_with_traces(old, workloads)
    full = run_campaign(new, workloads, collapse=False)
    eco = run_eco_campaign(old, new, workloads, base=base,
                           base_traces=traces)
    _assert_campaigns_bitwise(eco.result, full)


def test_eco_trace_merge_strobed_design(tmp_path):
    """The packed pass must reproduce per-workload strobe gating on a
    real evaluation design with golden-gated observation windows."""
    from repro.circuits import build_or1200_icfsm
    from repro.fi.observation import DESIGN_OBSERVATION, DESIGN_SEVERITY

    text = to_verilog(build_or1200_icfsm())
    old = from_verilog(text)
    new = from_verilog(_cell_swap(text, occurrence=11))
    workloads = design_workloads("or1200_icfsm", old, count=2,
                                 cycles=48, seed=4)
    spec = DESIGN_OBSERVATION["or1200_icfsm"]
    severity = DESIGN_SEVERITY["or1200_icfsm"]

    store = tmp_path / "base"
    run_campaign_with_traces(old, workloads, observation=spec,
                             severity=severity, checkpoint_dir=store)
    full = run_campaign(new, workloads, observation=spec,
                        severity=severity, collapse=False)
    eco = run_eco_campaign(old, new, workloads, observation=spec,
                           severity=severity,
                           base_checkpoint_dir=store)
    _assert_campaigns_bitwise(eco.result, full)


def test_eco_traces_roundtrip_and_corruption(eco_pair, tmp_path):
    old, _, workloads = eco_pair
    _, traces = run_campaign_with_traces(old, workloads)
    path = tmp_path / ECO_TRACES_NAME
    traces.save(path)
    loaded = EcoTraces.load(path)
    assert loaded.fingerprint == traces.fingerprint
    assert loaded.output_names == traces.output_names
    assert loaded.fault_keys() == traces.fault_keys()
    for left, right in zip(loaded.output_diff, traces.output_diff):
        assert np.array_equal(left, right)
    for left, right in zip(loaded.flop_end_diff, traces.flop_end_diff):
        assert np.array_equal(left, right)

    truncated = tmp_path / "truncated.npz"
    truncated.write_bytes(path.read_bytes()[:100])
    with pytest.raises(EcoError, match="corrupt or truncated"):
        EcoTraces.load(truncated)


def test_eco_refuses_foreign_trace_sidecar(eco_pair, tmp_path):
    """A sidecar whose fingerprint does not match the baseline store
    is a typed refusal, never a silent merge."""
    old, new, workloads = eco_pair
    store = tmp_path / "base"
    base, traces = run_campaign_with_traces(
        old, workloads, checkpoint_dir=store,
    )
    foreign = replace(traces, fingerprint="not-this-campaign")
    with pytest.raises(EcoError, match="different campaign"):
        run_eco_campaign(old, new, workloads, base=base,
                         base_traces=foreign)


# ----------------------------------------------------------------------
# property: random edits round-trip bitwise (satellite d)
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 999), edits=st.integers(1, 3),
       collapse=st.booleans())
def test_eco_random_edit_roundtrip(seed, edits, collapse):
    built = random_netlist(n_inputs=5, n_gates=28, n_flops=4,
                           n_outputs=4, seed=seed, name="hyp")
    text = to_verilog(built)
    edited_text = text
    for i in range(edits):
        edited_text = _cell_swap(edited_text, occurrence=seed + 7 * i)
    old, new = from_verilog(text), from_verilog(edited_text)
    workloads = design_workloads("hyp", old, count=2, cycles=24,
                                 seed=seed)

    base = run_campaign(old, workloads)
    full = run_campaign(new, workloads)
    eco = run_eco_campaign(old, new, workloads, base=base,
                           collapse=collapse)
    _assert_campaigns_bitwise(eco.result, full)

    base_t = run_transient_campaign(old, workloads,
                                    injections_per_flop=2, seed=seed)
    full_t = run_transient_campaign(new, workloads,
                                    injections_per_flop=2, seed=seed)
    eco_t = run_eco_transient_campaign(
        old, new, workloads, base=base_t,
        injections_per_flop=2, seed=seed,
    )
    _assert_campaigns_bitwise(eco_t.result, full_t)
