"""Tests for the reusable datapath blocks."""

import pytest

from repro.circuits import CircuitBuilder, down_timer, lfsr, shift_register, up_counter
from repro.netlist import validate
from repro.sim import Simulator
from repro.utils.errors import NetlistError


def read_word(outputs, prefix, width):
    return sum(outputs[f"{prefix}_{i}"] << i for i in range(width))


def test_up_counter_counts_and_wraps():
    builder = CircuitBuilder("ctr")
    reset = builder.input("rst")
    ports = up_counter(builder, 3, reset, with_wrap=True)
    builder.output_bus(ports.value, "q")
    builder.output(ports.wrap, "w")
    validate(builder.netlist)
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    values = []
    wraps = []
    for _ in range(10):
        out = sim.step({"rst": 0})
        values.append(read_word(out, "q", 3))
        wraps.append(out["w"])
    assert values == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
    assert wraps[7] == 1 and sum(wraps) == 1


def test_up_counter_enable_and_clear():
    builder = CircuitBuilder("ctr2")
    reset = builder.input("rst")
    enable = builder.input("en")
    clear = builder.input("clr")
    ports = up_counter(builder, 3, reset, enable=enable, clear=clear)
    builder.output_bus(ports.value, "q")
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    sim.step({"rst": 0, "en": 1})  # shows 0, commits 1
    sim.step({"en": 1})            # shows 1, commits 2
    out = sim.step({"en": 0})
    assert read_word(out, "q", 3) == 2
    out = sim.step({"en": 0})
    assert read_word(out, "q", 3) == 2  # held
    out = sim.step({"en": 1, "clr": 1})
    out = sim.step({"en": 0})
    assert read_word(out, "q", 3) == 0  # clear wins over enable


def test_down_timer():
    builder = CircuitBuilder("timer")
    reset = builder.input("rst")
    load = builder.input("ld")
    ports = down_timer(builder, 3, load_value=3, load=load, reset=reset)
    builder.output_bus(ports.value, "q")
    builder.output(ports.done, "done")
    validate(builder.netlist)
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    out = sim.step({"rst": 0, "ld": 1})
    assert out["done"] == 1  # still zero this cycle
    trace = []
    for _ in range(5):
        out = sim.step({"ld": 0})
        trace.append((read_word(out, "q", 3), out["done"]))
    assert trace == [(3, 0), (2, 0), (1, 0), (0, 1), (0, 1)]


def test_down_timer_load_value_range():
    builder = CircuitBuilder("bad")
    reset = builder.input("rst")
    load = builder.input("ld")
    with pytest.raises(NetlistError):
        down_timer(builder, 2, load_value=4, load=load, reset=reset)


def test_shift_register():
    builder = CircuitBuilder("shift")
    reset = builder.input("rst")
    serial = builder.input("si")
    stages = shift_register(builder, serial, 4, reset)
    builder.output_bus(stages, "q")
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    pattern = [1, 0, 1, 1]
    for bit in pattern:
        sim.step({"rst": 0, "si": bit})
    # Outputs show the committed state one step later; stage 0 is the
    # most recent bit.
    out = sim.step({"si": 0})
    assert [out[f"q_{i}"] for i in range(4)] == [1, 1, 0, 1]


def test_lfsr_full_period():
    builder = CircuitBuilder("lfsr")
    reset = builder.input("rst")
    state = lfsr(builder, 4, taps=[3, 2], reset=reset)  # x^4+x^3+1
    builder.output_bus(state, "q")
    validate(builder.netlist)
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    seen = []
    for _ in range(15):
        out = sim.step({"rst": 0})
        seen.append(read_word(out, "q", 4))
    assert len(set(seen)) == 15  # maximal-length sequence
    assert 0 not in seen


def test_lfsr_bad_taps():
    builder = CircuitBuilder("bad")
    reset = builder.input("rst")
    with pytest.raises(NetlistError):
        lfsr(builder, 4, taps=[9], reset=reset)


def test_counter_width_validation():
    builder = CircuitBuilder("bad")
    reset = builder.input("rst")
    with pytest.raises(NetlistError):
        up_counter(builder, 0, reset)


def test_fifo_controller_flags_and_pointers():
    from repro.circuits import CircuitBuilder, fifo_controller

    builder = CircuitBuilder("fifo")
    reset = builder.input("rst")
    write = builder.input("wr")
    read = builder.input("rd")
    ports = fifo_controller(builder, depth_bits=2, write=write,
                            read=read, reset=reset)
    builder.output(ports.full, "full")
    builder.output(ports.empty, "empty")
    builder.output_bus(ports.count, "cnt")
    builder.output_bus(ports.read_pointer, "rp")
    builder.output_bus(ports.write_pointer, "wp")
    from repro.netlist import validate
    validate(builder.netlist)

    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    out = sim.step({"rst": 0, "wr": 0, "rd": 0})
    assert out["empty"] == 1 and out["full"] == 0

    # Fill the 4-entry FIFO.
    for _ in range(4):
        out = sim.step({"wr": 1, "rd": 0})
    out = sim.step({"wr": 0, "rd": 0})
    assert out["full"] == 1 and out["empty"] == 0
    assert read_word(out, "cnt", 3) == 4
    assert read_word(out, "wp", 2) == 0  # wrapped modulo depth

    # Writes while full are ignored.
    sim.step({"wr": 1, "rd": 0})
    out = sim.step({"wr": 0, "rd": 0})
    assert read_word(out, "cnt", 3) == 4

    # Drain.
    for _ in range(4):
        out = sim.step({"wr": 0, "rd": 1})
    out = sim.step({"wr": 0, "rd": 0})
    assert out["empty"] == 1
    assert read_word(out, "rp", 2) == 0

    # Reads while empty are ignored.
    sim.step({"wr": 0, "rd": 1})
    out = sim.step({"wr": 0, "rd": 0})
    assert out["empty"] == 1


def test_fifo_simultaneous_read_write_holds_count():
    from repro.circuits import CircuitBuilder, fifo_controller

    builder = CircuitBuilder("fifo2")
    reset = builder.input("rst")
    write = builder.input("wr")
    read = builder.input("rd")
    ports = fifo_controller(builder, depth_bits=2, write=write,
                            read=read, reset=reset)
    builder.output_bus(ports.count, "cnt")
    builder.output(ports.full, "full")
    builder.output(ports.empty, "empty")
    builder.output_bus(ports.read_pointer, "rp")
    builder.output_bus(ports.write_pointer, "wp")
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    sim.step({"rst": 0, "wr": 1, "rd": 0})
    sim.step({"wr": 1, "rd": 0})  # two entries queued
    for _ in range(3):
        out = sim.step({"wr": 1, "rd": 1})  # streaming through
    out = sim.step({"wr": 0, "rd": 0})
    assert read_word(out, "cnt", 3) == 2  # count unchanged
    # Both pointers advanced by the streamed beats.
    assert read_word(out, "rp", 2) == 3 % 4
    assert read_word(out, "wp", 2) == (2 + 3) % 4


def test_fifo_depth_validation():
    from repro.circuits import CircuitBuilder, fifo_controller

    builder = CircuitBuilder("bad")
    reset = builder.input("rst")
    with pytest.raises(NetlistError):
        fifo_controller(builder, depth_bits=0, write=reset, read=reset,
                        reset=reset)
