"""Tests for 3-valued simulation and reset verification."""

import pytest

from repro.circuits import CircuitBuilder, build_uart
from repro.netlist import Netlist
from repro.sim.xsim import ONE, X, ZERO, XSimulator, reset_analysis
from repro.utils.errors import SimulationError


class TestXSimulator:
    def test_known_values_behave_two_valued(self, tiny_netlist):
        simulator = XSimulator(tiny_netlist)
        out = simulator.step({"a": 1, "b": 1})
        assert out["y"] == ONE and out["yn"] == ZERO
        out = simulator.step({"a": 0, "b": 1})
        assert out["y"] == ZERO and out["yn"] == ONE

    def test_x_propagates_through_and(self, tiny_netlist):
        simulator = XSimulator(tiny_netlist)
        out = simulator.step({"a": "x", "b": 1})
        assert out["y"] == X and out["yn"] == X

    def test_controlling_value_dominates_x(self, tiny_netlist):
        """AND with a controlling 0 is 0 even when the other input
        is X — exact 3-valued evaluation, not pessimism."""
        simulator = XSimulator(tiny_netlist)
        out = simulator.step({"a": "x", "b": 0})
        assert out["y"] == ZERO and out["yn"] == ONE

    def test_mux_select_x_with_equal_branches(self):
        """mux(X, v, v) = v: the exact evaluator sees through the
        unknown select when both branches agree."""
        builder = CircuitBuilder("m")
        a = builder.input("a")
        select = builder.input("s")
        builder.output(builder.mux(select, a, a), "y")
        simulator = XSimulator(builder.netlist)
        out = simulator.step({"a": 1, "s": "x"})
        assert out["y"] == ONE

    def test_flops_start_unknown(self):
        netlist = Netlist("f")
        a = netlist.add_input("a")
        flop = netlist.add_gate("DFF", [a])
        netlist.add_output(flop, "q")
        simulator = XSimulator(netlist)
        out = simulator.step({"a": 1})
        assert out["q"] == X            # power-on state
        out = simulator.step({"a": 1})
        assert out["q"] == ONE          # captured known value

    def test_reset_clears_x(self):
        netlist = Netlist("f")
        a = netlist.add_input("a")
        reset = netlist.add_input("rst")
        flop = netlist.add_gate("DFFR", [a, reset])
        netlist.add_output(flop, "q")
        simulator = XSimulator(netlist)
        simulator.step({"a": "x", "rst": 1})
        out = simulator.step({"a": 0, "rst": 0})
        assert out["q"] == ZERO

    def test_unknown_input_rejected(self, tiny_netlist):
        simulator = XSimulator(tiny_netlist)
        with pytest.raises(SimulationError):
            simulator.step({"zz": 1})


class TestResetAnalysis:
    def test_control_state_initializes(self, all_designs):
        """Every DFFR/one-hot FSM bit reaches a known value; only
        enable-only data registers may stay X."""
        for design in all_designs:
            report = reset_analysis(design, settle_cycles=6)
            stuck_control = [
                name for name in report.unknown_flops
                if not name.startswith("DFFE")
            ]
            assert stuck_control == [], design.name

    def test_unknown_outputs_are_strobed_buses(self, all_designs):
        """The post-reset X outputs are exactly the data buses the FI
        policy already strobes (invalid until qualified by a valid)."""
        from repro.fi.observation import DESIGN_OBSERVATION

        for design in all_designs:
            report = reset_analysis(design, settle_cycles=6)
            strobed_prefixes = tuple(
                DESIGN_OBSERVATION[design.name].strobes
            )
            for output in report.unknown_outputs:
                assert output.startswith(strobed_prefixes), (
                    design.name, output
                )

    def test_uart_with_idle_line(self):
        uart = build_uart()
        report = reset_analysis(uart, settle_cycles=6,
                                idle_inputs={"rxd": 1})
        control = [n for n in report.unknown_flops
                   if not n.startswith("DFFE")]
        assert control == []
        # txd drives the idle-high line once control state is known.
        assert "txd" not in report.unknown_outputs

    def test_fully_resettable_design(self):
        """A design whose every flop has a reset passes outright."""
        from repro.circuits import up_counter

        builder = CircuitBuilder("ctr")
        reset = builder.input("rst")
        ports = up_counter(builder, 4, reset)
        builder.output_bus(ports.value, "q")
        report = reset_analysis(builder.netlist, reset_input="rst")
        assert report.resettable

    def test_missing_reset_input(self, tiny_netlist):
        with pytest.raises(SimulationError):
            reset_analysis(tiny_netlist)
