"""Tests for campaign/dataset analysis views."""

import numpy as np
import pytest

from repro.fi import (
    always_latent_faults,
    campaign_summary,
    coverage_by_workload,
    criticality_by_cell_type,
    detection_latency_histogram,
    undetected_faults,
)


def test_criticality_by_cell_type(icfsm_analyzer):
    rows = criticality_by_cell_type(icfsm_analyzer.dataset)
    assert sum(row["nodes"] for row in rows) == (
        icfsm_analyzer.dataset.n_nodes
    )
    means = [row["mean criticality"] for row in rows]
    assert means == sorted(means, reverse=True)
    assert all(0.0 <= mean <= 1.0 for mean in means)
    prefixes = {row["cell type"] for row in rows}
    assert "DFFR" in prefixes


def test_detection_latency_histogram(icfsm_analyzer):
    campaign = icfsm_analyzer.campaign
    histogram = detection_latency_histogram(campaign)
    detected = (campaign.detection_cycle >= 0).sum()
    assert sum(histogram.values()) == detected
    assert list(histogram) == ["0-9 cycles", "10-49 cycles",
                               "50-99 cycles", ">= 100 cycles"]


def test_coverage_by_workload(icfsm_analyzer):
    campaign = icfsm_analyzer.campaign
    rows = coverage_by_workload(campaign)
    assert len(rows) == campaign.n_workloads
    for row in rows:
        assert row["dangerous faults"] <= row["observed faults"]


def test_latent_and_undetected_consistency(icfsm_analyzer):
    campaign = icfsm_analyzer.campaign
    latent = set(always_latent_faults(campaign))
    undetected = set(undetected_faults(campaign))
    # Always-latent implies never observed.
    assert latent <= undetected
    all_names = {fault.name for fault in campaign.faults}
    assert latent <= all_names and undetected <= all_names


def test_campaign_summary(icfsm_analyzer):
    summary = campaign_summary(icfsm_analyzer.campaign)
    assert summary["design"] == "or1200_icfsm"
    assert summary["experiments"] == (
        len(icfsm_analyzer.campaign.faults)
        * icfsm_analyzer.campaign.n_workloads
    )
    assert summary["always latent"] <= summary["never observed"]
