"""Tests for the GCN models and the five baseline classifiers."""

import numpy as np
import pytest

from repro.graph import GraphData, stratified_split
from repro.models import (
    BASELINE_NAMES,
    DecisionTree,
    GCNClassifier,
    GCNRegressor,
    make_classifier,
    registered_classifiers,
)
from repro.models.gcn import build_gcn_stack
from repro.nn import TrainingConfig
from repro.utils.errors import ModelError


def synthetic_graph(n=80, seed=0):
    """A graph dataset whose labels mix feature and neighborhood
    signal, so message passing genuinely helps."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    edges = [[], []]
    for node in range(n):
        for _ in range(3):
            other = int(rng.integers(n))
            if other != node:
                edges[0].append(node)
                edges[1].append(other)
    edge_index = np.array(edges)
    neighbor_mean = np.zeros(n)
    for source, target in edge_index.T:
        neighbor_mean[target] += x[source, 0]
    y = ((x[:, 0] + 0.5 * neighbor_mean) > 0).astype(np.int64)
    score = 1 / (1 + np.exp(-(x[:, 0] + 0.5 * neighbor_mean)))
    return GraphData(
        design="synthetic",
        node_names=[f"N_{i}" for i in range(n)],
        x=x, x_raw=x,
        edge_index=edge_index,
        y_class=y,
        y_score=score,
        feature_names=[f"f{i}" for i in range(4)],
    )


class TestGCNClassifier:
    def test_learns_synthetic_graph(self):
        data = synthetic_graph()
        split = stratified_split(data.y_class, 0.25, seed=1)
        model = GCNClassifier(
            seed=0, config=TrainingConfig(epochs=250, patience=60)
        )
        model.fit(data, split)
        assert model.accuracy(split.val_mask) >= 0.8
        # training-fold accuracy stays informative (weights restored to
        # the best *validation* epoch, so train can trail slightly)
        assert model.accuracy(split.train_mask) >= 0.7

    def test_predict_shapes_and_probabilities(self):
        data = synthetic_graph()
        split = stratified_split(data.y_class, 0.25, seed=1)
        model = GCNClassifier(seed=0,
                              config=TrainingConfig(epochs=50)).fit(
            data, split
        )
        probabilities = model.predict_proba()
        assert probabilities.shape == (data.n_nodes, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        predictions = model.predict()
        assert set(np.unique(predictions)) <= {0, 1}

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            GCNClassifier().predict()

    def test_table1_architecture(self):
        from repro.nn.modules import (
            Dropout,
            GCNConv,
            LogSoftmax,
            ReLU,
        )
        from repro.graph.adjacency import normalized_adjacency

        a_norm = normalized_adjacency(np.array([[0], [1]]), 2)
        stack = build_gcn_stack(5, 2, a_norm)
        kinds = [type(module).__name__ for module in stack.modules]
        assert kinds == [
            "GCNConv", "ReLU", "GCNConv", "ReLU", "Dropout",
            "GCNConv", "ReLU", "GCNConv", "LogSoftmax",
        ]
        convs = [m for m in stack.modules if isinstance(m, GCNConv)]
        dims = [conv.weight.shape for conv in convs]
        assert dims == [(5, 16), (16, 32), (32, 64), (64, 2)]
        dropout = [m for m in stack.modules if isinstance(m, Dropout)]
        assert dropout[0].p == pytest.approx(0.3)

    def test_row_normalization_variant(self):
        data = synthetic_graph()
        split = stratified_split(data.y_class, 0.25, seed=1)
        model = GCNClassifier(
            adjacency_mode="row", seed=0,
            config=TrainingConfig(epochs=80),
        ).fit(data, split)
        assert 0.4 <= model.accuracy(split.val_mask) <= 1.0


class TestGCNRegressor:
    def test_learns_scores(self):
        data = synthetic_graph()
        split = stratified_split(data.y_class, 0.25, seed=1)
        model = GCNRegressor(
            seed=0, config=TrainingConfig(epochs=300, lr=0.005,
                                          patience=80),
        ).fit(data, split)
        predictions = model.predict()
        assert predictions.shape == (data.n_nodes,)
        assert predictions.min() >= 0.0 and predictions.max() <= 1.0
        correlation = np.corrcoef(
            predictions[split.val_mask], data.y_score[split.val_mask]
        )[0, 1]
        assert correlation > 0.5

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            GCNRegressor().predict()


def blobs(n=120, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack([
        rng.normal(loc=-1.2, size=(half, 3)),
        rng.normal(loc=1.2, size=(n - half, 3)),
    ])
    y = np.array([0] * half + [1] * (n - half))
    order = rng.permutation(n)
    return x[order], y[order]


@pytest.mark.parametrize("name", BASELINE_NAMES)
class TestBaselines:
    def test_learns_blobs(self, name):
        x, y = blobs()
        model = make_classifier(name)
        model.fit(x[:90], y[:90])
        assert model.score(x[90:], y[90:]) >= 0.9

    def test_probabilities_valid(self, name):
        x, y = blobs()
        model = make_classifier(name).fit(x[:90], y[:90])
        probabilities = model.predict_proba(x[90:])
        assert probabilities.shape == (30, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert probabilities.min() >= 0.0

    def test_predict_before_fit(self, name):
        model = make_classifier(name)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 3)))

    def test_single_class_rejected(self, name):
        model = make_classifier(name)
        with pytest.raises(ModelError):
            model.fit(np.zeros((4, 2)), np.zeros(4))


def test_registry_contents():
    registry = registered_classifiers()
    assert set(BASELINE_NAMES) <= set(registry)
    with pytest.raises(ModelError):
        make_classifier("XGB")


def test_baselines_handle_imbalance():
    """With 85/15 imbalance, balanced baselines should not collapse to
    the majority class."""
    rng = np.random.default_rng(5)
    n_major, n_minor = 170, 30
    x = np.vstack([
        rng.normal(loc=-1.0, size=(n_major, 3)),
        rng.normal(loc=1.0, size=(n_minor, 3)),
    ])
    y = np.array([0] * n_major + [1] * n_minor)
    for name in ("LoR", "RFC", "SVM", "EBM"):
        model = make_classifier(name).fit(x, y)
        predictions = model.predict(x)
        minority_recall = (predictions[y == 1] == 1).mean()
        assert minority_recall >= 0.6, name


def test_decision_tree_pure_split():
    x = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0, 0, 1, 1])
    tree = DecisionTree(max_depth=3, min_leaf=1)
    tree.fit(x, y)
    assert list(tree.predict_proba(x)) == [0.0, 0.0, 1.0, 1.0]


def test_svm_linear_kernel():
    x, y = blobs(seed=2)
    model = make_classifier("SVM", kernel="linear")
    model.fit(x[:90], y[:90])
    assert model.score(x[90:], y[90:]) >= 0.9
    with pytest.raises(ModelError):
        make_classifier("SVM", kernel="poly")


def test_ebm_contributions_shape():
    x, y = blobs(seed=3)
    model = make_classifier("EBM").fit(x, y)
    contributions = model.feature_contributions(x[:10])
    assert contributions.shape == (10, 3)
    # Contributions plus intercept reproduce the decision function.
    reconstructed = contributions.sum(axis=1) + model._intercept
    assert np.allclose(reconstructed, model.decision_function(x[:10]))


def test_gcn_transfer_to_other_graph():
    """Weights rebind to a different graph; same-graph transfer is an
    identity; feature mismatch is rejected."""
    from repro.models import GCNClassifier
    from repro.nn import TrainingConfig

    data = synthetic_graph(n=60, seed=0)
    other = synthetic_graph(n=45, seed=9)
    split = stratified_split(data.y_class, 0.25, seed=1)
    model = GCNClassifier(seed=0,
                          config=TrainingConfig(epochs=80)).fit(data, split)

    same = model.transfer_to(data)
    assert np.array_equal(same.predict(), model.predict())

    transferred = model.transfer_to(other)
    predictions = transferred.predict()
    assert predictions.shape == (other.n_nodes,)
    assert set(np.unique(predictions)) <= {0, 1}

    reduced = data.subset_features(["f0", "f1"])
    with pytest.raises(ModelError, match="features"):
        model.transfer_to(reduced)


def test_sage_classifier_learns():
    """The GraphSAGE variant trains and predicts on graph data."""
    data = synthetic_graph(n=80, seed=2)
    split = stratified_split(data.y_class, 0.25, seed=1)
    model = GCNClassifier(
        conv="sage", hidden_dims=(8, 8), dropout=0.0, seed=0,
        config=TrainingConfig(epochs=200, patience=60),
    ).fit(data, split)
    assert model.conv == "sage"
    assert model.adjacency_mode == "row" and not model.self_loops
    assert model.accuracy(split.val_mask) >= 0.7
    probabilities = model.predict_proba()
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    # Transfer also works for the SAGE variant.
    other = synthetic_graph(n=50, seed=5)
    assert model.transfer_to(other).predict().shape == (50,)


def test_unknown_conv_rejected():
    from repro.models.gcn import build_gcn_stack
    from repro.graph.adjacency import normalized_adjacency

    a_norm = normalized_adjacency(np.array([[0], [1]]), 2)
    with pytest.raises(ModelError):
        build_gcn_stack(4, 2, a_norm, conv="gat")
