"""Tests for graph construction, adjacency normalization, and splits."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.features import extract_features
from repro.fi import dataset_from_campaign, run_campaign
from repro.graph import (
    GraphData,
    adjacency_matrix,
    build_graph_data,
    netlist_edges,
    netlist_to_networkx,
    normalized_adjacency,
    stratified_split,
    undirected_edges,
)
from repro.sim import design_workloads
from repro.utils.errors import ModelError


def test_netlist_edges_tiny(tiny_netlist):
    edges = netlist_edges(tiny_netlist)
    # Only AN2 -> IV.
    assert edges.shape == (2, 1)
    assert edges[0, 0] == 0 and edges[1, 0] == 1


def test_netlist_edges_deduplicate():
    from repro.netlist import Netlist

    netlist = Netlist("dup")
    a = netlist.add_input("a")
    inv = netlist.add_gate("IV", [a])
    both = netlist.add_gate("AN2", [inv, inv])
    netlist.add_output(both, "y")
    edges = netlist_edges(netlist)
    assert edges.shape == (2, 1)  # double connection = one edge


def test_undirected_edges():
    edges = np.array([[0, 1], [1, 2]])
    sym = undirected_edges(edges)
    pairs = set(zip(sym[0], sym[1]))
    assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}


def test_networkx_export(tiny_netlist):
    graph = netlist_to_networkx(tiny_netlist)
    assert graph.number_of_nodes() == 2
    assert graph.number_of_edges() == 1
    assert graph.nodes[0]["cell"] == "AN2"
    assert graph.nodes[1]["name"] == "IV_U2"


def test_adjacency_matrix_binary():
    edges = np.array([[0, 0], [1, 1]])  # duplicate edge
    adjacency = adjacency_matrix(edges, 3)
    dense = adjacency.toarray()
    assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0
    assert dense.sum() == 2.0


def test_adjacency_bad_edges():
    with pytest.raises(ModelError):
        adjacency_matrix(np.array([[0], [5]]), 3)
    with pytest.raises(ModelError):
        adjacency_matrix(np.zeros((3, 2)), 3)


def test_symmetric_normalization_properties():
    edges = np.array([[0, 1, 2], [1, 2, 3]])
    a_norm = normalized_adjacency(edges, 4, mode="symmetric")
    dense = a_norm.toarray()
    assert np.allclose(dense, dense.T)
    eigenvalues = np.linalg.eigvalsh(dense)
    assert eigenvalues.max() <= 1.0 + 1e-9  # spectral radius <= 1


def test_row_normalization_rows_sum_to_one():
    edges = np.array([[0, 1, 2], [1, 2, 3]])
    a_norm = normalized_adjacency(edges, 4, mode="row")
    sums = np.asarray(a_norm.sum(axis=1)).ravel()
    assert np.allclose(sums, 1.0)


def test_no_self_loops_mode():
    edges = np.array([[0], [1]])
    a_norm = normalized_adjacency(edges, 3, self_loops=False)
    dense = a_norm.toarray()
    assert dense[2, 2] == 0.0  # isolated node w/o self loop stays zero


def test_unknown_normalization():
    with pytest.raises(ModelError):
        normalized_adjacency(np.array([[0], [1]]), 2, mode="spectral")


@pytest.fixture(scope="module")
def icfsm_data(icfsm):
    workloads = design_workloads(icfsm.name, icfsm, count=6, cycles=100,
                                 seed=0)
    campaign = run_campaign(icfsm, workloads)
    dataset = dataset_from_campaign(campaign)
    features = extract_features(icfsm, workloads=workloads)
    return build_graph_data(icfsm, features, dataset)


def test_graph_data_alignment(icfsm, icfsm_data):
    data = icfsm_data
    assert data.n_nodes == icfsm.n_gates
    assert data.x.shape == (icfsm.n_gates, 5)
    assert data.y_class.shape == (icfsm.n_gates,)
    assert data.node_names == icfsm.node_names()
    assert data.node_index(data.node_names[5]) == 5
    with pytest.raises(ModelError):
        data.node_index("nope")


def test_graph_data_a_norm_cached(icfsm_data):
    first = icfsm_data.a_norm()
    second = icfsm_data.a_norm()
    assert first is second
    row = icfsm_data.a_norm(mode="row")
    assert row is not first


def test_graph_data_subset_features(icfsm_data):
    subset = icfsm_data.subset_features(["Number of connections"])
    assert subset.x.shape[1] == 1
    assert subset.feature_names == ["Number of connections"]
    with pytest.raises(ModelError):
        icfsm_data.subset_features(["nope"])


def test_stratified_split_fractions():
    labels = np.array([0] * 80 + [1] * 20)
    split = stratified_split(labels, val_fraction=0.25, seed=1)
    assert split.val_mask.sum() == 25
    assert labels[split.val_mask].sum() == 5  # 25% of each class
    assert not (split.train_mask & split.val_mask).any()
    assert (split.train_mask | split.val_mask).all()


def test_stratified_split_small_classes():
    labels = np.array([0, 0, 0, 1, 1])
    split = stratified_split(labels, val_fraction=0.2, seed=0)
    # Each class keeps at least one member on both sides.
    assert 0 < labels[split.val_mask].sum() < 2
    assert labels[split.train_mask].sum() >= 1


def test_stratified_split_validation():
    with pytest.raises(ModelError):
        stratified_split(np.array([]), 0.2)
    with pytest.raises(ModelError):
        stratified_split(np.array([0, 1]), 1.5)


def test_split_deterministic():
    labels = np.random.default_rng(0).integers(0, 2, 50)
    a = stratified_split(labels, seed=3)
    b = stratified_split(labels, seed=3)
    assert np.array_equal(a.val_mask, b.val_mask)
    c = stratified_split(labels, seed=4)
    assert not np.array_equal(a.val_mask, c.val_mask)
