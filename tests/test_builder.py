"""Tests for the word-level circuit builder, verified by simulation."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.netlist import validate
from repro.sim import Simulator, Workload
from repro.utils.errors import NetlistError


def drive(builder, rows):
    """Simulate the built netlist over per-cycle input dicts."""
    sim = Simulator(builder.netlist)
    return [sim.step(row) for row in rows]


def word_rows(prefix, width, value):
    return {f"{prefix}_{i}": (value >> i) & 1 for i in range(width)}


def read_word(outputs, prefix, width):
    return sum(outputs[f"{prefix}_{i}"] << i for i in range(width))


def test_adder_matches_python():
    builder = CircuitBuilder("add6")
    a = builder.input_bus("a", 6)
    b = builder.input_bus("b", 6)
    total, carry = builder.add(a, b)
    builder.output_bus(total, "s")
    builder.output(carry, "c")
    validate(builder.netlist)
    sim = Simulator(builder.netlist)
    rng = np.random.default_rng(0)
    for _ in range(30):
        x, y = int(rng.integers(64)), int(rng.integers(64))
        row = {**word_rows("a", 6, x), **word_rows("b", 6, y)}
        out = sim.step(row)
        assert read_word(out, "s", 6) == (x + y) % 64
        assert out["c"] == (x + y) // 64


def test_increment():
    builder = CircuitBuilder("inc4")
    a = builder.input_bus("a", 4)
    out, carry = builder.increment(a)
    builder.output_bus(out, "s")
    builder.output(carry, "c")
    sim = Simulator(builder.netlist)
    for value in range(16):
        observed = sim.step(word_rows("a", 4, value))
        assert read_word(observed, "s", 4) == (value + 1) % 16
        assert observed["c"] == (value + 1) // 16


def test_mux_and_bmux():
    builder = CircuitBuilder("mux")
    s = builder.input("s")
    a = builder.input_bus("a", 3)
    b = builder.input_bus("b", 3)
    out = builder.bmux(s, a, b)
    builder.output_bus(out, "y")
    sim = Simulator(builder.netlist)
    for select in (0, 1):
        row = {"s": select, **word_rows("a", 3, 5), **word_rows("b", 3, 2)}
        observed = sim.step(row)
        assert read_word(observed, "y", 3) == (2 if select else 5)


def test_bmux_many_one_hot():
    builder = CircuitBuilder("omux")
    selects = [builder.input(f"s{i}") for i in range(3)]
    words = [builder.constant(value, 4) for value in (3, 9, 12)]
    out = builder.bmux_many(selects, words)
    builder.output_bus(out, "y")
    sim = Simulator(builder.netlist)
    for hot, expected in enumerate((3, 9, 12)):
        row = {f"s{i}": int(i == hot) for i in range(3)}
        observed = sim.step(row)
        assert read_word(observed, "y", 4) == expected


def test_equals_and_is_zero():
    builder = CircuitBuilder("cmp")
    a = builder.input_bus("a", 4)
    b = builder.input_bus("b", 4)
    builder.output(builder.equals(a, b), "eq")
    builder.output(builder.equals_const(a, 9), "is9")
    builder.output(builder.is_zero(a), "z")
    sim = Simulator(builder.netlist)
    for x in range(16):
        for y in (0, 9, x):
            observed = sim.step(
                {**word_rows("a", 4, x), **word_rows("b", 4, y)}
            )
            assert observed["eq"] == int(x == y)
            assert observed["is9"] == int(x == 9)
            assert observed["z"] == int(x == 0)


def test_decode():
    builder = CircuitBuilder("dec")
    a = builder.input_bus("a", 3)
    outs = builder.decode(a, count=6)
    for i, net in enumerate(outs):
        builder.output(net, f"d{i}")
    sim = Simulator(builder.netlist)
    for value in range(8):
        observed = sim.step(word_rows("a", 3, value))
        for i in range(6):
            assert observed[f"d{i}"] == int(value == i)


def test_reduction_trees_use_wide_gates():
    builder = CircuitBuilder("wide")
    nets = [builder.input(f"i{i}") for i in range(9)]
    builder.output(builder.and_(*nets), "all")
    builder.output(builder.or_(*nets), "any")
    cells = {gate.cell.name for gate in builder.netlist.gates}
    assert "AN4" in cells or "AN3" in cells
    sim = Simulator(builder.netlist)
    observed = sim.step({f"i{i}": 1 for i in range(9)})
    assert observed["all"] == 1 and observed["any"] == 1
    observed = sim.step({f"i{i}": int(i == 4) for i in range(9)})
    assert observed["all"] == 0 and observed["any"] == 1


def test_complex_cells():
    builder = CircuitBuilder("aoi")
    a, b, c, d = (builder.input(n) for n in "abcd")
    builder.output(builder.aoi22(a, b, c, d), "aoi22")
    builder.output(builder.aoi21(a, b, c), "aoi21")
    builder.output(builder.oai22(a, b, c, d), "oai22")
    builder.output(builder.oai21(a, b, c), "oai21")
    sim = Simulator(builder.netlist)
    for bits in range(16):
        av, bv, cv, dv = [(bits >> i) & 1 for i in range(4)]
        observed = sim.step({"a": av, "b": bv, "c": cv, "d": dv})
        assert observed["aoi22"] == 1 - ((av & bv) | (cv & dv))
        assert observed["aoi21"] == 1 - ((av & bv) | cv)
        assert observed["oai22"] == 1 - ((av | bv) & (cv | dv))
        assert observed["oai21"] == 1 - ((av | bv) & cv)


def test_register_plain_and_reset():
    builder = CircuitBuilder("regs")
    d = builder.input_bus("d", 2)
    r = builder.input("r")
    q = builder.register(d, reset=r)
    builder.output_bus(q, "q")
    sim = Simulator(builder.netlist)
    sim.step({**word_rows("d", 2, 3), "r": 0})
    observed = sim.step({**word_rows("d", 2, 0), "r": 0})
    assert read_word(observed, "q", 2) == 3  # captured last cycle
    observed = sim.step({**word_rows("d", 2, 3), "r": 1})
    observed = sim.step({**word_rows("d", 2, 0), "r": 0})
    assert read_word(observed, "q", 2) == 0  # reset won


def test_register_enable_holds():
    builder = CircuitBuilder("rege")
    d = builder.input_bus("d", 2)
    e = builder.input("e")
    q = builder.register(d, enable=e)
    builder.output_bus(q, "q")
    sim = Simulator(builder.netlist)
    sim.step({**word_rows("d", 2, 2), "e": 1})
    observed = sim.step({**word_rows("d", 2, 1), "e": 0})
    assert read_word(observed, "q", 2) == 2
    observed = sim.step({**word_rows("d", 2, 1), "e": 0})
    assert read_word(observed, "q", 2) == 2  # held
    sim.step({**word_rows("d", 2, 1), "e": 1})
    observed = sim.step({**word_rows("d", 2, 0), "e": 0})
    assert read_word(observed, "q", 2) == 1


def test_register_reset_beats_enable():
    builder = CircuitBuilder("regre")
    d = builder.input_bus("d", 1)
    r = builder.input("r")
    e = builder.input("e")
    q = builder.register(d, reset=r, enable=e)
    builder.output_bus(q, "q")
    sim = Simulator(builder.netlist)
    sim.step({"d_0": 1, "e": 1, "r": 0})
    sim.step({"d_0": 1, "e": 0, "r": 1})  # reset with enable low
    observed = sim.step({"d_0": 0, "e": 0, "r": 0})
    assert observed["q_0"] == 0


def test_constant_bus_and_shared_ties():
    builder = CircuitBuilder("const")
    word = builder.constant(0b1010, 4)
    builder.output_bus(word, "k")
    # TIE cells are shared.
    tie_count = sum(
        1 for gate in builder.netlist.gates
        if gate.cell.name.startswith("TIE")
    )
    assert tie_count == 2
    sim = Simulator(builder.netlist)
    observed = sim.step({})
    assert read_word(observed, "k", 4) == 0b1010


def test_constant_out_of_range():
    builder = CircuitBuilder("bad")
    with pytest.raises(NetlistError):
        builder.constant(16, 4)


def test_bus_width_mismatch():
    builder = CircuitBuilder("bad2")
    a = builder.input_bus("a", 3)
    b = builder.input_bus("b", 4)
    with pytest.raises(NetlistError):
        builder.band(a, b)
