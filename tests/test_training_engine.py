"""Property tests for the zero-allocation training engine.

Hypothesis-driven invariants that the bitwise suite's fixed scenarios
cannot cover: early stopping restores exactly the best-epoch weights
under randomized data/patience (including the patience=0,
improvement-on-final-epoch, and zero-epoch edges), serial and pooled
grid search rank identically, the compiled workspace tracks the module
path bit for bit on random stacks, ``eval()`` releases cached autograd
intermediates, and fast-math mode stays algebraically faithful.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import normalized_adjacency
from repro.models.gcn import build_gcn_stack
from repro.nn import (
    Dropout,
    GCNConv,
    Linear,
    LogSoftmax,
    ReLU,
    Sequential,
    TrainingConfig,
    train_classifier,
    train_regressor,
)
from repro.nn.engine import PropagationCache, compile_workspace
from repro.nn.gridsearch import grid_search

SLOW = settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_data(n, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(np.int64)
    train_mask = np.zeros(n, dtype=bool)
    train_mask[: int(n * 0.6)] = True
    return x, y, train_mask, ~train_mask


def make_model(seed, dropout=0.0):
    modules = [Linear(4, 6, seed=seed), ReLU()]
    if dropout > 0.0:
        modules.append(Dropout(dropout, seed=seed + 1))
    modules.extend([Linear(6, 2, seed=seed + 2), LogSoftmax()])
    return Sequential(*modules)


# ----------------------------------------------------------------------
# early stopping restores exactly the best-epoch weights
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(0, 1000), st.integers(0, 12), st.integers(20, 80),
       st.booleans())
def test_early_stopping_restores_best_epoch_weights(
        seed, patience, epochs, use_dropout):
    """A run that trains past its best epoch and restores must end
    with the same weights as a fresh run stopped right after that
    epoch (whose live weights ARE the best)."""
    x, y, train_mask, val_mask = make_data(40, seed)
    dropout = 0.4 if use_dropout else 0.0
    full = make_model(seed, dropout)
    history = train_classifier(
        full, x, y, train_mask, val_mask,
        TrainingConfig(epochs=epochs, lr=0.05, patience=patience))
    assert history.best_epoch >= 0

    stopped = make_model(seed, dropout)
    train_classifier(
        stopped, x, y, train_mask, val_mask,
        TrainingConfig(epochs=history.best_epoch + 1, lr=0.05,
                       patience=0))
    for restored, live in zip(full.parameters(), stopped.parameters()):
        assert np.array_equal(restored.value, live.value)


def test_improvement_on_final_epoch_keeps_live_weights():
    """When the last epoch is the best, the pending-snapshot path must
    not overwrite the live (already-best) weights on restore."""
    x, y, train_mask, val_mask = make_data(40, 3)
    probe = make_model(3)
    history = train_classifier(probe, x, y, train_mask, val_mask,
                               TrainingConfig(epochs=200, lr=0.05,
                                              patience=0))
    best = history.best_epoch
    assert best >= 0

    # Re-run stopping exactly at the best epoch: improvement lands on
    # the final epoch, so restore must be a no-op.
    exact = make_model(3)
    exact_history = train_classifier(
        exact, x, y, train_mask, val_mask,
        TrainingConfig(epochs=best + 1, lr=0.05, patience=0))
    assert exact_history.best_epoch == best
    again = make_model(3)
    train_classifier(again, x, y, train_mask, val_mask,
                     TrainingConfig(epochs=best + 1, lr=0.05,
                                    patience=0))
    for a, b in zip(exact.parameters(), again.parameters()):
        assert np.array_equal(a.value, b.value)


def test_zero_epochs_leaves_initial_weights():
    x, y, train_mask, val_mask = make_data(30, 1)
    model = make_model(1)
    initial = [p.value.copy() for p in model.parameters()]
    history = train_classifier(model, x, y, train_mask, val_mask,
                               TrainingConfig(epochs=0))
    assert history.best_epoch == -1
    assert history.train_loss == []
    assert np.isnan(history.best_val_accuracy)
    for parameter, value in zip(model.parameters(), initial):
        assert np.array_equal(parameter.value, value)


# ----------------------------------------------------------------------
# engine == module path on random stacks
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(0, 1000), st.sampled_from(["adam", "sgd"]),
       st.booleans())
def test_engine_matches_module_path(seed, optimizer, use_dropout):
    x, y, train_mask, val_mask = make_data(35, seed)
    dropout = 0.3 if use_dropout else 0.0
    engine_model = make_model(seed, dropout)
    module_model = make_model(seed, dropout)
    config = dict(epochs=40, lr=0.05, optimizer=optimizer, patience=10)
    engine_history = train_classifier(
        engine_model, x, y, train_mask, val_mask,
        TrainingConfig(**config))
    module_history = train_classifier(
        module_model, x, y, train_mask, val_mask,
        TrainingConfig(engine="module", **config))
    assert engine_history.train_loss == module_history.train_loss
    assert engine_history.val_metric == module_history.val_metric
    assert engine_history.best_epoch == module_history.best_epoch
    for a, b in zip(engine_model.parameters(),
                    module_model.parameters()):
        assert np.array_equal(a.value, b.value)


@SLOW
@given(st.integers(0, 1000))
def test_engine_matches_module_path_regressor(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(30, 3))
    y = 0.5 * x[:, 0] - 0.2 * x[:, 2]
    mask = np.ones(30, dtype=bool)

    def build():
        return Sequential(Linear(3, 5, seed=seed), ReLU(),
                          Linear(5, 1, seed=seed + 1))

    a, b = build(), build()
    ha = train_regressor(a, x, y, mask, None,
                         TrainingConfig(epochs=30, lr=0.02, patience=0))
    hb = train_regressor(b, x, y, mask, None,
                         TrainingConfig(epochs=30, lr=0.02, patience=0,
                                        engine="module"))
    assert ha.train_loss == hb.train_loss
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.value, pb.value)


# ----------------------------------------------------------------------
# grid search: serial == pooled ranking
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(0, 100))
def test_grid_serial_and_pooled_rank_identically(seed):
    x, y, train_mask, val_mask = make_data(40, seed)

    def builder(hidden_dims, dropout, seed_):
        modules = []
        previous = x.shape[1]
        for width in hidden_dims:
            modules.extend([Linear(previous, width, seed=seed_), ReLU()])
            previous = width
        modules.extend([Linear(previous, 2, seed=seed_), LogSoftmax()])
        return Sequential(*modules)

    options = dict(hidden_dim_options=((4,), (6, 6)),
                   dropout_options=(0.0,), lr_options=(0.05,),
                   epochs=25)
    serial = grid_search(builder, x, y, train_mask, val_mask, **options)
    pooled = grid_search(builder, x, y, train_mask, val_mask, jobs=2,
                         **options)
    assert [
        (p.hidden_dims, p.dropout, p.lr, p.val_accuracy, p.best_epoch)
        for p in serial.points
    ] == [
        (p.hidden_dims, p.dropout, p.lr, p.val_accuracy, p.best_epoch)
        for p in pooled.points
    ]


def test_grid_best_accuracy_is_recorded_not_recomputed():
    """The ranked accuracy comes from the training history's recorded
    best-epoch monitor accuracy — which equals a fresh forward on the
    restored weights (the eval pass is deterministic)."""
    x, y, train_mask, val_mask = make_data(50, 9)
    built = {}

    def builder(hidden_dims, dropout, seed_):
        model = Sequential(Linear(x.shape[1], hidden_dims[0],
                                  seed=seed_), ReLU(),
                           Linear(hidden_dims[0], 2, seed=seed_),
                           LogSoftmax())
        built[hidden_dims] = model
        return model

    result = grid_search(builder, x, y, train_mask, val_mask,
                         hidden_dim_options=((4,), (8,)),
                         dropout_options=(0.0,), epochs=40)
    for point in result.points:
        model = built[point.hidden_dims]
        fresh = float(
            (model.forward(x).argmax(axis=1)[val_mask]
             == y[val_mask]).mean()
        )
        assert point.val_accuracy == fresh


# ----------------------------------------------------------------------
# eval() releases cached autograd state
# ----------------------------------------------------------------------
def test_eval_clears_cached_autograd_state():
    x, y, train_mask, val_mask = make_data(30, 2)
    model = make_model(2, dropout=0.3)
    # The module path caches forward intermediates on each layer.
    train_classifier(model, x, y, train_mask, val_mask,
                     TrainingConfig(epochs=5, engine="module"))
    # Training ends with model.eval(): every per-node cached array
    # must be gone.
    for module in model.modules:
        for attribute, value in vars(module).items():
            if attribute in ("training",):
                continue
            if isinstance(value, np.ndarray) and value.ndim == 2:
                pytest.fail(
                    f"{type(module).__name__}.{attribute} still holds "
                    f"a cached {value.shape} array after eval()"
                )


def test_forward_after_eval_still_works():
    x, y, train_mask, val_mask = make_data(30, 4)
    model = make_model(4, dropout=0.3)
    train_classifier(model, x, y, train_mask, val_mask,
                     TrainingConfig(epochs=5, engine="module"))
    before = model.forward(x)
    model.eval()
    after = model.forward(x)
    assert np.array_equal(before, after)
    # And backward still functions after a fresh forward.
    model.train()
    model.forward(x)
    model.zero_grad()
    model.backward(np.ones((30, 2)) / 60.0)


# ----------------------------------------------------------------------
# fast-math mode: exact algebra, different rounding
# ----------------------------------------------------------------------
def _gcn_case(n=80, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    sources = rng.integers(0, n, size=3 * n)
    targets = rng.integers(0, n, size=3 * n)
    edges = np.stack([sources, targets])
    a_norm = normalized_adjacency(edges, n)
    y = (x[:, 0] + x @ rng.normal(size=5) * 0.1 > 0).astype(np.int64)
    train_mask = np.zeros(n, dtype=bool)
    train_mask[: int(n * 0.6)] = True
    return x, a_norm, y, train_mask, ~train_mask


def test_fast_math_tracks_exact_losses():
    x, a_norm, y, train_mask, val_mask = _gcn_case()
    exact = build_gcn_stack(x.shape[1], 2, a_norm)
    fast = build_gcn_stack(x.shape[1], 2, a_norm)
    h_exact = train_classifier(exact, x, y, train_mask, val_mask,
                               TrainingConfig(epochs=60, patience=0))
    cache = PropagationCache()
    h_fast = train_classifier(
        fast, x, y, train_mask, val_mask,
        TrainingConfig(epochs=60, patience=0, fast_math=True),
        cache=cache)
    assert np.allclose(h_exact.train_loss, h_fast.train_loss,
                       rtol=1e-8, atol=1e-10)
    assert np.allclose(h_exact.val_metric, h_fast.val_metric,
                       rtol=1e-8, atol=1e-10)
    # The first-layer propagation was cached.
    assert len(cache) == 1


def test_propagation_cache_shared_across_runs():
    x, a_norm, y, train_mask, val_mask = _gcn_case(seed=3)
    cache = PropagationCache()
    for seed in (0, 1):
        model = build_gcn_stack(x.shape[1], 2, a_norm, seed=seed)
        train_classifier(
            model, x, y, train_mask, val_mask,
            TrainingConfig(epochs=10, patience=0, fast_math=True),
            cache=cache)
    # Same (A*, X) pair on both runs: one entry, computed once.
    assert len(cache) == 1
    product = cache.get(a_norm, x)
    assert product is cache.get(a_norm, x)
    assert np.allclose(product, a_norm @ x)


def test_workspace_rejects_unknown_modules():
    class Strange(Sequential):
        pass

    x = np.zeros((4, 3))
    model = Sequential(Linear(3, 2))
    assert compile_workspace(model, x) is not None

    from repro.nn.modules import SAGEConv

    edges = np.array([[0, 1, 2], [1, 2, 3]])
    a_norm = normalized_adjacency(edges, 4, mode="row",
                                  self_loops=False)
    sage = Sequential(SAGEConv(3, 2, a_norm))
    assert compile_workspace(sage, x) is None


def test_gcn_conv_operand_order_flag():
    """fast_math picks (A X) W when f_in < f_out; both orders agree."""
    x, a_norm, y, train_mask, val_mask = _gcn_case(n=50, seed=5)
    model = Sequential(GCNConv(5, 16, a_norm, seed=0), LogSoftmax())
    exact_ws = compile_workspace(model, x)
    model2 = Sequential(GCNConv(5, 16, a_norm, seed=0), LogSoftmax())
    fast_ws = compile_workspace(model2, x, fast_math=True,
                                cache=PropagationCache())
    exact_ws.forward_eval()
    fast_ws.forward_eval()
    assert np.allclose(exact_ws.output, fast_ws.output)
