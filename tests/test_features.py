"""Tests for node feature extraction."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.features import (
    EXTENDED_FEATURE_NAMES,
    FEATURE_NAMES,
    connection_counts,
    cop_probabilities,
    extract_features,
    inverting_tags,
    logic_levels,
    output_distances,
    simulate_probabilities,
)
from repro.netlist import Netlist
from repro.sim import Simulator, Workload, random_workload
from repro.utils.errors import SimulationError


def test_connection_counts(tiny_netlist):
    counts = connection_counts(tiny_netlist)
    # AN2: 2 fanin + (IV + PO) = 4; IV: 1 fanin + PO = 2.
    assert list(counts) == [4.0, 2.0]


def test_inverting_tags(tiny_netlist):
    assert list(inverting_tags(tiny_netlist)) == [0.0, 1.0]


def test_logic_levels(tiny_netlist):
    assert list(logic_levels(tiny_netlist)) == [0.0, 1.0]


def test_output_distances():
    netlist = Netlist("chain")
    a = netlist.add_input("a")
    n1 = netlist.add_gate("IV", [a])
    n2 = netlist.add_gate("IV", [n1])
    n3 = netlist.add_gate("IV", [n2])
    netlist.add_output(n3, "y")
    assert list(output_distances(netlist)) == [2.0, 1.0, 0.0]


def test_cop_probabilities_known_gates():
    builder = CircuitBuilder("cop")
    a = builder.input("a")
    b = builder.input("b")
    builder.output(builder.and_(a, b), "y_and")
    builder.output(builder.nor(a, b), "y_nor")
    builder.output(builder.xor(a, b), "y_xor")
    probabilities = cop_probabilities(builder.netlist)
    p = probabilities.state_probability_one
    assert p[0] == pytest.approx(0.25)   # AND
    assert p[1] == pytest.approx(0.25)   # NOR
    assert p[2] == pytest.approx(0.5)    # XOR
    assert probabilities.transition_probability[2] == pytest.approx(0.5)


def test_cop_sequential_fixpoint():
    """Toggle flop with reset treated as a P=0.5 input: the sequential
    fixpoint solves p = (1 - p) * (1 - P(rst)) = (1 - p) / 2 = 1/3."""
    builder = CircuitBuilder("toggle")
    reset = builder.input("rst")
    flop = builder.netlist.add_gate("DFFR", [reset, reset])
    inverted = builder.not_(flop)
    from repro.circuits.fsm import _rewire_input

    _rewire_input(builder, flop, 0, inverted)
    builder.output(inverted, "q")
    probabilities = cop_probabilities(builder.netlist, iterations=64)
    gate_index = builder.netlist.nets[flop].driver
    assert probabilities.state_probability_one[gate_index] == (
        pytest.approx(1.0 / 3.0, abs=0.01)
    )


def test_simulated_probabilities_match_trace(icfsm):
    workload = random_workload(icfsm, cycles=50, seed=4)
    probabilities = simulate_probabilities(icfsm, [workload])
    trace = Simulator(icfsm).run(workload, record_nets=True)
    gate = icfsm.gates[10]
    measured = trace.net_values[:, gate.output].mean()
    assert probabilities.state_probability_one[10] == pytest.approx(
        measured
    )


def test_extract_features_shape_and_names(icfsm):
    workload = random_workload(icfsm, cycles=40, seed=0)
    features = extract_features(icfsm, workloads=[workload])
    assert features.matrix.shape == (icfsm.n_gates, 5)
    assert features.feature_names == FEATURE_NAMES
    assert features.node_names == icfsm.node_names()
    # P0 + P1 = 1 columns
    p0 = features.column("Intrinsic state probability of 0")
    p1 = features.column("Intrinsic state probability of 1")
    assert np.allclose(p0 + p1, 1.0)


def test_extract_features_extended(icfsm):
    features = extract_features(icfsm, probability_source="cop",
                                extended=True)
    assert features.matrix.shape == (icfsm.n_gates, 13)
    assert features.feature_names == FEATURE_NAMES + EXTENDED_FEATURE_NAMES


def test_extract_requires_workloads_for_simulation(icfsm):
    with pytest.raises(SimulationError, match="workloads"):
        extract_features(icfsm)


def test_extract_unknown_source(icfsm):
    with pytest.raises(SimulationError, match="probability source"):
        extract_features(icfsm, probability_source="magic")


def test_features_row_column_without(icfsm):
    features = extract_features(icfsm, probability_source="cop")
    row = features.row(features.node_names[3])
    assert row.shape == (5,)
    with pytest.raises(SimulationError):
        features.row("nope")
    reduced = features.without("Boolean inverting tag")
    assert reduced.n_features == 4
    assert "Boolean inverting tag" not in reduced.feature_names
    with pytest.raises(SimulationError):
        features.without("nope")


def test_standardized_features(icfsm):
    features = extract_features(icfsm, probability_source="cop")
    standardized = features.standardized()
    means = standardized.matrix.mean(axis=0)
    stds = standardized.matrix.std(axis=0)
    assert np.allclose(means, 0.0, atol=1e-9)
    nontrivial = features.matrix.std(axis=0) > 0
    assert np.allclose(stds[nontrivial], 1.0)
