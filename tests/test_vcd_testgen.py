"""Tests for VCD export and coverage-driven workload compaction."""

import re

import numpy as np
import pytest

from repro.fi import full_fault_universe
from repro.fi.testgen import generate_compact_workloads
from repro.sim import BitParallelSimulator, Simulator, Workload, random_workload
from repro.sim.vcd import dump_vcd, trace_to_vcd
from repro.utils.errors import SimulationError


class TestVcd:
    def test_structure_and_roundtrip(self, tiny_netlist, tmp_path):
        workload = Workload.from_dicts(
            "w", tiny_netlist,
            [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 1}],
        )
        path = tmp_path / "wave.vcd"
        trace = dump_vcd(tiny_netlist, workload, path)
        text = path.read_text()

        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "clk" in text
        # Every input/output declared.
        for name in ("a", "b", "y", "yn"):
            assert re.search(rf"\$var wire 1 \S+ {name} \$end", text)

        # Replay the dump for output 'y' and compare with the trace.
        var_match = re.search(r"\$var wire 1 (\S+) y \$end", text)
        code = re.escape(var_match.group(1))
        changes = re.findall(rf"^([01]){code}$", text, flags=re.M)
        # y: 1 -> 0 -> 1 means three change records.
        assert [int(c) for c in changes] == [1, 0, 1]
        assert list(trace.output("y")) == [1, 0, 1]

    def test_value_change_semantics(self, tiny_netlist):
        """Only changes are dumped; constant signals appear once."""
        workload = Workload.from_dicts(
            "w", tiny_netlist,
            [{"a": 1, "b": 1}] * 4,
        )
        trace = Simulator(tiny_netlist).run(workload)
        text = trace_to_vcd(trace, workload)
        var_match = re.search(r"\$var wire 1 (\S+) y \$end", text)
        code = re.escape(var_match.group(1))
        changes = re.findall(rf"^([01]){code}$", text, flags=re.M)
        assert len(changes) == 1  # constant after the first cycle

    def test_internal_nets_included(self, icfsm, tmp_path):
        workload = random_workload(icfsm, cycles=10, seed=0)
        path = tmp_path / "icfsm.vcd"
        dump_vcd(icfsm, workload, path, record_nets=True)
        text = path.read_text()
        assert "$scope module internal $end" in text
        # All nets present: timestep count matches cycles.
        last_time = max(
            int(t) for t in re.findall(r"^#(\d+)$", text, flags=re.M)
        )
        assert last_time == 2 * workload.cycles

    def test_length_mismatch_rejected(self, tiny_netlist):
        workload = Workload.from_dicts("w", tiny_netlist,
                                       [{"a": 1, "b": 0}] * 3)
        trace = Simulator(tiny_netlist).run(workload)
        short = Workload.from_dicts("w2", tiny_netlist,
                                    [{"a": 1, "b": 0}] * 2)
        with pytest.raises(SimulationError):
            trace_to_vcd(trace, short)


class TestCompaction:
    def test_reaches_coverage_on_small_design(self, icfsm):
        # Random vectors cannot excite the tag-match path (an 8-bit
        # coincidence), so ~0.55 is the realistic random-ATPG ceiling
        # here; protocol-aware candidates go much higher (next test).
        result = generate_compact_workloads(
            icfsm, target_coverage=0.5, candidate_budget=20,
            cycles=80, seed=0,
        )
        assert result.coverage >= 0.5
        assert len(result.workloads) <= result.candidates_tried
        # History is monotonically increasing.
        assert all(
            later > earlier
            for earlier, later in zip(result.coverage_history,
                                      result.coverage_history[1:])
        )

    def test_selected_suite_actually_detects(self, icfsm):
        """Re-simulating the selected suite reproduces the coverage."""
        result = generate_compact_workloads(
            icfsm, target_coverage=0.6, candidate_budget=15,
            cycles=80, seed=1,
        )
        faults = full_fault_universe(icfsm)
        engine = BitParallelSimulator(icfsm)
        detected = np.zeros(len(faults), dtype=bool)
        for workload in result.workloads:
            errors, _, _ = engine.run_fault_pass(
                workload,
                np.array([fault.net_index for fault in faults]),
                np.array([fault.stuck_at for fault in faults]),
            )
            detected |= errors > 0
        assert detected.mean() == pytest.approx(result.coverage)

    def test_budget_respected(self, icfsm):
        result = generate_compact_workloads(
            icfsm, target_coverage=1.0, candidate_budget=3,
            cycles=40, seed=2,
        )
        assert result.candidates_tried <= 3
        assert len(result.undetected) > 0  # 100% not reachable in 3

    def test_validation(self, icfsm):
        with pytest.raises(SimulationError):
            generate_compact_workloads(icfsm, target_coverage=0.0)
        with pytest.raises(SimulationError):
            generate_compact_workloads(icfsm, faults=[])

    def test_custom_candidate_generator(self, icfsm):
        from repro.sim import icfsm_workload

        def protocol_candidates(index):
            return icfsm_workload(icfsm, cycles=80, seed=(9, index),
                                  name=f"proto[{index}]")

        result = generate_compact_workloads(
            icfsm, target_coverage=0.8, candidate_budget=12,
            candidate_generator=protocol_candidates,
        )
        assert all(w.name.startswith("proto[") for w in result.workloads)
        # Protocol awareness reaches coverage random vectors cannot.
        assert result.coverage >= 0.8
