"""Property-based Verilog round-trip tests.

``to_verilog`` → ``from_verilog`` must be structure-identical (gates,
nets, primary outputs, edge set) on randomized designs, including
assign-aliased outputs and DFFE feedback, and parsing must be
idempotent (a parsed netlist re-parses bitwise-identically).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitBuilder, random_netlist
from repro.graph.build import netlist_edges
from repro.netlist import from_verilog, to_verilog, validate


def structure(netlist):
    """Index-free structural identity: names, connectivity, ports."""
    nets = {net.index: net.name for net in netlist.nets}
    return {
        "name": netlist.name,
        "gates": sorted(
            (gate.instance, gate.cell.name,
             tuple(nets[n] for n in gate.inputs), nets[gate.output])
            for gate in netlist.gates
        ),
        "outputs": sorted(
            (nets[net], port) for net, port in netlist.primary_outputs
        ),
        "inputs": netlist.input_names(),
        "edges": sorted(
            (netlist.gates[s].instance, netlist.gates[t].instance)
            for s, t in netlist_edges(netlist).T
        ),
    }


def assert_roundtrip(netlist):
    parsed = from_verilog(to_verilog(netlist))
    validate(parsed)
    assert structure(parsed) == structure(netlist)
    # Parsing is canonicalizing: a second round trip is bitwise stable.
    again = from_verilog(to_verilog(parsed))
    assert [(n.name, n.driver, n.sinks) for n in again.nets] == [
        (n.name, n.driver, n.sinks) for n in parsed.nets
    ]
    assert [(g.instance, g.inputs, g.output) for g in again.gates] == [
        (g.instance, g.inputs, g.output) for g in parsed.gates
    ]
    assert again.primary_outputs == parsed.primary_outputs


@settings(max_examples=25, deadline=None)
@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_gates=st.integers(min_value=0, max_value=45),
    n_flops=st.integers(min_value=0, max_value=6),
    n_outputs=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_netlist_roundtrip(n_inputs, n_gates, n_flops,
                                  n_outputs, seed):
    netlist = random_netlist(
        n_inputs=n_inputs, n_gates=n_gates, n_flops=n_flops,
        n_outputs=n_outputs, seed=seed,
    )
    # random_netlist aliases its chosen outputs to fresh port names,
    # so this also exercises `assign port = net;` on read.
    assert any(
        netlist.nets[net].name != port
        for net, port in netlist.primary_outputs
    )
    assert_roundtrip(netlist)


@settings(max_examples=25, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=6),
    taps=st.integers(min_value=0, max_value=2**12 - 1),
    use_enable=st.booleans(),
)
def test_builder_dffe_accumulator_roundtrip(width, taps, use_enable):
    builder = CircuitBuilder("acc")
    with builder.bulk():
        data = builder.input_bus("d", width)
        enable = builder.input("en") if use_enable else None
        mixed = [
            builder.xor(net, data[(i + 1) % width])
            if (taps >> i) & 1 else builder.not_(net)
            for i, net in enumerate(data)
        ]
        # DFFE feedback: registers hold when enable is low.
        state = builder.register(mixed, enable=enable)
        builder.output_bus(state, "q")
        # Aliased output port on top of a driven net.
        builder.netlist.add_output(state[0], "alias_q0")
    netlist = builder.netlist
    if use_enable:
        assert any(g.cell.name == "DFFE" for g in netlist.gates)
    assert_roundtrip(netlist)


def test_roundtrip_preserves_behaviour_with_dffe():
    from repro.sim import Simulator, random_workload

    builder = CircuitBuilder("accbeh")
    data = builder.input_bus("d", 3)
    enable = builder.input("en")
    state = builder.register(builder.bnot(data), enable=enable)
    builder.output_bus(state, "q")
    netlist = builder.netlist
    parsed = from_verilog(to_verilog(netlist))
    workload = random_workload(netlist, cycles=24, seed=9)
    assert np.array_equal(
        Simulator(netlist).run(workload).outputs,
        Simulator(parsed).run(workload).outputs,
    )
