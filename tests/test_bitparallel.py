"""Tests for the bit-parallel engine: equivalence with the scalar
reference simulator, golden statistics, and fault semantics."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, random_netlist
from repro.netlist import Netlist
from repro.sim import (
    BitParallelSimulator,
    Simulator,
    random_workload,
)
from repro.fi.faults import full_fault_universe


@pytest.mark.parametrize("seed", range(6))
def test_golden_outputs_match_scalar_on_random_designs(seed):
    netlist = random_netlist(n_inputs=6, n_gates=50, n_flops=6,
                             n_outputs=5, seed=seed)
    workload = random_workload(netlist, cycles=40, seed=seed,
                               reset_input="in_0")
    scalar = Simulator(netlist).run(workload)
    packed = BitParallelSimulator(netlist).golden_outputs(workload)
    assert np.array_equal(scalar.outputs, packed)


def test_golden_outputs_match_scalar_on_designs(all_designs):
    for design in all_designs:
        workload = random_workload(design, cycles=50, seed=1)
        scalar = Simulator(design).run(workload)
        packed = BitParallelSimulator(design).golden_outputs(workload)
        assert np.array_equal(scalar.outputs, packed)


def test_golden_stats_match_scalar_trace(icfsm):
    workload = random_workload(icfsm, cycles=60, seed=2)
    trace = Simulator(icfsm).run(workload, record_nets=True)
    stats = BitParallelSimulator(icfsm).golden_stats([workload])
    ones = trace.net_values.sum(axis=0)
    assert np.array_equal(stats.ones_count, ones)
    transitions = (np.diff(trace.net_values, axis=0) != 0).sum(axis=0)
    assert np.array_equal(stats.transition_count, transitions)
    assert stats.cycles == 60
    probability = stats.state_probability_one
    assert probability.min() >= 0.0 and probability.max() <= 1.0
    assert np.allclose(
        stats.state_probability_zero, 1.0 - probability
    )


def test_golden_stats_accumulate_workloads(icfsm):
    w1 = random_workload(icfsm, cycles=30, seed=1)
    w2 = random_workload(icfsm, cycles=20, seed=2)
    stats = BitParallelSimulator(icfsm).golden_stats([w1, w2])
    assert stats.cycles == 50
    assert stats.workloads == 2


def faulty_netlist_outputs(netlist, gate_index, stuck_at, workload):
    """Scalar simulation with one gate's function replaced by a tie —
    the independent reference for fault semantics.  The stuck value
    holds from t=0 (a stuck net has no reset state), so the initial
    value is forced as well."""
    import numpy as np

    from repro.netlist.cells import Cell

    broken = Simulator(netlist)
    gate = netlist.gates[gate_index]
    original_cell = gate.cell
    forced = Cell(
        name=original_cell.name,
        ports=original_cell.ports,
        function=lambda v, ones: (ones if stuck_at else ones ^ ones),
        inverting=original_cell.inverting,
        sequential=original_cell.sequential,
    )
    gate.cell = forced
    try:
        broken.reset()
        broken._values[gate.output] = stuck_at  # stuck from t=0
        outputs = np.zeros(
            (workload.cycles, netlist.n_outputs), dtype=np.uint8
        )
        names = netlist.output_names()
        for cycle in range(workload.cycles):
            row = dict(zip(workload.input_names,
                           workload.vectors[cycle]))
            observed = broken.step(row)
            outputs[cycle] = [observed[name] for name in names]
    finally:
        gate.cell = original_cell
    return outputs


@pytest.mark.parametrize("seed", range(3))
def test_fault_pass_matches_mutated_scalar_simulation(seed):
    netlist = random_netlist(n_inputs=5, n_gates=30, n_flops=4,
                             n_outputs=4, seed=seed + 40)
    workload = random_workload(netlist, cycles=25, seed=seed,
                               reset_input="in_0")
    faults = full_fault_universe(netlist)
    engine = BitParallelSimulator(netlist)
    fault_nets = np.array([fault.net_index for fault in faults])
    fault_values = np.array([fault.stuck_at for fault in faults])
    error_cycles, detection, latent = engine.run_fault_pass(
        workload, fault_nets, fault_values
    )

    golden = Simulator(netlist).run(workload).outputs
    rng = np.random.default_rng(seed)
    for fault_index in rng.choice(len(faults), 12, replace=False):
        fault = faults[fault_index]
        outputs = faulty_netlist_outputs(
            netlist, fault.gate_index, fault.stuck_at, workload
        )
        mismatch_cycles = np.flatnonzero((outputs != golden).any(axis=1))
        assert error_cycles[fault_index] == len(mismatch_cycles)
        if len(mismatch_cycles):
            assert detection[fault_index] == mismatch_cycles[0]
        else:
            assert detection[fault_index] == -1


def test_fault_on_dead_branch_is_latent_or_benign():
    """A fault on logic that never reaches an output cannot be
    dangerous."""
    netlist = Netlist("dead")
    a = netlist.add_input("a")
    live = netlist.add_gate("IV", [a], instance="LIVE")
    # A flop consumes the dead gate, so it is not dangling, but nothing
    # downstream of the flop is observable.
    dead = netlist.add_gate("IV", [a], instance="DEAD")
    sink = netlist.add_gate("DFF", [dead], instance="SINK")
    dead2 = netlist.add_gate("BUF", [sink], instance="DEAD2")
    sink2 = netlist.add_gate("DFF", [dead2], instance="SINK2")
    netlist.add_output(live, "y")
    # keep sink2 observed by nothing; attach to itself via a dff chain
    netlist.add_output(sink2, "z_unused")  # make it technically a PO
    # Remove observability by replacing output list: keep only y.
    netlist.primary_outputs = [(live, "y")]

    faults = full_fault_universe(netlist)
    engine = BitParallelSimulator(netlist)
    workload = random_workload(netlist, cycles=20, seed=0,
                               reset_input="a")
    error_cycles, detection, latent = engine.run_fault_pass(
        workload,
        np.array([fault.net_index for fault in faults]),
        np.array([fault.stuck_at for fault in faults]),
    )
    for fault, errors in zip(faults, error_cycles):
        if fault.node_name.split("_")[1] in ("DEAD", "SINK", "DEAD2",
                                             "SINK2"):
            assert errors == 0, fault.name


def test_single_inverter_fault_always_dangerous(tiny_netlist):
    """SA faults on the only path to an output must be detected."""
    faults = full_fault_universe(tiny_netlist)
    engine = BitParallelSimulator(tiny_netlist)
    from repro.sim import Workload

    workload = Workload.from_dicts(
        "w", tiny_netlist,
        [{"a": 1, "b": 1}, {"a": 0, "b": 0}, {"a": 1, "b": 0}],
    )
    error_cycles, detection, latent = engine.run_fault_pass(
        workload,
        np.array([fault.net_index for fault in faults]),
        np.array([fault.stuck_at for fault in faults]),
    )
    # Every fault is observable within these 3 vectors (the AND sees
    # both polarities at y, the inverter mirrors them).
    assert (error_cycles > 0).all()


def test_many_machines_cross_word_boundary():
    """More than 64 machines exercises multi-word packing."""
    builder = CircuitBuilder("wide")
    inputs = [builder.input(f"i{k}") for k in range(4)]
    nets = list(inputs)
    for index in range(80):
        nets.append(builder.not_(nets[-4]))
    for offset, net in enumerate(nets[-4:]):
        builder.output(net, f"o{offset}")
    netlist = builder.netlist
    faults = full_fault_universe(netlist)
    assert len(faults) > 64
    workload = random_workload(netlist, cycles=10, seed=0,
                               reset_input="i0")
    engine = BitParallelSimulator(netlist)
    error_cycles, detection, latent = engine.run_fault_pass(
        workload,
        np.array([fault.net_index for fault in faults]),
        np.array([fault.stuck_at for fault in faults]),
    )
    # Inverter-chain faults at the tail are certainly observable.
    assert error_cycles[-8:].max() > 0
