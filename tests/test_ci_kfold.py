"""Tests for criticality confidence intervals and k-fold splits."""

import numpy as np
import pytest

from repro.fi import CriticalityDataset, dataset_from_campaign
from repro.graph import kfold_splits
from repro.utils.errors import ModelError, SimulationError


class TestConfidenceIntervals:
    def test_intervals_contain_scores(self, icfsm_analyzer):
        dataset = icfsm_analyzer.dataset
        low, high = dataset.confidence_intervals()
        assert (low <= dataset.scores + 1e-12).all()
        assert (high >= dataset.scores - 1e-12).all()
        assert (low >= 0.0).all() and (high <= 1.0).all()

    def test_wilson_known_value(self):
        """Hand-checked Wilson interval: 7/10 at 95%."""
        dataset = CriticalityDataset(
            design="d", node_names=["n"],
            scores=np.array([0.7]), labels=np.array([1]),
            threshold=0.5, n_workloads=5, trials=np.array([10]),
        )
        low, high = dataset.confidence_intervals(0.95)
        assert low[0] == pytest.approx(0.3968, abs=1e-3)
        assert high[0] == pytest.approx(0.8922, abs=1e-3)

    def test_more_trials_narrow_intervals(self):
        def width(trials):
            dataset = CriticalityDataset(
                design="d", node_names=["n"],
                scores=np.array([0.5]), labels=np.array([1]),
                threshold=0.5, n_workloads=1,
                trials=np.array([trials]),
            )
            low, high = dataset.confidence_intervals()
            return float(high[0] - low[0])

        assert width(200) < width(50) < width(10)

    def test_missing_trials_rejected(self):
        dataset = CriticalityDataset(
            design="d", node_names=["n"],
            scores=np.array([0.5]), labels=np.array([1]),
            threshold=0.5, n_workloads=1,
        )
        with pytest.raises(SimulationError):
            dataset.confidence_intervals()

    def test_campaign_trials_populated(self, icfsm_analyzer):
        dataset = icfsm_analyzer.dataset
        assert dataset.trials is not None
        # two stuck-at faults per node x workload count
        expected = 2 * icfsm_analyzer.campaign.n_workloads
        assert (dataset.trials == expected).all()


class TestKFold:
    def test_folds_partition(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 60)
        folds = list(kfold_splits(labels, k=5, seed=1))
        assert len(folds) == 5
        coverage = np.zeros(60, dtype=int)
        for split in folds:
            coverage += split.val_mask
            assert not (split.train_mask & split.val_mask).any()
            assert (split.train_mask | split.val_mask).all()
        assert (coverage == 1).all()  # each node validated exactly once

    def test_stratification(self):
        labels = np.array([0] * 40 + [1] * 20)
        for split in kfold_splits(labels, k=4, seed=0):
            positives = labels[split.val_mask].sum()
            assert positives == 5  # 20 positives / 4 folds

    def test_deterministic(self):
        labels = np.random.default_rng(1).integers(0, 2, 30)
        a = [s.val_mask for s in kfold_splits(labels, k=3, seed=7)]
        b = [s.val_mask for s in kfold_splits(labels, k=3, seed=7)]
        for mask_a, mask_b in zip(a, b):
            assert np.array_equal(mask_a, mask_b)

    def test_validation(self):
        with pytest.raises(ModelError):
            list(kfold_splits(np.array([]), k=2))
        with pytest.raises(ModelError):
            list(kfold_splits(np.array([0, 1, 0]), k=1))
        with pytest.raises(ModelError):
            list(kfold_splits(np.array([0, 1]), k=5))
