"""Unit tests for the supervised persistent fork worker pool.

These tests exercise the pool mechanics in isolation with tiny worker
functions: ordered results, worker-side exceptions, crash requeue,
poison-unit quarantine, restart-budget exhaustion, stale-heartbeat
(wedged worker) detection, and policy validation.  Campaign/explainer
integration lives in ``test_chaos.py``.
"""

import os
import signal
import time

import pytest

from repro.utils.errors import CampaignError
from repro.utils.parallel import fork_context
from repro.utils.workerpool import (
    PoolPolicy,
    UnitCrash,
    WorkerPool,
    run_supervised,
)

pytestmark = pytest.mark.skipif(
    fork_context() is None,
    reason="worker pool requires the fork start method",
)

#: Fast supervision for tests: sub-second heartbeats, minimal grace.
FAST = dict(heartbeat_interval=0.05, heartbeat_grace=2.0)


def _square(value):
    return value * value


def _die_now(_unit):
    os.kill(os.getpid(), signal.SIGKILL)


class TestPoolBasics:
    def test_ordered_results(self):
        units = list(range(20))
        results = run_supervised(
            _square, units, PoolPolicy(jobs=3, **FAST)
        )
        assert [r.index for r in results] == units
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [u * u for u in units]

    def test_empty_units(self):
        assert run_supervised(_square, [],
                              PoolPolicy(jobs=2, **FAST)) == []

    def test_worker_fn_may_be_a_closure(self):
        # Fork never pickles the worker fn, so closures (and bound
        # methods holding unpicklable state) are first-class.
        offset = 7
        results = run_supervised(
            lambda unit: unit + offset, [1, 2, 3],
            PoolPolicy(jobs=2, **FAST),
        )
        assert [r.value for r in results] == [8, 9, 10]

    def test_worker_exception_becomes_unit_error(self):
        def picky(unit):
            if unit == 2:
                raise ValueError("unit two is unacceptable")
            return unit

        results = run_supervised(
            picky, [0, 1, 2, 3], PoolPolicy(jobs=2, **FAST)
        )
        assert [results[i].ok for i in (0, 1, 3)] == [True] * 3
        assert results[2].value is None
        assert results[2].crash is None
        assert "ValueError: unit two is unacceptable" in \
            results[2].error


class TestCrashRecovery:
    def test_transient_crash_requeued_and_completed(self, tmp_path):
        # The unit SIGKILLs its first host, then computes normally —
        # a model of a transient OOM kill.  The pool must requeue it,
        # respawn the worker, and still return every result.
        def fragile(unit):
            flag = tmp_path / f"killed_{unit}"
            if unit == 3 and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return unit * 10

        policy = PoolPolicy(jobs=2, poison_threshold=3, **FAST)
        with WorkerPool(fragile, policy) as pool:
            results = sorted(pool.run(list(range(8))),
                             key=lambda r: r.index)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [u * 10 for u in range(8)]
        assert pool.restarts >= 1

    def test_poison_unit_quarantined(self):
        def poison(unit):
            if unit == 1:
                _die_now(unit)
            return unit

        results = run_supervised(
            poison, [0, 1, 2, 3],
            PoolPolicy(jobs=2, poison_threshold=2, **FAST),
        )
        crash = results[1].crash
        assert isinstance(crash, UnitCrash)
        assert crash.reason == "poison"
        assert crash.kills == 2
        assert crash.signal_name == "SIGKILL"
        assert "SIGKILL" in crash.describe()
        # The quarantine never poisons the siblings.
        assert [results[i].value for i in (0, 2, 3)] == [0, 2, 3]

    def test_restart_budget_exhaustion(self):
        # poison_threshold high enough that quarantine never fires;
        # budget zero, so two worker deaths drain the pool and the
        # outstanding units must be reported, not hung on.
        def poison(unit):
            if unit == 0:
                _die_now(unit)
            time.sleep(0.05)
            return unit

        results = run_supervised(
            poison, [0, 1, 2, 3, 4, 5],
            PoolPolicy(jobs=2, max_worker_restarts=0,
                       poison_threshold=99, **FAST),
        )
        crash = results[0].crash
        assert crash is not None
        assert crash.reason == "restart-budget"
        assert crash.kills >= 1
        # Every unit got exactly one result: ok or a typed crash.
        assert all(r.ok or r.crash is not None for r in results)
        assert all(results[i].index == i for i in range(6))

    def test_wedged_worker_detected_by_heartbeat(self, tmp_path):
        # SIGSTOP freezes the worker without killing it: exitcode
        # stays None and no acknowledgment ever arrives.  Only the
        # heartbeat sweep can notice; it must SIGKILL the host and
        # requeue the unit, which then completes on a fresh worker.
        def wedge(unit):
            flag = tmp_path / f"wedged_{unit}"
            if unit == 1 and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGSTOP)
            return unit + 100

        policy = PoolPolicy(jobs=2, poison_threshold=3, **FAST)
        with WorkerPool(wedge, policy) as pool:
            results = sorted(pool.run([0, 1, 2]),
                             key=lambda r: r.index)
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [100, 101, 102]
        assert pool.restarts >= 1


class TestPolicyValidation:
    @pytest.mark.parametrize("bad", [
        dict(jobs=-1),
        dict(max_worker_restarts=-1),
        dict(heartbeat_interval=0.0),
        dict(heartbeat_interval=-1.0),
        dict(heartbeat_grace=1.0),
        dict(poison_threshold=0),
    ])
    def test_rejects_bad_knobs(self, bad):
        with pytest.raises(CampaignError):
            PoolPolicy(**bad)

    def test_defaults_are_valid(self):
        policy = PoolPolicy()
        assert policy.max_worker_restarts == 8
        assert policy.poison_threshold == 2
