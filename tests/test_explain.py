"""Tests for GNNExplainer and feature-importance aggregation."""

import numpy as np
import pytest

from repro.explain import (
    ExplainerConfig,
    GNNExplainer,
    aggregate_importance,
    combine_importance,
)
from repro.explain.gnn_explainer import Explanation
from repro.graph import GraphData, stratified_split
from repro.models import GCNClassifier
from repro.nn import TrainingConfig
from repro.utils.errors import ModelError


@pytest.fixture(scope="module")
def planted_setup():
    """Labels depend ONLY on feature 0, so a faithful explainer must
    rank feature 0 on top; features 1-3 are noise."""
    rng = np.random.default_rng(4)
    n = 60
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    edges = [[], []]
    for node in range(n - 1):
        edges[0].append(node)
        edges[1].append(node + 1)
    data = GraphData(
        design="planted",
        node_names=[f"N_{i}" for i in range(n)],
        x=x, x_raw=x,
        edge_index=np.array(edges),
        y_class=y,
        y_score=y.astype(float),
        feature_names=["signal", "noise1", "noise2", "noise3"],
    )
    split = stratified_split(y, 0.2, seed=0)
    # A shallow stack avoids over-smoothing the chain graph, where the
    # label depends on the node's own feature only.
    model = GCNClassifier(
        hidden_dims=(8,), dropout=0.0, seed=1,
        config=TrainingConfig(epochs=300, patience=80),
    ).fit(data, split)
    assert model.accuracy(split.val_mask) >= 0.8
    return data, model


def test_explainer_finds_planted_feature(planted_setup):
    data, model = planted_setup
    explainer = GNNExplainer(model, data, seed=0)
    hits = 0
    for node in range(8, 20, 3):
        explanation = explainer.explain(node)
        if explanation.feature_ranking()[0] == 0:
            hits += 1
    assert hits >= 3  # signal ranked first for most nodes


def test_explanation_contents(planted_setup):
    data, model = planted_setup
    explainer = GNNExplainer(model, data, seed=0)
    explanation = explainer.explain("N_10")
    assert explanation.node_name == "N_10"
    assert explanation.node_index == 10
    assert explanation.predicted_class in (0, 1)
    assert explanation.feature_scores.shape == (4,)
    assert explanation.feature_scores.mean() == pytest.approx(1.0)
    assert 10 in explanation.subgraph_nodes
    # Chain graph with a 2-conv stack: at most 2 hops each direction.
    assert min(explanation.subgraph_nodes) >= 10 - 2
    assert max(explanation.subgraph_nodes) <= 10 + 2
    for source, target, weight in explanation.edge_importance:
        assert 0.0 <= weight <= 1.0
        assert source in explanation.subgraph_nodes
        assert target in explanation.subgraph_nodes
    top = explanation.top_edges(3)
    assert len(top) <= 3
    weights = [weight for _, _, weight in top]
    assert weights == sorted(weights, reverse=True)


def test_explainer_requires_fitted_model(planted_setup):
    data, _ = planted_setup
    with pytest.raises(ModelError):
        GNNExplainer(GCNClassifier(), data)


def test_explainer_bad_node(planted_setup):
    data, model = planted_setup
    explainer = GNNExplainer(model, data, seed=0)
    with pytest.raises(ModelError):
        explainer.explain("nope")
    with pytest.raises(ModelError):
        explainer.explain(10_000)


def test_aggregate_importance_eq3(planted_setup):
    data, model = planted_setup
    explainer = GNNExplainer(model, data, seed=0)
    explanations = explainer.explain_many([8, 12, 16, 20])
    importance = aggregate_importance(explanations)
    assert importance.n_explanations == 4
    assert importance.average_ranks.shape == (4,)
    # Rank arithmetic: the per-node ranks are a permutation of 1..F,
    # so the average ranks sum to (1+2+3+4) = 10.
    assert importance.average_ranks.sum() == pytest.approx(10.0)
    assert importance.ranked_features()[0] == "signal"
    rows = importance.as_rows()
    assert rows[0]["feature"] == "signal"


def test_aggregate_empty_rejected():
    with pytest.raises(ModelError):
        aggregate_importance([])


def test_combine_importance_weighted():
    def make(scores, n):
        explanations = [
            Explanation(
                node_name=f"n{i}", node_index=i, predicted_class=1,
                feature_names=["a", "b"],
                feature_scores=np.array(scores),
                subgraph_nodes=[i], edge_importance=[],
            )
            for i in range(n)
        ]
        return aggregate_importance(explanations)

    map_one = make([2.0, 0.5], 3)   # ranks: a=1, b=2
    map_two = make([0.5, 2.0], 1)   # ranks: a=2, b=1
    combined = combine_importance([map_one, map_two])
    assert combined.n_explanations == 4
    # Weighted rank of 'a': (3*1 + 1*2)/4 = 1.25
    assert combined.average_ranks[0] == pytest.approx(1.25)
    with pytest.raises(ModelError):
        combine_importance([])


def test_explainer_deterministic(planted_setup):
    data, model = planted_setup
    first = GNNExplainer(model, data, seed=7).explain(12)
    second = GNNExplainer(model, data, seed=7).explain(12)
    assert np.allclose(first.feature_scores, second.feature_scores)
