"""Behavioural tests of the three evaluation designs."""

import numpy as np
import pytest

from repro.circuits import (
    build_or1200_icfsm,
    build_or1200_if,
    build_sdram_controller,
    random_netlist,
)
from repro.circuits.or1200_if import NOP_INSTRUCTION, RESET_VECTOR
from repro.circuits.sdram import (
    BURST_LENGTH,
    INIT_WAIT_CYCLES,
    MODE_REGISTER_VALUE,
)
from repro.netlist import validate
from repro.sim import (
    Simulator,
    design_workloads,
    icfsm_workload,
    or1200_if_workload,
    sdram_workload,
)


def command(out):
    """Decode (cs_n, ras_n, cas_n, we_n) into a command mnemonic."""
    key = (out["cs_n"], out["ras_n"], out["cas_n"], out["we_n"])
    return {
        (1, 1, 1, 1): "DESELECT/NOP",
        (0, 1, 1, 1): "NOP",
        (0, 0, 1, 0): "PRECHARGE",
        (0, 0, 0, 1): "REFRESH",
        (0, 0, 0, 0): "MODE",
        (0, 0, 1, 1): "ACTIVE",
        (0, 1, 0, 1): "READ",
        (0, 1, 0, 0): "WRITE",
    }.get(key, f"UNKNOWN{key}")


class TestSdramController:
    def test_init_sequence(self, sdram):
        """Power-up: precharge-all, two refreshes, mode load, then idle."""
        sim = Simulator(sdram)
        sim.step({"reset": 1})
        sim.step({"reset": 1})
        commands = []
        ready_at = None
        for cycle in range(60):
            out = sim.step({"reset": 0})
            name = command(out)
            if name not in ("NOP", "DESELECT/NOP"):
                commands.append(name)
            if out["ready"] and ready_at is None:
                ready_at = cycle
        assert commands[:4] == ["PRECHARGE", "REFRESH", "REFRESH", "MODE"]
        assert ready_at is not None and ready_at > INIT_WAIT_CYCLES

    def test_mode_register_value(self, sdram):
        sim = Simulator(sdram)
        sim.step({"reset": 1})
        for _ in range(60):
            out = sim.step({"reset": 0})
            if command(out) == "MODE":
                value = sum(out[f"a_{i}"] << i for i in range(12))
                assert value == MODE_REGISTER_VALUE
                return
        pytest.fail("MODE command never issued")

    def test_read_transaction(self, sdram):
        """A read request activates the row then bursts a READ."""
        sim = Simulator(sdram)
        sim.step({"reset": 1})
        out = {}
        for _ in range(40):  # run init to idle
            out = sim.step({"reset": 0})
            if out["ready"]:
                break
        assert out["ready"] == 1

        address = 0x2B3A5  # bank | row | col
        row = {"req": 1, "we": 0}
        row.update({f"haddr_{i}": (address >> i) & 1 for i in range(22)})
        saw = []
        acked = False
        for _ in range(25):
            out = sim.step(row)
            if out["ack"]:
                acked = True
                row = {"req": 0, "we": 0}
            name = command(out)
            if name == "ACTIVE":
                active_row = sum(out[f"a_{i}"] << i for i in range(12))
                assert active_row == (address >> 8) & 0xFFF
                bank = out["ba_0"] | (out["ba_1"] << 1)
                assert bank == (address >> 20) & 0x3
            if name == "READ":
                column = sum(out[f"a_{i}"] << i for i in range(8))
                assert column == address & 0xFF
            if name not in ("NOP", "DESELECT/NOP"):
                saw.append(name)
        assert acked
        assert "ACTIVE" in saw and "READ" in saw and "PRECHARGE" in saw
        assert saw.index("ACTIVE") < saw.index("READ") < saw.index(
            "PRECHARGE"
        )

    def test_write_uses_write_command(self, sdram):
        sim = Simulator(sdram)
        sim.step({"reset": 1})
        for _ in range(40):
            out = sim.step({"reset": 0})
            if out["ready"]:
                break
        row = {"req": 1, "we": 1}
        saw = set()
        for _ in range(25):
            out = sim.step(row)
            if out["ack"]:
                row = {"req": 0, "we": 0}
            saw.add(command(out))
        assert "WRITE" in saw and "READ" not in saw

    def test_periodic_refresh(self, sdram):
        """With no requests, the controller still issues refreshes."""
        sim = Simulator(sdram)
        sim.step({"reset": 1})
        refreshes = 0
        for _ in range(200):
            out = sim.step({"reset": 0})
            if command(out) == "REFRESH":
                refreshes += 1
        assert refreshes >= 3  # 2 init + at least 1 periodic

    def test_workload_generator_produces_acks(self, sdram):
        workload = sdram_workload(sdram, cycles=200, seed=4,
                                  request_rate=0.5)
        trace = Simulator(sdram).run(workload)
        assert trace.output("ack").sum() >= 3
        assert trace.output("cke").min() == 0  # init phase seen


class TestOr1200If:
    def run_reset(self, sim):
        sim.step({"reset": 1})
        sim.step({"reset": 1})

    def test_reset_vector_and_increment(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        out = sim.step({"reset": 0, "icpu_ack": 1})
        pc = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        # With an ack, the next fetch address is reset vector + 4.
        assert pc == RESET_VECTOR + 4
        out = sim.step({"icpu_ack": 1})
        pc = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        assert pc == RESET_VECTOR + 8

    def test_pc_holds_without_ack(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        out = sim.step({"reset": 0, "icpu_ack": 0})
        pc_first = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        out = sim.step({"icpu_ack": 0})
        pc_second = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        assert pc_first == pc_second == RESET_VECTOR

    def test_branch_redirect(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        target = 0x0000_4440
        row = {"reset": 0, "branch_taken": 1}
        row.update({f"branch_addr_{i}": (target >> i) & 1
                    for i in range(32)})
        out = sim.step(row)
        pc = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        assert pc == target

    def test_exception_beats_branch(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        row = {"reset": 0, "branch_taken": 1, "except_start": 1}
        row.update({f"branch_addr_{i}": 1 for i in range(32)})
        row.update({f"except_type_{i}": (5 >> i) & 1 for i in range(3)})
        out = sim.step(row)
        pc = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        assert pc == 5 << 8  # vector = cause << 8

    def test_instruction_capture_and_validity(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        word = (0x04 << 26) | 0x123456  # l.bf opcode
        row = {"reset": 0, "icpu_ack": 1}
        row.update({f"icpu_dat_{i}": (word >> i) & 1 for i in range(32)})
        sim.step(row)
        out = sim.step({"icpu_ack": 0,
                        **{f"icpu_dat_{i}": 0 for i in range(32)}})
        insn = sum(out[f"if_insn_{i}"] << i for i in range(32))
        assert insn == word
        assert out["if_valid"] == 1
        assert out["if_branch_op"] == 1

    def test_bus_error_substitutes_nop(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        sim.step({"reset": 0, "icpu_err": 1})
        out = sim.step({"icpu_err": 0})
        insn = sum(out[f"if_insn_{i}"] << i for i in range(32))
        assert insn == NOP_INSTRUCTION
        assert out["if_valid"] == 0

    def test_branch_saved_during_stall(self, or1200_if):
        sim = Simulator(or1200_if)
        self.run_reset(sim)
        target = 0x0000_8880
        row = {"reset": 0, "stall": 1, "branch_taken": 1}
        row.update({f"branch_addr_{i}": (target >> i) & 1
                    for i in range(32)})
        sim.step(row)
        # Branch input gone, stall released: saved target replays.
        out = sim.step({"stall": 0, "branch_taken": 0,
                        **{f"branch_addr_{i}": 0 for i in range(32)}})
        pc = sum(out[f"icpu_adr_{i}"] << i for i in range(32))
        assert pc == target

    def test_workload_generator(self, or1200_if):
        workload = or1200_if_workload(or1200_if, cycles=150, seed=2)
        trace = Simulator(or1200_if).run(workload)
        assert trace.output("if_valid").sum() > 20


class TestIcfsm:
    def addr_row(self, address):
        return {f"addr_{i}": (address >> i) & 1 for i in range(14)}

    def tag_rows(self, tag0, tag1, v0=1, v1=1):
        row = {}
        for bit in range(8):
            row[f"tag0_in_{bit}"] = (tag0 >> bit) & 1
            row[f"tag1_in_{bit}"] = (tag1 >> bit) & 1
        row["tag0_v_in"] = v0
        row["tag1_v_in"] = v1
        return row

    def request(self, address, hit_way=None):
        """Input row for a fetch; hit_way None = miss on both ways."""
        tag = (address >> 6) & 0xFF
        other = (tag ^ 0x5A) & 0xFF
        tags = {
            None: (other, other),
            0: (tag, other),
            1: (other, tag),
        }[hit_way]
        return {"reset": 0, "ic_en": 1, "cycstb": 1,
                **self.addr_row(address), **self.tag_rows(*tags)}

    def test_hit_acks_immediately(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = self.request(0x2A51, hit_way=0)
        sim.step(row)  # IDLE -> CFETCH
        out = sim.step(row)
        assert out["hit"] == 1 and out["ack"] == 1
        assert out["way_sel"] == 0  # hit way reported

    def test_hit_on_way1(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = self.request(0x2A51, hit_way=1)
        sim.step(row)
        out = sim.step(row)
        assert out["hit"] == 1 and out["way_sel"] == 1

    def test_invalid_way_does_not_hit(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = self.request(0x2A51, hit_way=0)
        row["tag0_v_in"] = 0  # matching way is invalid
        sim.step(row)
        out = sim.step(row)
        assert out["hit"] == 0

    def test_miss_starts_burst_refill(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = self.request(0x2A51, hit_way=None)
        sim.step(row)
        out = sim.step(row)  # CFETCH sees miss
        assert out["hit"] == 0
        out = sim.step(row)  # LFETCH
        assert out["burst"] == 1 and out["biu_req"] == 1
        # Deliver 4 beats; data writes follow, tag written on the last
        # beat into exactly one way (the reset-LRU victim: way 0).
        data_writes = 0
        tag_writes = []
        for beat in range(4):
            out = sim.step({**row, "biudata_valid": 1})
            data_writes += out["data_we"]
            tag_writes.append((out["tag_we0"], out["tag_we1"]))
        assert data_writes == 4
        assert tag_writes.count((0, 0)) == 3
        assert (1, 0) in tag_writes
        out = sim.step({**row, "biudata_valid": 0})
        assert out["burst"] == 0  # back to CFETCH

    def test_lru_steers_second_refill_to_other_way(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})

        def refill(address):
            row = self.request(address, hit_way=None)
            sim.step(row)
            sim.step(row)       # CFETCH (miss)
            sim.step(row)       # LFETCH
            ways = set()
            for beat in range(4):
                out = sim.step({**row, "biudata_valid": 1})
                if out["tag_we0"]:
                    ways.add(0)
                if out["tag_we1"]:
                    ways.add(1)
            # Leave the request (drop strobe) so the FSM returns to IDLE.
            sim.step({**row, "cycstb": 0, "biudata_valid": 0})
            sim.step({**row, "cycstb": 0})
            return ways

        same_set = 0x2A50
        first = refill(same_set)
        second = refill(same_set | (0x81 << 6))  # same set, other tag
        assert first == {0}
        assert second == {1}  # LRU flipped to the other way

    def test_refill_addresses_walk_the_line(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        address = 0x2A52  # word offset 2
        row = self.request(address, hit_way=None)
        sim.step(row)
        sim.step(row)
        observed_words = []
        acked_at_word = None
        for beat in range(4):
            out = sim.step({**row, "biudata_valid": 1})
            word = out["biu_adr_0"] | (out["biu_adr_1"] << 1)
            observed_words.append(word)
            if out["ack"]:
                acked_at_word = word
        assert observed_words == [0, 1, 2, 3]
        assert acked_at_word == 2  # critical word acknowledged

    def test_cache_inhibit_bypasses(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = {**self.request(0x123, hit_way=0), "ci": 1}
        sim.step(row)   # -> CFETCH
        sim.step(row)   # CFETCH: ci -> BFETCH
        out = sim.step(row)
        assert out["biu_req"] == 1 and out["burst"] == 0
        out = sim.step({**row, "biudata_valid": 1})
        assert out["ack"] == 1 and out["data_we"] == 0

    def test_bus_error_locks(self, icfsm):
        sim = Simulator(icfsm)
        sim.step({"reset": 1})
        row = self.request(0x123, hit_way=None)
        sim.step(row)
        sim.step(row)
        sim.step(row)  # LFETCH
        out = sim.step({**row, "biudata_err": 1})
        out = sim.step(row)
        assert out["err"] == 1
        # Error clears when the CPU drops its strobe.
        out = sim.step({**row, "cycstb": 0})
        out = sim.step({**row, "cycstb": 0})
        assert out["err"] == 0

    def test_workload_generator(self, icfsm):
        workload = icfsm_workload(icfsm, cycles=150, seed=1)
        trace = Simulator(icfsm).run(workload)
        assert trace.output("ack").sum() >= 5
        assert trace.output("burst").sum() >= 4


def test_design_workload_suites_are_diverse(all_designs):
    for design in all_designs:
        suite = design_workloads(design.name, design, count=8,
                                 cycles=80, seed=0)
        assert len(suite) == 8
        assert len({workload.name for workload in suite}) == 8
        stacked = np.stack([workload.vectors for workload in suite])
        # Different workloads differ in content, not just name.
        assert not np.array_equal(stacked[0], stacked[1])


def test_generic_suite_for_unknown_design():
    netlist = random_netlist(n_inputs=4, n_gates=20, n_flops=3,
                             n_outputs=3, seed=2)
    suite = design_workloads(netlist.name, netlist, count=3, cycles=50,
                             seed=0)
    assert len(suite) == 3
    assert all(workload.cycles == 50 for workload in suite)
