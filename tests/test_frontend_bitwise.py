"""Bitwise guardrail for the linear-time ingestion front end.

The streaming parser, bulk construction mode, vectorized adjacency /
levelization, edge extraction, and feature columns must produce
*bitwise-identical* results to the historical implementations.  Each
reference below is a faithful copy of the pre-rewrite code (repeated
statement sweeps, per-gate Python loops); the tests compare them
against the shipping paths on the bundled designs (or1200_if, uart,
sdram controller, icfsm), randomized netlists, and grid designs.
"""

import re

import numpy as np
import pytest

from repro.circuits import (
    build_fsm_grid,
    build_or1200_icfsm,
    build_or1200_if,
    build_sdram_controller,
    build_uart,
    random_netlist,
)
from repro.features.extract import extract_features
from repro.features.structural import (
    inverting_tags,
    is_sequential_flags,
    output_distances,
)
from repro.graph.build import netlist_edges
from repro.netlist import Netlist, from_verilog, to_verilog
from repro.netlist.cells import FEEDBACK_PORTS, LIBRARY, get_cell
from repro.netlist.verilog import output_port_name
from repro.utils.errors import NetlistError


# ----------------------------------------------------------------------
# designs under test
# ----------------------------------------------------------------------
def _designs():
    designs = [
        build_or1200_if(),
        build_uart(),
        build_sdram_controller(),
        build_or1200_icfsm(),
        build_fsm_grid(3, 3, width=4, seed=5),
    ]
    for seed in range(4):
        designs.append(
            random_netlist(n_inputs=5, n_gates=35, n_flops=5,
                           n_outputs=4, seed=seed,
                           name=f"rand_{seed}")
        )
    return designs


@pytest.fixture(scope="module")
def designs():
    return _designs()


def snapshot(netlist: Netlist):
    """Full structural identity of a netlist, indices included."""
    return {
        "name": netlist.name,
        "nets": [
            (net.index, net.name, net.driver, tuple(net.sinks))
            for net in netlist.nets
        ],
        "gates": [
            (gate.index, gate.instance, gate.cell.name, gate.inputs,
             gate.output)
            for gate in netlist.gates
        ],
        "outputs": list(netlist.primary_outputs),
    }


# ----------------------------------------------------------------------
# reference implementations (pre-rewrite code, verbatim semantics)
# ----------------------------------------------------------------------
def reference_adjacency(netlist):
    """Old per-gate Python-loop CSR adjacency build."""
    n = netlist.n_gates
    po_ports = [0] * netlist.n_nets
    for net, _ in netlist.primary_outputs:
        po_ports[net] += 1

    fanout_lists, fanin_lists = [], []
    fanin_connections = np.zeros(n, dtype=np.int64)
    fanout_connections = np.zeros(n, dtype=np.int64)
    for gate in netlist.gates:
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        fanin_connections[gate.index] = (
            len(gate.inputs) - (1 if feedback else 0)
        )
        drivers = []
        for net in gate.inputs:
            driver = netlist.nets[net].driver
            if (driver is not None and driver != gate.index
                    and driver not in drivers):
                drivers.append(driver)
        fanin_lists.append(drivers)

        readers = []
        connections = 0
        for sink_gate, _ in netlist.nets[gate.output].sinks:
            if sink_gate == gate.index:
                continue
            connections += 1
            if sink_gate not in readers:
                readers.append(sink_gate)
        fanout_lists.append(readers)
        fanout_connections[gate.index] = (
            connections + po_ports[gate.output]
        )

    def pack(rows):
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, row in enumerate(rows):
            indptr[i + 1] = indptr[i] + len(row)
        flat = [g for row in rows for g in row]
        return indptr, np.asarray(flat, dtype=np.int64)

    fanout_indptr, fanout_indices = pack(fanout_lists)
    fanin_indptr, fanin_indices = pack(fanin_lists)
    return {
        "fanout_indptr": fanout_indptr,
        "fanout_indices": fanout_indices,
        "fanin_indptr": fanin_indptr,
        "fanin_indices": fanin_indices,
        "fanin_connections": fanin_connections,
        "fanout_connections": fanout_connections,
    }


def reference_levelize(netlist):
    """Old per-gate Kahn loop with repeated max over drivers."""
    levels = [0] * netlist.n_gates
    pending = [0] * netlist.n_gates
    ready = []
    for gate in netlist.gates:
        if gate.is_sequential:
            ready.append(gate.index)
            continue
        unresolved = 0
        for net in gate.inputs:
            driver = netlist.nets[net].driver
            if driver is not None and not netlist.gates[driver].is_sequential:
                unresolved += 1
        pending[gate.index] = unresolved
        if unresolved == 0:
            ready.append(gate.index)

    cursor = 0
    order = []
    while cursor < len(ready):
        gate_index = ready[cursor]
        cursor += 1
        order.append(gate_index)
        gate = netlist.gates[gate_index]
        if gate.is_sequential:
            continue
        for sink_gate, _ in netlist.nets[gate.output].sinks:
            sink = netlist.gates[sink_gate]
            if sink.is_sequential:
                continue
            pending[sink_gate] -= 1
            if pending[sink_gate] == 0:
                levels[sink_gate] = 1 + max(
                    (
                        levels[netlist.nets[net].driver]
                        for net in sink.inputs
                        if netlist.nets[net].driver is not None
                        and not netlist.gates[
                            netlist.nets[net].driver
                        ].is_sequential
                    ),
                    default=0,
                )
                ready.append(sink_gate)
    assert len(order) == netlist.n_gates
    return levels


def reference_edges(netlist):
    """Old seen-set edge extraction over reference adjacency rows."""
    adjacency = reference_adjacency(netlist)
    indptr, indices = (
        adjacency["fanout_indptr"], adjacency["fanout_indices"]
    )
    sources, targets = [], []
    seen = set()
    for gate in netlist.gates:
        row = indices[indptr[gate.index]:indptr[gate.index + 1]]
        for sink in row:
            key = (gate.index, int(sink))
            if key not in seen:
                seen.add(key)
                sources.append(gate.index)
                targets.append(int(sink))
    if not sources:
        return np.zeros((2, 0), dtype=np.int64)
    return np.array([sources, targets], dtype=np.int64)


def reference_output_distances(netlist):
    """Old Python BFS from primary-output gates over fanin rows."""
    unreachable = float(netlist.n_gates)
    distance = np.full(netlist.n_gates, unreachable)
    po_nets = {net for net, _ in netlist.primary_outputs}
    frontier = []
    for gate in netlist.gates:
        if gate.output in po_nets:
            distance[gate.index] = 0.0
            frontier.append(gate.index)
    adjacency = reference_adjacency(netlist)
    indptr, indices = (
        adjacency["fanin_indptr"], adjacency["fanin_indices"]
    )
    cursor = 0
    while cursor < len(frontier):
        gate_index = frontier[cursor]
        cursor += 1
        next_distance = distance[gate_index] + 1.0
        for driver in indices[indptr[gate_index]:indptr[gate_index + 1]]:
            if next_distance < distance[driver]:
                distance[driver] = next_distance
                frontier.append(int(driver))
    return distance


def reference_from_verilog(text):
    """Old repeated-sweep parser (whole-body regex, O(n^2) resolve)."""
    ident = r"[A-Za-z_][A-Za-z0-9_$]*"
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    module_match = re.search(
        rf"\bmodule\s+({ident})\s*\((.*?)\)\s*;(.*?)\bendmodule\b",
        text, flags=re.DOTALL,
    )
    assert module_match, "reference parser: no module"
    module_name, _, body = module_match.groups()

    inputs, outputs, assigns, instances = [], [], [], []
    connection_re = re.compile(rf"\.({ident})\s*\(\s*({ident})\s*\)")
    instance_re = re.compile(
        rf"^({ident})\s+({ident})\s*\((.*)\)$", flags=re.DOTALL
    )
    for statement in (p.strip() for p in body.split(";") if p.strip()):
        head = statement.split(None, 1)[0]
        if head in ("input", "output", "wire"):
            names = statement[len(head):].replace(",", " ").split()
            if head == "input":
                inputs.extend(names)
            elif head == "output":
                outputs.extend(names)
            continue
        if head == "assign":
            match = re.match(
                rf"assign\s+({ident})\s*=\s*({ident})$", statement
            )
            assert match, f"reference parser: assign {statement!r}"
            assigns.append((match.group(1), match.group(2)))
            continue
        match = instance_re.match(statement)
        assert match, f"reference parser: statement {statement!r}"
        cell_name, instance, connection_text = match.groups()
        assert cell_name in LIBRARY
        connections = dict(connection_re.findall(connection_text))
        out_port = output_port_name(cell_name)
        instances.append(
            (cell_name, instance, connections, connections[out_port])
        )

    netlist = Netlist(module_name)
    net_ids = {}
    for name in inputs:
        net_ids[name] = netlist.add_input(name)

    def wired_ports(cell_name):
        feedback = FEEDBACK_PORTS.get(cell_name)
        return [p for p in get_cell(cell_name).ports if p != feedback]

    flops = [i for i in instances if get_cell(i[0]).sequential]
    combinational = [
        i for i in instances if not get_cell(i[0]).sequential
    ]
    for cell_name, instance, connections, output_net in flops:
        assert output_net not in net_ids
        net_ids[output_net] = netlist._new_net(output_net)  # noqa: SLF001

    pending = list(combinational)
    pending_assigns = list(assigns)
    progress = True
    while (pending or pending_assigns) and progress:
        progress = False
        for item in list(pending):
            cell_name, instance, connections, output_net = item
            names = [connections[p] for p in wired_ports(cell_name)]
            if not all(name in net_ids for name in names):
                continue
            net_ids[output_net] = netlist.add_gate(
                cell_name, [net_ids[n] for n in names],
                instance=instance, output_name=output_net,
            )
            pending.remove(item)
            progress = True
        for lhs, rhs in list(pending_assigns):
            if rhs in net_ids and lhs not in net_ids:
                net_ids[lhs] = net_ids[rhs]
                pending_assigns.remove((lhs, rhs))
                progress = True
    assert not pending and not pending_assigns

    for cell_name, instance, connections, output_net in flops:
        input_nets = [
            net_ids[connections[p]] for p in wired_ports(cell_name)
        ]
        netlist.attach_gate(
            cell_name, input_nets, net_ids[output_net], instance
        )
    for name in outputs:
        netlist.add_output(net_ids[name], name)
    return netlist


# ----------------------------------------------------------------------
# guardrail tests
# ----------------------------------------------------------------------
def test_parser_bitwise_identical_to_sweep_parser(designs):
    for design in designs:
        source = to_verilog(design)
        new = from_verilog(source)
        old = reference_from_verilog(source)
        assert snapshot(new) == snapshot(old), design.name


def test_parser_bitwise_identical_on_shuffled_statements(designs):
    # Statement order must not matter; the rounds schedule has to
    # replicate the old sweeps even when gates appear before drivers.
    rng = np.random.default_rng(13)
    for design in designs[:4]:
        lines = to_verilog(design).splitlines()
        gate_lines = [
            i for i, line in enumerate(lines)
            if line.strip().split(" ")[0] in LIBRARY
        ]
        shuffled = list(lines)
        order = rng.permutation(len(gate_lines))
        for slot, take in zip(gate_lines, order):
            shuffled[slot] = lines[gate_lines[take]]
        source = "\n".join(shuffled)
        assert snapshot(from_verilog(source)) == snapshot(
            reference_from_verilog(source)
        ), design.name


def test_adjacency_bitwise_identical(designs):
    for design in designs:
        reference = reference_adjacency(design)
        adjacency = design.gate_adjacency()
        for field in reference:
            assert np.array_equal(
                getattr(adjacency, field), reference[field]
            ), (design.name, field)


def test_levelize_bitwise_identical(designs):
    for design in designs:
        assert design.levelize() == reference_levelize(design), design.name


def test_topological_order_matches_sorted_levels(designs):
    for design in designs:
        levels = design.levelize()
        expected = sorted(range(design.n_gates),
                          key=lambda i: (levels[i], i))
        assert design.topological_order() == expected, design.name


def test_edges_bitwise_identical(designs):
    for design in designs:
        assert np.array_equal(
            netlist_edges(design), reference_edges(design)
        ), design.name


def test_feature_columns_bitwise_identical(designs):
    for design in designs:
        assert np.array_equal(
            inverting_tags(design),
            np.array([1.0 if g.cell.inverting else 0.0
                      for g in design.gates]),
        ), design.name
        assert np.array_equal(
            is_sequential_flags(design),
            np.array([1.0 if g.is_sequential else 0.0
                      for g in design.gates]),
        ), design.name
        assert np.array_equal(
            output_distances(design), reference_output_distances(design)
        ), design.name


def test_feature_matrix_bitwise_stable_through_parser(designs):
    # Parse -> features must equal direct features on the parsed
    # netlist regardless of which construction path built it.
    for design in designs[:4]:
        parsed = from_verilog(to_verilog(design))
        reference = reference_from_verilog(to_verilog(design))
        a = extract_features(parsed, probability_source="cop")
        b = extract_features(reference, probability_source="cop")
        assert np.array_equal(a.matrix, b.matrix), design.name
        assert np.array_equal(
            netlist_edges(parsed), netlist_edges(reference)
        ), design.name


def test_bulk_construction_identical_to_incremental():
    # The deferred-invalidation path must not change what gets built.
    def build(bulk):
        netlist = Netlist("bulkdemo")
        def program():
            a = netlist.add_input("a")
            b = netlist.add_input("b")
            n1 = netlist.add_gate("ND2", [a, b], instance="U1")
            n2 = netlist.add_gate("IV", [n1], instance="U2")
            q = netlist.add_gate("DFFE", [n2, a], instance="R1")
            netlist.add_gate("XOR2", [n2, q], instance="U3",
                             output_name="y")
            netlist.add_output(netlist.net_index("y"), "y")
        if bulk:
            with netlist.building():
                program()
        else:
            program()
        return netlist

    incremental, bulk = build(False), build(True)
    assert snapshot(incremental) == snapshot(bulk)
    assert incremental.levelize() == bulk.levelize()
    assert np.array_equal(netlist_edges(incremental),
                          netlist_edges(bulk))


def test_reads_inside_bulk_mode_are_fresh():
    netlist = Netlist("fresh")
    with netlist.building():
        a = netlist.add_input("a")
        netlist.add_gate("IV", [a], instance="U1", output_name="y")
        assert netlist.n_inputs == 1
        assert netlist.levelize() == [0]
        b = netlist.add_input("b")
        netlist.add_gate("AN2", [netlist.net_index("y"), b],
                         instance="U2")
        # Cache invalidation was deferred, but reads must see U2.
        assert netlist.levelize() == [0, 1]
        assert netlist.n_inputs == 2
    assert netlist.gate_adjacency().fanout_indices.tolist() == [1]


def test_levelize_loop_error_matches_old_message():
    netlist = Netlist("loopy")
    a = netlist.add_input("a")
    with netlist.building():
        # Build a 2-gate combinational loop by rewiring.
        n1 = netlist.add_gate("AN2", [a, a], instance="U1")
        n2 = netlist.add_gate("OR2", [n1, a], instance="U2")
        gate = netlist.gates[0]
        gate.inputs = (a, n2)
        netlist.nets[a].sinks.remove((0, 1))
        netlist.nets[n2].sinks.append((0, 1))
        netlist.invalidate_structure()
    with pytest.raises(NetlistError,
                       match=r"combinational loop involving gates: "
                             r"\['AN2_U1', 'OR2_U2'\]"):
        netlist.levelize()
