"""Tests for the structural-Verilog reader/writer."""

import numpy as np
import pytest

from repro.circuits import random_netlist
from repro.netlist import (
    Netlist,
    from_verilog,
    read_verilog,
    to_verilog,
    validate,
    write_verilog,
)
from repro.sim import Simulator, random_workload
from repro.utils.errors import NetlistError


def roundtrip(netlist):
    return from_verilog(to_verilog(netlist))


def test_roundtrip_preserves_structure(all_designs):
    for design in all_designs:
        parsed = roundtrip(design)
        validate(parsed)
        assert parsed.name == design.name
        assert parsed.n_gates == design.n_gates
        assert parsed.n_nets == design.n_nets
        assert sorted(parsed.node_names()) == sorted(design.node_names())
        assert parsed.input_names() == design.input_names()
        assert parsed.output_names() == design.output_names()


def test_roundtrip_preserves_behaviour(icfsm):
    parsed = roundtrip(icfsm)
    workload = random_workload(icfsm, cycles=40, seed=5)
    original = Simulator(icfsm).run(workload)
    replay = Simulator(parsed).run(workload)
    assert np.array_equal(original.outputs, replay.outputs)


def test_roundtrip_random_netlists():
    for seed in range(4):
        netlist = random_netlist(n_inputs=5, n_gates=30, n_flops=4,
                                 n_outputs=3, seed=seed)
        parsed = roundtrip(netlist)
        validate(parsed)
        workload = random_workload(netlist, cycles=30, seed=seed,
                                   reset_input="in_0")
        a = Simulator(netlist).run(workload)
        b = Simulator(parsed).run(workload)
        assert np.array_equal(a.outputs, b.outputs)


def test_file_io(tmp_path, tiny_netlist):
    path = tmp_path / "tiny.v"
    write_verilog(tiny_netlist, path)
    parsed = read_verilog(path)
    assert parsed.n_gates == tiny_netlist.n_gates


def test_parse_simple_module():
    source = """
    // a comment
    module demo (a, b, y);
      input a, b;      /* grouped decl */
      output y;
      wire n1;
      ND2 U1 (.A0(a), .A1(b), .Y(n1));
      IV U2 (.A0(n1), .Y(y));
    endmodule
    """
    netlist = from_verilog(source)
    assert netlist.name == "demo"
    assert netlist.n_gates == 2
    assert netlist.node_names() == ["ND2_U1", "IV_U2"]


def test_parse_out_of_order_statements():
    source = """
    module ooo (a, y);
      input a;
      output y;
      IV U2 (.A0(n1), .Y(y));
      IV U1 (.A0(a), .Y(n1));
    endmodule
    """
    netlist = from_verilog(source)
    assert netlist.n_gates == 2
    validate(netlist)


def test_parse_assign_alias():
    source = """
    module alias_demo (a, y);
      input a;
      output y;
      assign y = n1;
      IV U1 (.A0(a), .Y(n1));
    endmodule
    """
    netlist = from_verilog(source)
    assert netlist.n_gates == 1
    assert netlist.output_names() == ["y"]


def test_parse_flop_feedback():
    source = """
    module counter1 (rst, q);
      input rst;
      output q;
      IV U1 (.A0(q), .Y(nq));
      DFFR R1 (.D(nq), .R(rst), .Q(q));
    endmodule
    """
    netlist = from_verilog(source)
    validate(netlist)
    sim = Simulator(netlist)
    values = [sim.step({"rst": 0})["q"] for _ in range(4)]
    assert values == [0, 1, 0, 1]  # toggle flop


def test_parse_errors():
    with pytest.raises(NetlistError, match="no module"):
        from_verilog("wire x;")
    with pytest.raises(NetlistError, match="unknown cell"):
        from_verilog("module m (a, y); input a; output y;"
                     " FOO U1 (.A0(a), .Y(y)); endmodule")
    with pytest.raises(NetlistError, match="output"):
        from_verilog("module m (a, y); input a; output y;"
                     " IV U1 (.A0(a)); endmodule")
    with pytest.raises(NetlistError, match="never driven|could not"):
        from_verilog("module m (a, y); input a; output y;"
                     " IV U1 (.A0(nx), .Y(y)); endmodule")
    with pytest.raises(NetlistError, match="unsupported assign"):
        from_verilog("module m (a, y); input a; output y;"
                     " assign y = a & a; endmodule")


def test_parse_combinational_loop_rejected():
    source = """
    module loopy (a, y);
      input a;
      output y;
      AN2 U1 (.A0(a), .A1(n2), .Y(n1));
      OR2 U2 (.A0(n1), .A1(a), .Y(n2));
      OR2 U3 (.A0(n1), .A1(n2), .Y(y));
    endmodule
    """
    with pytest.raises(NetlistError, match="could not resolve"):
        from_verilog(source)


# ----------------------------------------------------------------------
# line-numbered parse errors
# ----------------------------------------------------------------------
def parse_error(source):
    with pytest.raises(NetlistError) as excinfo:
        from_verilog(source)
    return str(excinfo.value)


def test_error_unknown_cell_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a;\n"
        "  output y;\n"
        "  FOO U1 (.A0(a), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 4" in message and "unknown cell 'FOO'" in message


def test_error_missing_output_connection_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  IV U1 (.A0(a));\n"
        "endmodule\n"
    )
    assert "line 3" in message
    assert "no output connection .Y(...)" in message


def test_error_missing_input_connection_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  ND2 U1 (.A0(a), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 3" in message
    assert "missing connection .A1(...)" in message


def test_error_two_drivers_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  IV U1 (.A0(a), .Y(y));\n"
        "  IV U2 (.A0(a), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 4" in message and "net 'y' has two drivers" in message


def test_error_two_drivers_flop_vs_gate_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  IV U1 (.A0(a), .Y(q));\n"
        "  DFF R1 (.D(a), .Q(q));\n"
        "  IV U2 (.A0(q), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 4" in message and "net 'q' has two drivers" in message


def test_error_never_driven_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  IV U1 (.A0(nx), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 3" in message and "never driven" in message


def test_error_undriven_output_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a;\n"
        "  output y;\n"
        "  BUF U1 (.A0(a), .Y(n1));\n"
        "endmodule\n"
    )
    assert "line 3" in message and "output 'y' never driven" in message


def test_error_combinational_loop_reports_lines():
    message = parse_error(
        "module loopy (a, y);\n"
        "  input a; output y;\n"
        "  AN2 U1 (.A0(a), .A1(n2), .Y(n1));\n"
        "  OR2 U2 (.A0(n1), .A1(a), .Y(n2));\n"
        "  BUF U3 (.A0(n1), .Y(y));\n"
        "endmodule\n"
    )
    assert "could not resolve drivers for ['U1', 'U2', 'U3']" in message
    assert "at lines [3, 4, 5]" in message


def test_error_unsupported_assign_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  assign y = a & a;\n"
        "endmodule\n"
    )
    assert "line 3" in message and "unsupported assign" in message


def test_error_duplicate_instance_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  IV U1 (.A0(a), .Y(n1));\n"
        "  IV U1 (.A0(n1), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 4" in message
    assert "duplicate instance name 'U1'" in message


def test_error_unterminated_comment_reports_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "  /* oops\n"
        "  IV U1 (.A0(a), .Y(y));\n"
        "endmodule\n"
    )
    assert "line 3" in message
    assert "unterminated block comment" in message


def test_multiline_statements_report_first_line():
    message = parse_error(
        "module m (a, y);\n"
        "  input a; output y;\n"
        "\n"
        "  FOO U1 (.A0(a),\n"
        "          .Y(y));\n"
        "endmodule\n"
    )
    assert "line 4" in message


def test_final_statement_without_semicolon_still_parses():
    # The historical parser accepted an unterminated final statement.
    netlist = from_verilog(
        "module m (a, y); input a; output y;"
        " IV U1 (.A0(a), .Y(y)) endmodule"
    )
    assert netlist.n_gates == 1
