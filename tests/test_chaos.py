"""Chaos harness: worker kills, poison units, and SIGINT resumability.

The supervised pool's contract is that violence against its workers
never changes results — a SIGKILLed worker's unit is re-run (per-unit
determinism makes the re-run bitwise identical), a unit that keeps
killing hosts is quarantined into the failure ledger, and a SIGINTed
campaign exits 130 with every completed unit durable on disk.  These
tests commit the violence and check the contract end to end on the
real campaign runner and GNNExplainer.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fi import run_campaign
from repro.fi.runner import CampaignRunner
from repro.graph import GraphData, stratified_split
from repro.models import GCNClassifier
from repro.nn import TrainingConfig
from repro.sim import design_workloads
from repro.utils.parallel import fork_context

pytestmark = pytest.mark.skipif(
    fork_context() is None,
    reason="chaos tests require the fork start method",
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def suite(icfsm):
    return design_workloads(icfsm.name, icfsm, count=4, cycles=60,
                            seed=3)


@pytest.fixture(scope="module")
def baseline(icfsm, suite):
    return run_campaign(icfsm, suite)


def assert_campaigns_identical(left, right):
    assert left.workload_names == right.workload_names
    assert np.array_equal(left.error_cycles, right.error_cycles)
    assert np.array_equal(left.detection_cycle, right.detection_cycle)
    assert np.array_equal(left.latent, right.latent)


class TestCampaignChaos:
    def test_worker_kills_mid_campaign_identical_results(
        self, icfsm, suite, baseline, tmp_path, monkeypatch,
    ):
        """SIGKILL the host worker on the first execution of two
        different units: the pool requeues each onto a fresh worker
        and the campaign result stays bitwise identical to serial."""
        original = CampaignRunner._run_unit

        def chaotic(self, row, shard):
            flag = tmp_path / f"killed_{row}_{shard}"
            if row in (0, 2) and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, row, shard)

        # The pool forks after the patch, so workers inherit it.
        monkeypatch.setattr(CampaignRunner, "_run_unit", chaotic)
        survived = run_campaign(icfsm, suite, jobs=2,
                                heartbeat_interval=0.1)
        assert survived.complete
        assert_campaigns_identical(baseline, survived)

    def test_worker_kills_mid_sharded_campaign(
        self, icfsm, suite, baseline, tmp_path, monkeypatch,
    ):
        """Same chaos under the sharded engine + checkpointing: the
        killed units re-run, checkpoints land once, results match."""
        original = CampaignRunner._run_unit
        checkpoints = tmp_path / "ckpt"

        def chaotic(self, row, shard):
            flag = tmp_path / f"killed_{row}_{shard}"
            if (row, shard) == (1, 0) and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, row, shard)

        monkeypatch.setattr(CampaignRunner, "_run_unit", chaotic)
        survived = run_campaign(
            icfsm, suite, jobs=2, shard_size=None,
            checkpoint_dir=checkpoints, heartbeat_interval=0.1,
        )
        assert survived.complete
        assert_campaigns_identical(baseline, survived)
        # Every unit checkpoint landed exactly once, despite the kill.
        resumed = run_campaign(icfsm, suite, jobs=2, shard_size=None,
                               checkpoint_dir=checkpoints, resume=True)
        assert_campaigns_identical(baseline, resumed)

    def test_poison_unit_quarantined_into_ledger(
        self, icfsm, suite, baseline, monkeypatch,
    ):
        """A unit that SIGKILLs every host it is given lands in the
        failure ledger as ``worker_crash`` naming the signal; the
        other workloads complete with bitwise-correct rows."""
        original = CampaignRunner._run_unit

        def poison(self, row, shard):
            if row == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(self, row, shard)

        monkeypatch.setattr(CampaignRunner, "_run_unit", poison)
        result = run_campaign(icfsm, suite, jobs=2,
                              heartbeat_interval=0.1)
        assert not result.complete
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.workload == suite[1].name
        assert failure.status == "worker_crash"
        assert "SIGKILL" in failure.error
        assert failure.attempts >= 2  # poison_threshold hosts died
        assert list(result.completed_mask) == [True, False, True, True]
        # The poisoned row degrades to the documented no-error state...
        assert not result.error_cycles[1].any()
        # ...and every healthy row is untouched by the chaos.
        healthy = [0, 2, 3]
        assert np.array_equal(baseline.error_cycles[healthy],
                              result.error_cycles[healthy])
        assert np.array_equal(baseline.latent[healthy],
                              result.latent[healthy])


class TestExplainerChaos:
    @pytest.fixture(scope="class")
    def trained(self):
        """Small irregular graph (cheap to explain many nodes on)."""
        rng = np.random.default_rng(9)
        n = 40
        x = rng.normal(size=(n, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        sources = list(range(n - 1)) + [0, 3, 7, 11, 20, 28]
        targets = list(range(1, n)) + [5, 14, 22, 30, 38, 35]
        data = GraphData(
            design="chaos-graph",
            node_names=[f"G_{i}" for i in range(n)],
            x=x, x_raw=x,
            edge_index=np.array([sources, targets]),
            y_class=y,
            y_score=y.astype(float),
            feature_names=["signal", "noise1", "noise2", "noise3"],
        )
        split = stratified_split(y, 0.2, seed=0)
        model = GCNClassifier(
            hidden_dims=(8,), dropout=0.0, seed=1,
            config=TrainingConfig(epochs=120, patience=40),
        ).fit(data, split)
        return data, model

    def test_worker_kill_mid_explain_many_identical(
        self, trained, tmp_path, monkeypatch,
    ):
        """SIGKILL the worker holding the first explanation batch: the
        batch re-runs on a fresh worker and every explanation matches
        the serial reference exactly (per-node derived RNG)."""
        import repro.explain.gnn_explainer as ge

        data, model = trained
        nodes = list(range(data.n_nodes))
        serial = ge.GNNExplainer(model, data, seed=3).explain_many(
            nodes, jobs=1, batch_size=4
        )

        original = ge._worker_batch
        flag = tmp_path / "killed_once"

        def chaotic(unit):
            if not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return original(unit)

        monkeypatch.setattr(ge, "_worker_batch", chaotic)
        explainer = ge.GNNExplainer(model, data, seed=3)
        chaos = explainer.explain_many(
            nodes, jobs=2, batch_size=4, heartbeat_interval=0.1,
        )
        assert flag.exists()  # the kill actually happened
        assert len(chaos) == len(serial)
        for left, right in zip(serial, chaos):
            assert left.node_index == right.node_index
            assert left.predicted_class == right.predicted_class
            assert np.array_equal(left.feature_scores,
                                  right.feature_scores)
            assert left.edge_importance == right.edge_importance

    def test_poison_batch_raises_typed_error(
        self, trained, monkeypatch,
    ):
        """A batch that kills every host raises ModelError naming the
        nodes and the signal instead of a bare BrokenProcessPool."""
        import repro.explain.gnn_explainer as ge
        from repro.utils.errors import ModelError

        data, model = trained

        def poison(_unit):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(ge, "_worker_batch", poison)
        explainer = ge.GNNExplainer(model, data, seed=3)
        with pytest.raises(ModelError,
                           match="worker_crash.*SIGKILL"):
            explainer.explain_many(
                list(range(8)), jobs=2, batch_size=2,
                heartbeat_interval=0.1,
            )


class TestSignalShutdown:
    @pytest.fixture(scope="class")
    def reference(self, icfsm):
        """Uninterrupted serial campaign matching the CLI invocation."""
        return run_campaign(
            icfsm,
            design_workloads(icfsm.name, icfsm, count=8, cycles=400,
                             seed=0),
        )

    def _spawn_campaign(self, checkpoint_dir, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign",
             "or1200_icfsm", "--workloads", "8", "--cycles", "400",
             "--seed", "0", "--jobs", "2", "--shard-size", "auto",
             "--checkpoint-dir", str(checkpoint_dir), *extra],
            cwd=str(REPO_ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_130_and_resumes_identically(
        self, tmp_path, signum, reference,
    ):
        """Interrupt a live pooled CLI campaign after its first durable
        checkpoint: it must exit 130 (resumable, not a crash), leave
        only whole unit files behind, and a --resume run must finish
        with results identical to an uninterrupted serial campaign."""
        checkpoint_dir = tmp_path / "ckpt"
        process = self._spawn_campaign(checkpoint_dir)
        deadline = time.monotonic() + 60.0
        try:
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                done = list(checkpoint_dir.glob("workload_*.npz"))
                if done:
                    break
                time.sleep(0.02)
            assert process.poll() is None, (
                "campaign finished before the signal could be sent: "
                + process.communicate()[0]
            )
            process.send_signal(signum)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == 130, (stdout, stderr)
        assert "resume" in stderr
        completed = sorted(checkpoint_dir.glob("workload_*.npz"))
        assert completed  # durable progress survived the interrupt
        assert len(completed) < 8  # ...but the run really was partial

        out = tmp_path / "resumed.npz"
        resumed = self._spawn_campaign(
            checkpoint_dir, extra=("--resume", "--out", str(out)),
        )
        stdout, stderr = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, (stdout, stderr)

        from repro.io import load_campaign

        final = load_campaign(out)
        assert final.complete
        assert_campaigns_identical(reference, final)
