"""Tests for classification/ROC/regression metrics."""

import numpy as np
import pytest

from repro.metrics import (
    ConfusionMatrix,
    accuracy,
    auc_score,
    balanced_accuracy,
    classification_conformity,
    mae,
    mse,
    pearson,
    r2,
    roc_curve,
    spearman,
)
from repro.utils.errors import ModelError


def test_accuracy():
    assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 0])) == (
        pytest.approx(2 / 3)
    )
    with pytest.raises(ModelError):
        accuracy(np.array([]), np.array([]))
    with pytest.raises(ModelError):
        accuracy(np.array([1]), np.array([1, 0]))


def test_confusion_matrix():
    y_true = np.array([1, 1, 0, 0, 1])
    y_pred = np.array([1, 0, 0, 1, 1])
    matrix = ConfusionMatrix.from_predictions(y_true, y_pred)
    assert (matrix.true_positive, matrix.false_negative) == (2, 1)
    assert (matrix.true_negative, matrix.false_positive) == (1, 1)
    assert matrix.tpr == pytest.approx(2 / 3)
    assert matrix.fpr == pytest.approx(1 / 2)
    assert matrix.precision == pytest.approx(2 / 3)
    assert matrix.f1 == pytest.approx(2 / 3)
    row = matrix.as_dict()
    assert row["TP"] == 2 and row["FPR"] == 0.5


def test_balanced_accuracy():
    y_true = np.array([1, 1, 1, 1, 0])
    always_one = np.ones(5, dtype=int)
    assert accuracy(y_true, always_one) == pytest.approx(0.8)
    assert balanced_accuracy(y_true, always_one) == pytest.approx(0.5)


class TestRoc:
    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        curve = roc_curve(y, scores)
        assert curve.auc == pytest.approx(1.0)
        assert curve.tpr[-1] == 1.0 and curve.fpr[-1] == 1.0
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0

    def test_inverted_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_auc_equals_rank_statistic(self):
        """AUC == P(score_pos > score_neg) (Mann-Whitney)."""
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        scores = rng.normal(size=200) + y  # informative
        curve = roc_curve(y, scores)
        positives = scores[y == 1]
        negatives = scores[y == 0]
        wins = (positives[:, None] > negatives[None, :]).mean()
        assert curve.auc == pytest.approx(wins, abs=1e-9)

    def test_monotone_curve(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 100)
        curve = roc_curve(y, rng.random(100))
        assert (np.diff(curve.fpr) >= 0).all()
        assert (np.diff(curve.tpr) >= 0).all()

    def test_at_fpr_interpolation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        curve = roc_curve(y, scores)
        assert curve.at_fpr(0.0) == pytest.approx(1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ModelError):
            roc_curve(np.ones(4), np.random.rand(4))


class TestRegressionMetrics:
    def test_mse_mae(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 5.0])
        assert mse(a, b) == pytest.approx(5 / 3)
        assert mae(a, b) == pytest.approx(1.0)

    def test_r2(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2(y, y) == pytest.approx(1.0)
        assert r2(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_pearson_known(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson(a, 2 * a + 1) == pytest.approx(1.0)
        assert pearson(a, -a) == pytest.approx(-1.0)
        assert pearson(a, np.ones(4)) == 0.0  # constant -> 0 by contract

    def test_pearson_matches_numpy(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_spearman_rank_invariance(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.exp(a)  # monotone transform
        assert spearman(a, b) == pytest.approx(1.0)

    def test_spearman_with_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([2.0, 2.0, 4.0, 9.0])
        assert spearman(a, b) == pytest.approx(1.0)

    def test_conformity(self):
        scores = np.array([0.7, 0.3, 0.55, 0.1])
        labels = np.array([1, 0, 0, 0])
        assert classification_conformity(scores, labels) == (
            pytest.approx(0.75)
        )

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            mse(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ModelError):
            classification_conformity(np.array([0.5]), np.array([1, 0]))


class TestMcNemar:
    def test_identical_predictions(self):
        from repro.metrics import mcnemar_test

        y = np.array([0, 1, 0, 1, 1])
        p = np.array([0, 1, 1, 1, 0])
        result = mcnemar_test(y, p, p)
        assert result.p_value == 1.0
        assert result.discordant == 0

    def test_one_sided_dominance_is_significant(self):
        from repro.metrics import mcnemar_test

        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 200)
        perfect = y.copy()
        noisy = y.copy()
        flips = rng.choice(200, 30, replace=False)
        noisy[flips] = 1 - noisy[flips]
        result = mcnemar_test(y, perfect, noisy)
        assert result.a_right_b_wrong == 30
        assert result.a_wrong_b_right == 0
        assert result.p_value < 1e-6

    def test_symmetric_disagreement_not_significant(self):
        from repro.metrics import mcnemar_test

        y = np.zeros(40, dtype=int)
        a = y.copy()
        b = y.copy()
        a[:10] = 1   # a wrong on 10
        b[10:20] = 1  # b wrong on a different 10
        result = mcnemar_test(y, a, b)
        assert result.a_right_b_wrong == 10
        assert result.a_wrong_b_right == 10
        assert result.p_value > 0.5

    def test_exact_small_sample_value(self):
        from repro.metrics import mcnemar_test

        # 5 discordant, 0/5 split: p = 2 * 0.5^5 = 0.0625
        y = np.zeros(5, dtype=int)
        a = np.zeros(5, dtype=int)        # always right
        b = np.ones(5, dtype=int)         # always wrong
        result = mcnemar_test(y, a, b)
        assert result.p_value == pytest.approx(2 * 0.5**5)

    def test_pooled_folds(self):
        from repro.metrics import pooled_mcnemar

        y_folds = [np.array([0, 1]), np.array([1, 0])]
        a_folds = [np.array([0, 1]), np.array([1, 0])]   # perfect
        b_folds = [np.array([1, 1]), np.array([1, 1])]   # half wrong
        result = pooled_mcnemar(y_folds, a_folds, b_folds)
        assert result.a_right_b_wrong == 2
        assert result.discordant == 2

    def test_validation(self):
        from repro.metrics import mcnemar_test
        from repro.utils.errors import ModelError

        with pytest.raises(ModelError):
            mcnemar_test(np.array([1]), np.array([1, 0]),
                         np.array([1, 0]))
