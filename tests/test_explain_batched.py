"""Batched / multi-core GNNExplainer equivalence and structure tests.

The contract mirrors the sharded campaign engine's: for EVERY
``(batch_size, jobs)`` configuration the per-node explanations must be
identical to the serial ``batch_size=1`` reference.  Equal-width
subgraphs are stacked into block-diagonal sparse batches whose
products cannot mix blocks, and per-node RNG streams are derived from
``(seed, node_index)``, so any divergence is an engine bug, not
numerical noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain import GNNExplainer
from repro.explain.gnn_explainer import (
    DEFAULT_BATCH_SIZE,
    hop_levels,
    hop_neighborhood,
    undirected_csr,
)
from repro.graph import GraphData, stratified_split
from repro.models import GCNClassifier
from repro.nn import TrainingConfig
from repro.utils.errors import CampaignError, ModelError


@pytest.fixture(scope="module")
def trained_setup():
    """A 50-node graph with irregular connectivity (chain + chords),
    so computation subgraphs come in many different widths and the
    batcher has to group them."""
    rng = np.random.default_rng(9)
    n = 50
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    sources = list(range(n - 1)) + [0, 3, 7, 11, 20, 28, 33, 41]
    targets = list(range(1, n)) + [5, 14, 22, 30, 38, 44, 46, 49]
    data = GraphData(
        design="chords",
        node_names=[f"G_{i}" for i in range(n)],
        x=x, x_raw=x,
        edge_index=np.array([sources, targets]),
        y_class=y,
        y_score=y.astype(float),
        feature_names=["signal", "noise1", "noise2", "noise3"],
    )
    split = stratified_split(y, 0.2, seed=0)
    model = GCNClassifier(
        hidden_dims=(8,), dropout=0.0, seed=1,
        config=TrainingConfig(epochs=150, patience=40),
    ).fit(data, split)
    return data, model


def _assert_same_explanations(reference, candidate):
    assert len(reference) == len(candidate)
    for left, right in zip(reference, candidate):
        assert left.node_index == right.node_index
        assert left.predicted_class == right.predicted_class
        assert left.subgraph_nodes == right.subgraph_nodes
        assert np.array_equal(left.feature_scores,
                              right.feature_scores)
        assert left.edge_importance == right.edge_importance


def test_batched_and_parallel_match_serial(trained_setup):
    data, model = trained_setup
    nodes = list(range(data.n_nodes))
    serial = GNNExplainer(model, data, seed=3).explain_many(
        nodes, jobs=1, batch_size=1
    )
    batched = GNNExplainer(model, data, seed=3).explain_many(
        nodes, jobs=1, batch_size=DEFAULT_BATCH_SIZE
    )
    forked = GNNExplainer(model, data, seed=3).explain_many(
        nodes, jobs=2, batch_size=4
    )
    _assert_same_explanations(serial, batched)
    _assert_same_explanations(serial, forked)


def test_explain_single_matches_batch_member(trained_setup):
    data, model = trained_setup
    nodes = [4, 17, 30, 42]
    many = GNNExplainer(model, data, seed=3).explain_many(nodes)
    one = GNNExplainer(model, data, seed=3).explain(17)
    reference = many[nodes.index(17)]
    assert np.array_equal(one.feature_scores,
                          reference.feature_scores)
    assert one.edge_importance == reference.edge_importance


def test_batched_seeded_determinism(trained_setup):
    data, model = trained_setup
    nodes = [2, 9, 25, 40]
    first = GNNExplainer(model, data, seed=11).explain_many(
        nodes, batch_size=4
    )
    second = GNNExplainer(model, data, seed=11).explain_many(
        nodes, jobs=2, batch_size=2
    )
    _assert_same_explanations(first, second)
    other_seed = GNNExplainer(model, data, seed=12).explain_many(
        nodes, batch_size=4
    )
    weights = [w for _, _, w in first[1].edge_importance]
    other_weights = [w for _, _, w in other_seed[1].edge_importance]
    assert weights != other_weights  # edge-logit init is seed-derived


def test_log_probs_computed_once(trained_setup, monkeypatch):
    data, model = trained_setup
    calls = []
    original = type(model).log_probs

    def counting(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(type(model), "log_probs", counting)
    explainer = GNNExplainer(model, data, seed=0)
    explainer.explain_many([1, 2, 3])
    explainer.explain(8)
    assert len(calls) == 1  # full-graph prediction cached per explainer


def test_batch_size_validation(trained_setup):
    data, model = trained_setup
    with pytest.raises(ModelError):
        GNNExplainer(model, data, batch_size=0)
    explainer = GNNExplainer(model, data, seed=0)
    with pytest.raises(ModelError):
        explainer.explain_many([1], batch_size=-2)
    with pytest.raises(CampaignError):
        explainer.explain_many([1, 2], jobs=-1)
    assert explainer.explain_many([]) == []


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_hop_neighborhood_matches_bfs_reference(data):
    """The vectorized CSR frontier expansion must agree with a
    textbook Python-set BFS on arbitrary graphs, including self-loops,
    duplicate edges, and unreachable components."""
    n = data.draw(st.integers(2, 24))
    edges = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=60,
    ))
    hops = data.draw(st.integers(0, 4))
    source = data.draw(st.integers(0, n - 1))

    edge_index = np.array(
        [[s for s, _ in edges], [t for _, t in edges]],
        dtype=np.int64,
    ).reshape(2, -1)
    indptr, indices = undirected_csr(edge_index, n)
    nodes, levels = hop_levels(indptr, indices, source, hops)

    adjacency = {i: set() for i in range(n)}
    for s, t in edges:
        adjacency[s].add(t)
        adjacency[t].add(s)
    distance = {source: 0}
    frontier = {source}
    for hop in range(1, hops + 1):
        frontier = {
            neighbor
            for node in frontier for neighbor in adjacency[node]
            if neighbor not in distance
        }
        for node in frontier:
            distance[node] = hop

    assert list(nodes) == sorted(distance)
    assert {int(n): int(l) for n, l in zip(nodes, levels)} == distance
    assert np.array_equal(
        hop_neighborhood(indptr, indices, source, hops), nodes
    )
