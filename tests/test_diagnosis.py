"""Tests for fault-dictionary diagnosis."""

import numpy as np
import pytest

from repro.fi import FaultDictionary, run_campaign
from repro.fi.collapse import collapse_faults
from repro.fi.faults import full_fault_universe
from repro.sim import design_workloads
from repro.utils.errors import SimulationError


@pytest.fixture(scope="module")
def dictionary(icfsm):
    workloads = design_workloads(icfsm.name, icfsm, count=8,
                                 cycles=120, seed=0)
    campaign = run_campaign(icfsm, workloads)
    return FaultDictionary(campaign)


def test_self_diagnosis_resolves_to_equivalence_class(icfsm, dictionary):
    """Feeding a fault's own signature back ranks that fault (or an
    exact-signature equivalent) first, for a sample of detected
    faults."""
    campaign = dictionary.campaign
    detected = np.flatnonzero(campaign.observed.any(axis=0))
    rng = np.random.default_rng(3)
    for fault_index in rng.choice(detected, 15, replace=False):
        candidates = dictionary.diagnose_fault_index(int(fault_index),
                                                     top=3)
        best = candidates[0]
        true_name = campaign.faults[fault_index].name
        if best.fault_name != true_name:
            # Must be an exact-signature tie (indistinguishable fault).
            assert best.score == pytest.approx(1.0)
            assert dictionary.signature_of(best.fault_name) == (
                dictionary.signature_of(true_name)
            )
        else:
            assert best.score == pytest.approx(1.0)


def test_partial_observations_still_rank_high(dictionary):
    """Withholding some workloads degrades resolution gracefully."""
    campaign = dictionary.campaign
    detected = np.flatnonzero(campaign.observed.sum(axis=0) >= 4)
    fault_index = int(detected[0])
    candidates = dictionary.diagnose_fault_index(fault_index, top=10,
                                                 drop_workloads=4)
    names = [candidate.fault_name for candidate in candidates]
    true_name = campaign.faults[fault_index].name
    true_signature = dictionary.signature_of(true_name)
    # The true fault (or an equivalent) is among the top candidates.
    assert any(
        name == true_name
        or dictionary.signature_of(name) == true_signature
        or candidates[position].score >= candidates[0].score - 1e-9
        for position, name in enumerate(names[:5])
    )


def test_undetected_syndrome_matches_benign_faults(dictionary):
    """An all-pass observation matches faults never detected."""
    observed = {name: -1 for name in dictionary.workload_names}
    candidates = dictionary.diagnose(observed, top=3)
    campaign = dictionary.campaign
    for candidate in candidates:
        index = [fault.name for fault in campaign.faults].index(
            candidate.fault_name
        )
        assert not campaign.observed[:, index].any()
        assert candidate.score >= 0.9  # all detection cycles agree


def test_validation(dictionary):
    with pytest.raises(SimulationError):
        dictionary.diagnose({})
    with pytest.raises(SimulationError):
        dictionary.diagnose({"nope": 3})
    with pytest.raises(SimulationError):
        dictionary.signature_of("nope")
    with pytest.raises(SimulationError):
        dictionary.diagnose_fault_index(
            0, drop_workloads=len(dictionary.workload_names)
        )


def test_describe(dictionary):
    candidates = dictionary.diagnose_fault_index(0, top=1)
    text = candidates[0].describe()
    assert "score" in text and "workloads agree" in text
