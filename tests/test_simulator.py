"""Tests for the scalar simulator and stimulus containers."""

import numpy as np
import pytest

from repro.circuits import random_netlist
from repro.netlist import Netlist
from repro.sim import Simulator, Workload, random_workload
from repro.utils.errors import SimulationError


def test_step_combinational(tiny_netlist):
    sim = Simulator(tiny_netlist)
    assert sim.step({"a": 1, "b": 1}) == {"y": 1, "yn": 0}
    assert sim.step({"a": 1, "b": 0}) == {"y": 0, "yn": 1}


def test_step_holds_missing_inputs(tiny_netlist):
    sim = Simulator(tiny_netlist)
    sim.step({"a": 1, "b": 1})
    assert sim.step({})["y"] == 1  # both inputs held
    assert sim.step({"b": 0})["y"] == 0


def test_step_unknown_input(tiny_netlist):
    sim = Simulator(tiny_netlist)
    with pytest.raises(SimulationError, match="unknown inputs"):
        sim.step({"zz": 1})


def test_reset_clears_state():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    flop = netlist.add_gate("DFF", [a])
    netlist.add_output(flop, "q")
    sim = Simulator(netlist)
    sim.step({"a": 1})
    assert sim.step({"a": 0})["q"] == 1
    sim.reset()
    assert sim.step({"a": 0})["q"] == 0


def test_run_workload_and_trace(tiny_netlist):
    workload = Workload.from_dicts(
        "w", tiny_netlist,
        [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 1}],
    )
    trace = Simulator(tiny_netlist).run(workload)
    assert trace.cycles == 3
    assert list(trace.output("y")) == [1, 0, 1]
    assert list(trace.output("yn")) == [0, 1, 0]
    with pytest.raises(SimulationError):
        trace.output("nope")


def test_run_records_net_values(tiny_netlist):
    workload = Workload.from_dicts("w", tiny_netlist, [{"a": 1, "b": 1}])
    trace = Simulator(tiny_netlist).run(workload, record_nets=True)
    assert trace.net_values.shape == (1, tiny_netlist.n_nets)
    index = tiny_netlist.net_index("a")
    assert trace.net_values[0, index] == 1


def test_run_rejects_misaligned_workload(tiny_netlist, small_random_netlist):
    workload = random_workload(small_random_netlist, cycles=5, seed=0)
    with pytest.raises(SimulationError, match="input order"):
        Simulator(tiny_netlist).run(workload)


def test_run_driver_records_replayable_stimulus(icfsm):
    sim = Simulator(icfsm)
    observed_acks = []

    def driver(cycle, outputs):
        observed_acks.append(outputs.get("ack", 0))
        return {"reset": 1 if cycle < 2 else 0, "ic_en": 1, "cycstb": 1,
                "tag0_v_in": 1, "tag1_v_in": 1}

    workload = sim.run_driver(driver, 30, name="closed-loop")
    assert workload.cycles == 30
    replay = Simulator(icfsm).run(workload)
    # The recorded workload reproduces the closed-loop run exactly:
    # acks seen by the driver (delayed one cycle) match the trace.
    assert list(replay.output("ack")[:-1]) == observed_acks[1:]


def test_run_driver_rejects_unknown_inputs(tiny_netlist):
    sim = Simulator(tiny_netlist)
    with pytest.raises(SimulationError, match="unknown input"):
        sim.run_driver(lambda cycle, outputs: {"zz": 1}, 3)


def test_workload_from_dicts_validation(tiny_netlist):
    with pytest.raises(SimulationError, match="unknown input"):
        Workload.from_dicts("w", tiny_netlist, [{"zz": 1}])


def test_workload_shape_validation():
    with pytest.raises(SimulationError):
        Workload("w", ["a"], np.zeros((3, 2), dtype=np.uint8))
    with pytest.raises(SimulationError):
        Workload("w", ["a"], np.full((3, 1), 2, dtype=np.uint8))


def test_workload_column(tiny_netlist):
    workload = Workload.from_dicts(
        "w", tiny_netlist, [{"a": 1}, {"a": 0}, {"a": 1}]
    )
    assert list(workload.column("a")) == [1, 0, 1]
    with pytest.raises(SimulationError):
        workload.column("zz")


def test_trace_output_word(icfsm):
    workload = random_workload(icfsm, cycles=20, seed=3)
    trace = Simulator(icfsm).run(workload)
    word = trace.output_word("refill_word")
    bits0 = trace.output("refill_word_0")
    bits1 = trace.output("refill_word_1")
    assert np.array_equal(word, bits0 + 2 * bits1)
    with pytest.raises(SimulationError):
        trace.output_word("nope")


def test_random_workload_reset_pulse(icfsm):
    workload = random_workload(icfsm, cycles=30, seed=0, reset_cycles=3)
    reset = workload.column("reset")
    assert list(reset[:3]) == [1, 1, 1]
    assert reset[3:].sum() == 0


def test_random_workload_hold(icfsm):
    workload = random_workload(icfsm, cycles=21, seed=0, hold=3)
    vectors = workload.vectors[3:]  # past the reset pulse... rows repeat
    # With hold=3 consecutive triples repeat (modulo boundary effects).
    repeats = sum(
        np.array_equal(vectors[i], vectors[i + 1])
        for i in range(len(vectors) - 1)
    )
    assert repeats >= len(vectors) // 2
