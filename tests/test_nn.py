"""Tests for the numpy NN engine: gradients, losses, optimizers,
training loops, and grid search."""

import numpy as np
import pytest

from repro.graph.adjacency import normalized_adjacency
from repro.models.gcn import build_gcn_stack
from repro.nn import (
    Adam,
    Dropout,
    GCNConv,
    Linear,
    LogSoftmax,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    TrainingConfig,
    bce_with_logits,
    glorot_uniform,
    grid_search,
    mse_loss,
    nll_loss,
    train_classifier,
    train_regressor,
)
from repro.utils.errors import ModelError


def numeric_gradient(loss_fn, parameter, eps=1e-6):
    grad = np.zeros_like(parameter.value)
    flat = parameter.value.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = loss_fn()
        flat[index] = original - eps
        minus = loss_fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


@pytest.mark.parametrize("layer_builder,input_shape", [
    (lambda: Linear(4, 3, seed=1), (6, 4)),
    (lambda: Sequential(Linear(4, 5, seed=1), ReLU(),
                        Linear(5, 2, seed=2)), (6, 4)),
    (lambda: Sequential(Linear(4, 5, seed=1), Tanh(),
                        Linear(5, 2, seed=2)), (6, 4)),
    (lambda: Sequential(Linear(4, 5, seed=1), Sigmoid(),
                        Linear(5, 2, seed=2)), (6, 4)),
])
def test_layer_gradients(layer_builder, input_shape):
    rng = np.random.default_rng(0)
    model = layer_builder()
    x = rng.normal(size=input_shape)
    targets = rng.integers(0, 2, input_shape[0])

    def loss_fn():
        out = model.forward(x)
        if out.shape[1] == 2:
            log_probs = out - np.log(
                np.exp(out).sum(axis=1, keepdims=True)
            )
            return nll_loss(log_probs, targets)[0]
        return float((out ** 2).mean())

    model.eval()
    out = model.forward(x)
    if out.shape[1] == 2:
        log_probs = out - np.log(np.exp(out).sum(axis=1, keepdims=True))
        _, grad = nll_loss(log_probs, targets)
        softmax = np.exp(log_probs)
        grad = grad - softmax * grad.sum(axis=1, keepdims=True)
    else:
        grad = 2 * out / out.size
    model.zero_grad()
    model.backward(grad)

    for parameter in model.parameters():
        numeric = numeric_gradient(loss_fn, parameter)
        assert np.allclose(parameter.grad, numeric, atol=1e-5), (
            parameter.shape
        )


def test_gcnconv_gradient():
    rng = np.random.default_rng(1)
    edges = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
    a_norm = normalized_adjacency(edges, 5)
    model = Sequential(
        GCNConv(3, 4, a_norm, seed=0), ReLU(),
        GCNConv(4, 2, a_norm, seed=1), LogSoftmax(),
    )
    x = rng.normal(size=(5, 3))
    y = rng.integers(0, 2, 5)

    def loss_fn():
        return nll_loss(model.forward(x), y)[0]

    _, grad = nll_loss(model.forward(x), y)
    model.zero_grad()
    model.backward(grad)
    for parameter in model.parameters():
        numeric = numeric_gradient(loss_fn, parameter)
        assert np.allclose(parameter.grad, numeric, atol=1e-5)


def test_logsoftmax_rows_normalize():
    layer = LogSoftmax()
    out = layer.forward(np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]]))
    assert np.allclose(np.exp(out).sum(axis=1), 1.0)


def test_dropout_modes():
    layer = Dropout(0.5, seed=0)
    x = np.ones((200, 10))
    layer.eval()
    assert np.array_equal(layer.forward(x), x)
    layer.train()
    out = layer.forward(x)
    kept = out > 0
    assert 0.3 < kept.mean() < 0.7
    assert np.allclose(out[kept], 2.0)  # inverted scaling
    # Backward applies the same mask.
    grad = layer.backward(np.ones_like(x))
    assert np.array_equal(grad > 0, kept)


def test_dropout_validation():
    with pytest.raises(ModelError):
        Dropout(1.0)


def test_backward_before_forward():
    layer = Linear(2, 2)
    with pytest.raises(ModelError):
        layer.backward(np.zeros((1, 2)))


def test_glorot_bounds():
    rng = np.random.default_rng(0)
    weights = glorot_uniform((100, 50), rng)
    limit = np.sqrt(6.0 / 150)
    assert weights.max() <= limit and weights.min() >= -limit


class TestLosses:
    def test_nll_known_value(self):
        log_probs = np.log(np.array([[0.9, 0.1], [0.2, 0.8]]))
        loss, grad = nll_loss(log_probs, np.array([0, 1]))
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        assert loss == pytest.approx(expected)
        assert grad.shape == log_probs.shape

    def test_nll_mask(self):
        log_probs = np.log(np.array([[0.9, 0.1], [0.2, 0.8]]))
        mask = np.array([True, False])
        loss, grad = nll_loss(log_probs, np.array([0, 1]), mask=mask)
        assert loss == pytest.approx(-np.log(0.9))
        assert np.allclose(grad[1], 0.0)

    def test_nll_class_weights(self):
        log_probs = np.log(np.array([[0.5, 0.5], [0.5, 0.5]]))
        loss_balanced, _ = nll_loss(
            log_probs, np.array([0, 1]),
            class_weights=np.array([2.0, 1.0]),
        )
        assert loss_balanced == pytest.approx(-np.log(0.5))

    def test_mse(self):
        loss, grad = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert loss == pytest.approx(0.5)
        assert np.allclose(grad, [1.0, 0.0])

    def test_mse_mask(self):
        loss, grad = mse_loss(
            np.array([1.0, 5.0]), np.array([0.0, 0.0]),
            mask=np.array([True, False]),
        )
        assert loss == pytest.approx(1.0)
        assert grad[1] == 0.0

    def test_bce_matches_manual(self):
        logits = np.array([0.0, 2.0])
        targets = np.array([1.0, 0.0])
        loss, grad = bce_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits))
        manual = -(np.log(p[0]) + np.log(1 - p[1])) / 2
        assert loss == pytest.approx(manual)
        assert np.allclose(grad, (p - targets) / 2)

    def test_empty_mask_rejected(self):
        with pytest.raises(ModelError):
            nll_loss(np.zeros((2, 2)), np.array([0, 1]),
                     mask=np.array([False, False]))


class TestOptimizers:
    def quadratic(self, optimizer_factory, steps=200):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_factory([parameter])
        for _ in range(steps):
            optimizer.zero_grad()
            parameter.grad += 2 * parameter.value  # d/dx of x^2
            optimizer.step()
        return parameter.value

    def test_sgd_converges(self):
        value = self.quadratic(lambda p: SGD(p, lr=0.1))
        assert np.abs(value).max() < 1e-4

    def test_sgd_momentum_converges(self):
        value = self.quadratic(lambda p: SGD(p, lr=0.05, momentum=0.9))
        assert np.abs(value).max() < 1e-3

    def test_adam_converges(self):
        value = self.quadratic(lambda p: Adam(p, lr=0.1), steps=400)
        assert np.abs(value).max() < 1e-3

    def test_weight_decay_shrinks(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        optimizer.step()  # gradient zero, decay only
        assert parameter.value[0] < 1.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ModelError):
            SGD([], lr=0.1)


def separable_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(np.int64)
    return x, y


def test_train_classifier_learns():
    x, y = separable_data()
    model = Sequential(Linear(4, 8, seed=0), ReLU(),
                       Linear(8, 2, seed=1), LogSoftmax())
    mask = np.ones(len(y), dtype=bool)
    history = train_classifier(
        model, x, y, mask, None,
        TrainingConfig(epochs=200, lr=0.05, patience=0),
    )
    predictions = model.forward(x).argmax(axis=1)
    assert (predictions == y).mean() > 0.95
    assert history.train_loss[-1] < history.train_loss[0]


def test_train_classifier_early_stopping_restores_best():
    x, y = separable_data()
    model = Sequential(Linear(4, 4, seed=0), ReLU(),
                       Linear(4, 2, seed=1), LogSoftmax())
    train_mask = np.zeros(len(y), dtype=bool)
    train_mask[:40] = True
    history = train_classifier(
        model, x, y, train_mask, ~train_mask,
        TrainingConfig(epochs=400, lr=0.05, patience=25),
    )
    # Restored weights reproduce the best recorded monitor metric
    # (accuracy with the NLL tie-breaker).
    log_probs = model.forward(x)
    accuracy = (log_probs.argmax(axis=1)[~train_mask]
                == y[~train_mask]).mean()
    val_loss, _ = nll_loss(log_probs, y, mask=~train_mask)
    metric = accuracy - 0.1 * val_loss
    assert metric == pytest.approx(history.best_val_metric, abs=1e-9)
    assert history.best_val_metric == pytest.approx(
        max(history.val_metric), abs=1e-12
    )


def test_lazy_snapshot_restores_exact_best_epoch_weights():
    """The deferred best-weights snapshot must restore bit-exact
    best-epoch weights: a run that trains past the best epoch and
    restores must end with the same parameters as a run stopped right
    after that epoch (whose live weights ARE the best)."""
    x, y = separable_data(seed=5)
    train_mask = np.zeros(len(y), dtype=bool)
    train_mask[:40] = True

    def build():
        return Sequential(Linear(4, 4, seed=0), ReLU(),
                          Linear(4, 2, seed=1), LogSoftmax())

    full = build()
    history = train_classifier(
        full, x, y, train_mask, ~train_mask,
        TrainingConfig(epochs=200, lr=0.05, patience=20),
    )
    # Only meaningful if training actually continued past the best
    # epoch, i.e. the restore path ran.
    assert history.best_epoch < len(history.train_loss) - 1

    stopped = build()
    train_classifier(
        stopped, x, y, train_mask, ~train_mask,
        TrainingConfig(epochs=history.best_epoch + 1, lr=0.05,
                       patience=0),
    )
    for restored, live in zip(full.parameters(), stopped.parameters()):
        assert np.array_equal(restored.value, live.value)


def test_train_regressor_learns():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(80, 3))
    y = 0.5 * x[:, 0] - 0.2 * x[:, 2]
    model = Sequential(Linear(3, 8, seed=0), Tanh(), Linear(8, 1, seed=1))
    mask = np.ones(len(y), dtype=bool)
    train_regressor(model, x, y, mask, None,
                    TrainingConfig(epochs=300, lr=0.02, patience=0))
    predictions = model.forward(x).reshape(-1)
    assert np.corrcoef(predictions, y)[0, 1] > 0.95


def test_training_config_unknown_optimizer():
    model = Sequential(Linear(2, 2))
    with pytest.raises(ModelError):
        TrainingConfig(optimizer="lion").build_optimizer(model)


def test_grid_search_ranks_by_accuracy():
    x, y = separable_data(n=100, seed=3)
    train_mask = np.zeros(len(y), dtype=bool)
    train_mask[:70] = True

    def builder(hidden_dims, dropout, seed):
        modules = []
        previous = x.shape[1]
        for width in hidden_dims:
            modules.extend([Linear(previous, width, seed=seed), ReLU()])
            previous = width
        modules.extend([Linear(previous, 2, seed=seed), LogSoftmax()])
        return Sequential(*modules)

    result = grid_search(
        builder, x, y, train_mask, ~train_mask,
        hidden_dim_options=((4,), (8, 8)),
        dropout_options=(0.0,),
        lr_options=(0.05,),
        epochs=120,
    )
    assert len(result.points) == 2
    accuracies = [point.val_accuracy for point in result.points]
    assert accuracies == sorted(accuracies, reverse=True)
    assert result.best.val_accuracy >= 0.8
    assert result.table()[0]["val accuracy"] == pytest.approx(
        result.best.val_accuracy, abs=1e-4
    )
