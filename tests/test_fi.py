"""Tests for fault models, observation specs, campaigns and reports."""

import numpy as np
import pytest

from repro.fi import (
    CriticalityDataset,
    FaultClass,
    dataset_from_campaign,
    faults_for_nodes,
    format_report,
    full_fault_universe,
    generate_dataset,
    run_campaign,
    sample_faults,
)
from repro.fi.observation import (
    DESIGN_OBSERVATION,
    ObservationSpec,
    observation_for,
)
from repro.sim import Workload, design_workloads, random_workload
from repro.utils.errors import SimulationError


@pytest.fixture(scope="module")
def icfsm_campaign(icfsm):
    workloads = design_workloads(icfsm.name, icfsm, count=6, cycles=100,
                                 seed=0)
    return run_campaign(icfsm, workloads)


class TestFaults:
    def test_full_universe(self, tiny_netlist):
        faults = full_fault_universe(tiny_netlist)
        assert len(faults) == 4  # 2 gates x SA0/SA1
        names = {fault.name for fault in faults}
        assert "AN2_U1/SA0" in names and "IV_U2/SA1" in names

    def test_faults_for_nodes(self, tiny_netlist):
        faults = faults_for_nodes(tiny_netlist, ["IV_U2"])
        assert len(faults) == 2
        assert all(fault.node_name == "IV_U2" for fault in faults)

    def test_sample_keeps_pairs(self, icfsm):
        faults = full_fault_universe(icfsm)
        sampled = sample_faults(faults, 0.25, seed=1)
        by_node = {}
        for fault in sampled:
            by_node.setdefault(fault.node_name, []).append(fault)
        assert all(len(pair) == 2 for pair in by_node.values())
        assert len(by_node) == pytest.approx(icfsm.n_gates * 0.25, abs=2)

    def test_sample_fraction_validation(self, tiny_netlist):
        faults = full_fault_universe(tiny_netlist)
        with pytest.raises(SimulationError):
            sample_faults(faults, 0.0)


class TestObservation:
    def test_registered_specs_compile(self, all_designs):
        for design in all_designs:
            spec = observation_for(design)
            assert spec is not None
            compiled = spec.compile(design)
            assert len(compiled.output_names) == design.n_outputs

    def test_compare_mask_gating(self, or1200_if):
        compiled = DESIGN_OBSERVATION["or1200_if"].compile(or1200_if)
        names = or1200_if.output_names()
        golden = np.zeros(len(names), dtype=bool)
        mask = compiled.compare_mask(golden)
        # if_valid low: instruction/pc bits excluded, handshake kept.
        assert not mask[names.index("if_insn_0")]
        assert not mask[names.index("if_pc_31")]
        assert mask[names.index("if_valid")]
        golden[names.index("if_valid")] = True
        mask = compiled.compare_mask(golden)
        assert mask[names.index("if_insn_0")]

    def test_unknown_strobe_rejected(self, icfsm):
        spec = ObservationSpec(strobes={"ack": ("nope", 1)})
        with pytest.raises(SimulationError, match="strobe output"):
            spec.compile(icfsm)

    def test_unknown_target_rejected(self, icfsm):
        spec = ObservationSpec(strobes={"nope": ("ack", 1)})
        with pytest.raises(SimulationError, match="matches no output"):
            spec.compile(icfsm)


class TestCampaign:
    def test_shapes(self, icfsm, icfsm_campaign):
        campaign = icfsm_campaign
        n_faults = 2 * icfsm.n_gates
        assert campaign.error_cycles.shape == (6, n_faults)
        assert campaign.detection_cycle.shape == (6, n_faults)
        assert campaign.latent.shape == (6, n_faults)
        assert campaign.simulation_seconds > 0
        assert len(campaign.node_names) == icfsm.n_gates

    def test_dangerous_consistent_with_error_rate(self, icfsm_campaign):
        campaign = icfsm_campaign
        rate = campaign.error_rate
        assert ((rate >= campaign.severity) == campaign.dangerous).all()
        assert (campaign.observed | ~campaign.dangerous).all()

    def test_detection_cycle_only_for_observed(self, icfsm_campaign):
        campaign = icfsm_campaign
        observed = campaign.observed
        assert (campaign.detection_cycle[observed] >= 0).all()
        assert (campaign.detection_cycle[~observed] == -1).all()

    def test_latent_disjoint_from_observed(self, icfsm_campaign):
        campaign = icfsm_campaign
        assert not (campaign.latent & campaign.observed).any()

    def test_node_fraction_matrix_bounds(self, icfsm_campaign):
        fractions = icfsm_campaign.node_fraction_matrix()
        assert fractions.min() >= 0.0 and fractions.max() <= 1.0

    def test_workload_report_roundtrip(self, icfsm_campaign):
        name = icfsm_campaign.workload_names[0]
        report = icfsm_campaign.workload_report(name)
        assert report.workload == name
        assert len(report.records) == len(icfsm_campaign.faults)
        counts = report.counts()
        assert sum(counts.values()) == len(report.records)
        assert 0.0 <= report.coverage() <= 1.0
        text = format_report(report)
        assert name in text and "coverage" in text

    def test_workload_report_unknown(self, icfsm_campaign):
        with pytest.raises(SimulationError):
            icfsm_campaign.workload_report("nope")

    def test_empty_inputs_rejected(self, icfsm):
        with pytest.raises(SimulationError, match="workload"):
            run_campaign(icfsm, [])
        workload = random_workload(icfsm, cycles=10, seed=0)
        with pytest.raises(SimulationError, match="fault"):
            run_campaign(icfsm, [workload], faults=[])
        with pytest.raises(SimulationError, match="severity"):
            run_campaign(icfsm, [workload], severity=1.5)

    def test_observation_reduces_or_keeps_detection(self, icfsm):
        workloads = design_workloads(icfsm.name, icfsm, count=3,
                                     cycles=80, seed=1)
        with_obs = run_campaign(icfsm, workloads, observation="auto")
        without = run_campaign(icfsm, workloads, observation=None)
        assert (with_obs.error_cycles <= without.error_cycles).all()
        assert (with_obs.error_cycles < without.error_cycles).any()


class TestDataset:
    def test_algorithm1_equivalence(self, icfsm_campaign):
        fast = dataset_from_campaign(icfsm_campaign)
        literal = generate_dataset(icfsm_campaign.reports(),
                                   design=icfsm_campaign.netlist_name)
        assert fast.node_names == literal.node_names
        assert np.allclose(fast.scores, literal.scores)
        assert np.array_equal(fast.labels, literal.labels)

    def test_threshold_semantics(self, icfsm_campaign):
        dataset = dataset_from_campaign(icfsm_campaign, threshold=0.5)
        assert ((dataset.scores >= 0.5) == dataset.labels.astype(bool)
                ).all()
        strict = dataset_from_campaign(icfsm_campaign, threshold=0.9)
        assert strict.labels.sum() <= dataset.labels.sum()

    def test_lookups(self, icfsm_campaign):
        dataset = dataset_from_campaign(icfsm_campaign)
        node = dataset.node_names[0]
        assert dataset.score_of(node) == pytest.approx(dataset.scores[0])
        assert dataset.label_of(node) == dataset.labels[0]
        with pytest.raises(SimulationError):
            dataset.score_of("nope")

    def test_misaligned_dataset_rejected(self):
        with pytest.raises(SimulationError):
            CriticalityDataset(
                design="x", node_names=["a"],
                scores=np.array([0.5, 0.5]), labels=np.array([1]),
                threshold=0.5, n_workloads=1,
            )

    def test_generate_dataset_empty(self):
        with pytest.raises(SimulationError):
            generate_dataset([])

    def test_synthetic_reports_follow_algorithm(self, tiny_netlist):
        """Hand-built reports: node dangerous in 2 of 4 workloads for
        one fault only -> score 0.25 with the fault-pair normalizer."""
        from repro.fi.faults import full_fault_universe
        from repro.fi.report import FaultRecord, WorkloadReport

        faults = full_fault_universe(tiny_netlist)
        reports = []
        for workload_index in range(4):
            records = []
            for fault in faults:
                dangerous = (
                    fault.node_name == "AN2_U1"
                    and fault.stuck_at == 0
                    and workload_index < 2
                )
                records.append(FaultRecord(
                    fault=fault,
                    classification=(
                        FaultClass.DANGEROUS if dangerous
                        else FaultClass.BENIGN
                    ),
                    detection_cycle=0 if dangerous else -1,
                ))
            reports.append(WorkloadReport(
                workload=f"w{workload_index}", records=records
            ))
        dataset = generate_dataset(reports, threshold=0.2)
        assert dataset.score_of("AN2_U1") == pytest.approx(0.25)
        assert dataset.score_of("IV_U2") == 0.0
        assert dataset.label_of("AN2_U1") == 1
        assert dataset.label_of("IV_U2") == 0
