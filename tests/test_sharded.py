"""Sharded + multi-core campaign equivalence.

The contract the sharded engine must keep: for EVERY ``(shard_size,
jobs)`` configuration — including fault collapsing and functional
observation specs — the merged campaign result is bitwise identical to
the classic serial, unsharded run.  Machines are independent (per-bit
fault masks) and shards are contiguous slices of the simulated
universe, so any divergence is a merge bug, not numerical noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fi import run_campaign
from repro.fi.checkpoint import MANIFEST_NAME
from repro.fi.collapse import collapse_faults, expand_shard
from repro.fi.faults import full_fault_universe
from repro.fi.runner import CampaignRunner, RunnerPolicy
from repro.sim import design_workloads
from repro.sim.bitparallel import BitParallelSimulator
from repro.utils.errors import CampaignError
from repro.utils.parallel import (
    auto_shard_size,
    resolve_jobs,
    shard_bounds,
)


@pytest.fixture(scope="module")
def suite(icfsm):
    return design_workloads(icfsm.name, icfsm, count=4, cycles=60,
                            seed=3)


@pytest.fixture(scope="module")
def baseline(icfsm, suite):
    """The reference: serial, unsharded (``--jobs 1 --shard-size 0``)."""
    return run_campaign(icfsm, suite)


def assert_identical(left, right):
    assert left.workload_names == right.workload_names
    assert [f.name for f in left.faults] == [f.name for f in right.faults]
    assert np.array_equal(left.error_cycles, right.error_cycles)
    assert np.array_equal(left.detection_cycle, right.detection_cycle)
    assert np.array_equal(left.latent, right.latent)
    assert not left.failures and not right.failures


class TestShardPlanning:
    def test_bounds_partition_the_universe(self):
        bounds = shard_bounds(10, 4)
        assert bounds == [(0, 4), (4, 8), (8, 10)]
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_zero_means_one_shard(self):
        assert shard_bounds(526, 0) == [(0, 526)]
        assert shard_bounds(526, 526) == [(0, 526)]
        assert shard_bounds(526, 10_000) == [(0, 526)]

    def test_empty_universe_rejected(self):
        with pytest.raises(CampaignError):
            shard_bounds(0, 4)

    def test_auto_size_packs_whole_words(self):
        # f = 64w - 1 faults plus the golden machine fills w words.
        size = auto_shard_size(302)
        assert (size + 1) % 64 == 0
        words = (size + 1) // 64
        assert 302 * words * 8 <= 4 * 1024 * 1024

    def test_auto_size_never_starves(self):
        # A giant netlist still gets one word (63 faults + golden).
        assert auto_shard_size(10**9) == 63
        with pytest.raises(CampaignError):
            auto_shard_size(0)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        with pytest.raises(CampaignError):
            resolve_jobs(-1)


class TestPolicyValidation:
    def test_negative_jobs_rejected(self):
        with pytest.raises(CampaignError):
            RunnerPolicy(jobs=-2)

    def test_bad_shard_size_rejected(self):
        with pytest.raises(CampaignError):
            RunnerPolicy(shard_size=-1)
        with pytest.raises(CampaignError):
            RunnerPolicy(shard_size="huge")

    def test_auto_spellings_accepted(self):
        assert RunnerPolicy(shard_size="auto").shard_size == "auto"
        assert RunnerPolicy(shard_size=None).shard_size is None


class TestShardedEquivalence:
    """Word-boundary shard sizes x job counts vs the serial baseline.

    63/64/65 straddle the 64-machine word boundary (the packing edge
    cases: exactly one word with golden, golden forced into a second
    word, and a ragged final shard).
    """

    @pytest.mark.parametrize("shard_size", [63, 64, 65, None])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_bitwise_identical(self, icfsm, suite, baseline,
                               shard_size, jobs):
        result = run_campaign(icfsm, suite, shard_size=shard_size,
                              jobs=jobs)
        assert_identical(baseline, result)

    def test_four_jobs(self, icfsm, suite, baseline):
        result = run_campaign(icfsm, suite, shard_size=64, jobs=4)
        assert_identical(baseline, result)

    def test_all_cores(self, icfsm, suite, baseline):
        result = run_campaign(icfsm, suite, shard_size="auto", jobs=0)
        assert_identical(baseline, result)

    def test_single_fault_shards(self, icfsm, suite):
        # shard_size=1 on the full universe is slow; a subset keeps the
        # degenerate one-fault-per-unit case cheap but real.
        faults = full_fault_universe(icfsm)[:48]
        serial = run_campaign(icfsm, suite, faults=faults)
        for jobs in (1, 2):
            sharded = run_campaign(icfsm, suite, faults=faults,
                                   shard_size=1, jobs=jobs)
            assert_identical(serial, sharded)

    def test_collapsed_universe(self, icfsm, suite):
        serial = run_campaign(icfsm, suite, collapse=True)
        sharded = run_campaign(icfsm, suite, collapse=True,
                               shard_size=63, jobs=2)
        assert_identical(serial, sharded)

    def test_every_output_observation(self, icfsm, suite):
        # icfsm registers a strobed observation spec, so the default
        # baseline already covers the spec path; observation=None
        # covers the compare-everything path.
        serial = run_campaign(icfsm, suite, observation=None)
        sharded = run_campaign(icfsm, suite, observation=None,
                               shard_size=64, jobs=2)
        assert_identical(serial, sharded)

    def test_unit_plan(self, icfsm, suite):
        runner = CampaignRunner(
            icfsm, suite, policy=RunnerPolicy(shard_size=100),
        )
        n_faults = len(runner.faults)
        assert runner.n_shards == -(-n_faults // 100)


class TestShardedProperty:
    @settings(max_examples=8, deadline=None)
    @given(shard_size=st.integers(min_value=1, max_value=40),
           jobs=st.sampled_from([1, 2]))
    def test_any_shard_size_is_equivalent(self, small_random_netlist,
                                          shard_size, jobs):
        netlist = small_random_netlist
        suite = design_workloads(netlist.name, netlist, count=2,
                                 cycles=30, seed=5)
        faults = full_fault_universe(netlist)[:30]
        serial = run_campaign(netlist, suite, faults=faults)
        sharded = run_campaign(netlist, suite, faults=faults,
                               shard_size=shard_size, jobs=jobs)
        assert_identical(serial, sharded)


class TestExpandShard:
    def test_shards_cover_original_universe_once(self, icfsm):
        universe = collapse_faults(icfsm, full_fault_universe(icfsm))
        n_reps = len(universe.representatives)
        n_original = len(universe.original)
        seen = np.zeros(n_original, dtype=int)
        for bounds in shard_bounds(n_reps, 37):
            lo, hi = bounds
            columns = np.arange(lo, hi)[None, :]  # fake unit result
            original, expanded = expand_shard(universe, bounds, columns)
            seen[original] += 1
            # every expanded column carries its representative's index
            assert np.array_equal(expanded[0],
                                  universe.class_of[original])
        assert np.all(seen == 1)


class TestShardedCheckpointing:
    def test_unit_files_and_manifest(self, icfsm, suite, baseline,
                                     tmp_path):
        result = run_campaign(icfsm, suite, shard_size=200,
                              checkpoint_dir=tmp_path)
        assert_identical(baseline, result)
        assert (tmp_path / "workload_0000_shard_000.npz").exists()
        assert (tmp_path / "workload_0000_shard_001.npz").exists()
        manifest = (tmp_path / MANIFEST_NAME)
        assert manifest.exists()
        assert b"shards" in manifest.read_bytes()

    def test_resume_skips_all_completed_units(self, icfsm, suite,
                                              baseline, tmp_path,
                                              monkeypatch):
        run_campaign(icfsm, suite, shard_size=200, jobs=2,
                     checkpoint_dir=tmp_path)

        def exploding_pass(self, workload, *args, **kwargs):
            raise AssertionError("resume re-simulated a finished unit")

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            exploding_pass)
        resumed = run_campaign(icfsm, suite, shard_size=200,
                               checkpoint_dir=tmp_path, resume=True)
        assert_identical(baseline, resumed)

    def test_resume_rejects_different_shard_layout(self, icfsm, suite,
                                                   tmp_path):
        run_campaign(icfsm, suite, shard_size=200,
                     checkpoint_dir=tmp_path)
        with pytest.raises(CampaignError, match="shard layout"):
            run_campaign(icfsm, suite, shard_size=100,
                         checkpoint_dir=tmp_path, resume=True)


class TestParallelFailures:
    def test_failed_unit_names_its_shard(self, icfsm, suite,
                                         monkeypatch):
        real = BitParallelSimulator.run_fault_pass
        boom = {"count": 0}

        def flaky_pass(self, workload, nets, values, **kwargs):
            if boom["count"] == 0 and len(nets) < 526:
                boom["count"] += 1
                raise RuntimeError("injected harness fault")
            return real(self, workload, nets, values, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            flaky_pass)
        result = run_campaign(icfsm, suite, shard_size=300)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.status == "error"
        assert failure.error.startswith("shard ")
        assert "injected harness fault" in failure.error

    def test_parallel_failure_lands_in_ledger(self, icfsm, suite,
                                              baseline, monkeypatch):
        real = BitParallelSimulator.run_fault_pass
        victim = suite[0].name

        def doomed_pass(self, workload, *args, **kwargs):
            if workload.name == victim:
                raise RuntimeError("worker-side crash")
            return real(self, workload, *args, **kwargs)

        # fork workers inherit the monkeypatched class
        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            doomed_pass)
        result = run_campaign(icfsm, suite, jobs=2)
        assert [f.workload for f in result.failures] == [victim]
        assert "worker-side crash" in result.failures[0].error
        # the surviving workloads still match the baseline bit for bit
        mask = result.completed_mask
        assert np.array_equal(result.error_cycles[mask],
                              baseline.error_cycles[mask])
        assert np.array_equal(result.detection_cycle[mask],
                              baseline.detection_cycle[mask])
