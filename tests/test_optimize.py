"""Tests for the constant-folding / dead-code-elimination pass."""

import pytest

from repro.circuits import CircuitBuilder
from repro.netlist import check, check_equivalence
from repro.netlist.optimize import optimize_netlist


def test_constant_folding_through_gates():
    """AND with tie-0 folds; the cone feeding it dies."""
    builder = CircuitBuilder("fold")
    a = builder.input("a")
    b = builder.input("b")
    dead_cone = builder.xor(builder.not_(a), b)     # feeds only the AND
    zero = builder.const0()
    folded = builder.and_(dead_cone, zero)           # always 0
    keep = builder.or_(folded, a)                    # == a
    builder.output(keep, "y")
    builder.output(builder.and_(a, b), "z")          # live logic

    optimized, report = optimize_netlist(builder.netlist)
    assert report.gates_removed > 0
    assert "AN2" in " ".join(report.folded_constants)
    # The XOR/IV cone is dead once the AND folds.
    assert any(name.startswith("XOR2") for name in report.removed_dead)
    result = check_equivalence(builder.netlist, optimized,
                               workloads=4, cycles=30,
                               reset_input="a")
    assert result.equivalent


def test_partial_evaluation_constance():
    """OR with tie-1 is constant even though another input varies."""
    builder = CircuitBuilder("or1")
    a = builder.input("a")
    one = builder.const1()
    always = builder.or_(a, one)
    builder.output(always, "y")
    builder.output(a, "echo")
    optimized, report = optimize_netlist(builder.netlist)
    # y becomes a tie; the OR itself disappears.
    assert optimized.n_gates == 1  # just the shared TIE1
    result = check_equivalence(builder.netlist, optimized,
                               workloads=3, cycles=20, reset_input="a")
    assert result.equivalent


def test_evaluation_designs_shrink_but_stay_equivalent(all_designs):
    for design in all_designs:
        optimized, report = optimize_netlist(design)
        assert report.gates_after <= report.gates_before
        problems = [p for p in check(optimized) if "dangling" not in p]
        assert problems == []
        result = check_equivalence(design, optimized, workloads=3,
                                   cycles=60)
        assert result.equivalent, (design.name,
                                   result.counterexample.describe())


def test_flops_never_folded():
    """A flop with constant D is kept (its value differs during
    reset), and its downstream logic stays."""
    builder = CircuitBuilder("flopk")
    reset = builder.input("rst")
    one = builder.const1()
    flop = builder.dffr(one, reset)  # 0 during reset, then 1
    builder.output(flop, "q")
    optimized, report = optimize_netlist(builder.netlist)
    assert len(optimized.sequential_gates()) == 1
    result = check_equivalence(builder.netlist, optimized,
                               workloads=3, cycles=20,
                               reset_input="rst")
    assert result.equivalent


def test_dead_flop_removed():
    builder = CircuitBuilder("deadflop")
    reset = builder.input("rst")
    a = builder.input("a")
    live = builder.dffr(a, reset)
    dead = builder.dffr(builder.not_(a), reset)
    _consume = builder.dffr(dead, reset)  # dead chain, no PO
    builder.output(live, "q")
    optimized, report = optimize_netlist(builder.netlist)
    assert len(optimized.sequential_gates()) == 1
    assert len(report.removed_dead) >= 2


def test_instance_names_preserved(icfsm):
    optimized, _ = optimize_netlist(icfsm)
    kept = set(optimized.node_names()) - {"TIE0_opt_tie0",
                                          "TIE1_opt_tie1"}
    assert kept <= set(icfsm.node_names())
