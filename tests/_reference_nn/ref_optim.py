"""Optimizers."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from tests._reference_nn.ref_modules import Parameter
from repro.utils.errors import ModelError


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ModelError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[np.ndarray] = [
            np.zeros_like(parameter.value) for parameter in self.parameters
        ]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.value -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with decoupled-free weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
