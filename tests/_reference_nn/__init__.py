"""Frozen pre-rewrite copies of the NN training stack.

These are faithful snapshots of ``src/repro/nn/{modules,optim,
training,gridsearch}.py`` as of commit ``c9ae71a`` — the last commit
before the zero-allocation training engine rewrite — with only the
intra-package imports rewritten to point here.  They exist solely as
the bitwise ground truth for ``tests/test_training_bitwise.py``: the
optimized engine must reproduce these implementations' per-epoch
histories and final weights exactly.  Do not modernize or "fix" this
code; divergence from the snapshot defeats its purpose.
"""
