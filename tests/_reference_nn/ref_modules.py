"""Neural-network building blocks (numpy, explicit backward passes).

This is the stand-in for the paper's PyTorch/torch-geometric stack: a
minimal module system with exactly the layers Table 1's network needs
(graph convolutions, ReLU, dropout, log-softmax, linear heads), written
with hand-derived gradients so the whole framework stays dependency-
free.  Shapes follow the node-classification convention: activations
are ``(N, F)`` matrices, one row per graph node.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn.init import glorot_uniform
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng, rng_from_seed


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad[:] = 0.0


class Module:
    """Base class: forward/backward with cached intermediates."""

    training: bool = False

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this module (and children)."""
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``dLoss/dOutput`` to ``dLoss/dInput``, accumulating
        parameter gradients along the way."""
        raise NotImplementedError

    def train(self) -> None:
        """Enable training behaviour (dropout active)."""
        self.training = True

    def eval(self) -> None:
        """Enable inference behaviour (dropout off)."""
        self.training = False

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, seed: SeedLike = 0):
        rng = rng_from_seed(seed) if not isinstance(seed, np.random.Generator) else seed
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._input: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        parameters = [self.weight]
        if self.bias is not None:
            parameters.append(self.bias)
        return parameters

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ModelError("backward before forward")
        self.weight.grad += self._input.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T


class GCNConv(Module):
    """Graph convolution ``H' = A* (H W) + b`` (Eq. 2 of the paper).

    ``A*`` is the pre-normalized propagation matrix (symmetric
    normalization with self-loops by default), fixed per design and
    shared across layers.
    """

    def __init__(self, in_features: int, out_features: int,
                 a_norm: sp.csr_matrix, bias: bool = True,
                 seed: SeedLike = 0):
        rng = rng_from_seed(seed) if not isinstance(seed, np.random.Generator) else seed
        self.a_norm = a_norm
        self.weight = Parameter(
            glorot_uniform((in_features, out_features), rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._input: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        parameters = [self.weight]
        if self.bias is not None:
            parameters.append(self.bias)
        return parameters

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        out = self.a_norm @ (x @ self.weight.value)
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ModelError("backward before forward")
        # d/dH of A (H W):  A^T G W^T; A is symmetric for the default
        # normalization but transpose anyway for row-normalized mode.
        propagated = self.a_norm.T @ grad
        self.weight.grad += self._input.T @ propagated
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return propagated @ self.weight.value.T


class SAGEConv(Module):
    """GraphSAGE convolution with mean aggregation:
    ``H' = H W_self + (A_mean H) W_neigh + b``.

    ``a_mean`` is the row-normalized adjacency *without* self-loops
    (``D^-1 A``), so the node's own representation and its
    neighborhood aggregate pass through separate weight matrices —
    the architectural contrast to :class:`GCNConv`'s shared transform,
    exercised by the architecture ablation.
    """

    def __init__(self, in_features: int, out_features: int,
                 a_mean: sp.csr_matrix, bias: bool = True,
                 seed: SeedLike = 0):
        rng = rng_from_seed(seed) if not isinstance(seed, np.random.Generator) else seed
        self.a_mean = a_mean
        self.weight_self = Parameter(
            glorot_uniform((in_features, out_features), rng)
        )
        self.weight_neighbor = Parameter(
            glorot_uniform((in_features, out_features), rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._input: Optional[np.ndarray] = None
        self._aggregated: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        parameters = [self.weight_self, self.weight_neighbor]
        if self.bias is not None:
            parameters.append(self.bias)
        return parameters

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        self._aggregated = self.a_mean @ x
        out = (x @ self.weight_self.value
               + self._aggregated @ self.weight_neighbor.value)
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ModelError("backward before forward")
        self.weight_self.grad += self._input.T @ grad
        self.weight_neighbor.grad += self._aggregated.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        grad_input = grad @ self.weight_self.value.T
        grad_input += self.a_mean.T @ (
            grad @ self.weight_neighbor.value.T
        )
        return grad_input


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward before forward")
        return grad * self._mask


class Sigmoid(Module):
    """Logistic activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward before forward")
        return grad * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward before forward")
        return grad * (1.0 - self._output ** 2)


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, p: float = 0.5, seed: SeedLike = 0):
        if not 0.0 <= p < 1.0:
            raise ModelError(f"dropout probability {p} outside [0, 1)")
        self.p = p
        self._rng = derive_rng(seed, "dropout") if not isinstance(
            seed, np.random.Generator
        ) else seed
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class LogSoftmax(Module):
    """Row-wise log-softmax."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=1, keepdims=True)
        self._output = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True)
        )
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward before forward")
        softmax = np.exp(self._output)
        return grad - softmax * grad.sum(axis=1, keepdims=True)


def functional_plan(model: "Sequential") -> List[tuple]:
    """Extract a functional description of a trained GCN stack.

    Returns one tuple per layer — ``("gcn", weight, bias)``,
    ``("relu",)``, ``("identity",)`` (dropout in eval mode) or
    ``("logsoftmax",)`` — referencing the live parameter arrays, so a
    caller can re-execute the stack under a *different* propagation
    matrix (e.g. a masked subgraph) without mutating module state.
    Used by the GNNExplainer's batched mask optimizer.
    """
    plan: List[tuple] = []
    for module in model.modules:
        if isinstance(module, GCNConv):
            bias = module.bias.value if module.bias is not None else None
            plan.append(("gcn", module.weight.value, bias))
        elif isinstance(module, ReLU):
            plan.append(("relu",))
        elif isinstance(module, Dropout):
            plan.append(("identity",))  # eval mode
        elif isinstance(module, LogSoftmax):
            plan.append(("logsoftmax",))
        else:
            raise ModelError(
                f"no functional plan for layer {type(module).__name__}"
            )
    return plan


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def parameters(self) -> List[Parameter]:
        parameters: List[Parameter] = []
        for module in self.modules:
            parameters.extend(module.parameters())
        return parameters

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def train(self) -> None:
        self.training = True
        for module in self.modules:
            module.train()

    def eval(self) -> None:
        self.training = False
        for module in self.modules:
            module.eval()
