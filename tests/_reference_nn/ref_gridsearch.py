"""Hyperparameter grid search (§3.3.2 of the paper).

Sweeps layer counts, hidden widths, dropout and learning rate for a
model-builder callback, training each candidate and ranking by
validation accuracy.  Used by the Table 1 benchmark to confirm the
published architecture is the grid's winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from tests._reference_nn.ref_modules import Module
from tests._reference_nn.ref_training import TrainingConfig, train_classifier
from repro.utils.errors import ModelError

#: builder(hidden_dims, dropout, seed) -> Module
ModelBuilder = Callable[[Sequence[int], float, int], Module]


@dataclass
class GridPoint:
    """One evaluated hyperparameter combination."""

    hidden_dims: tuple
    dropout: float
    lr: float
    val_accuracy: float
    best_epoch: int

    def describe(self) -> str:
        dims = "-".join(str(d) for d in self.hidden_dims)
        return (
            f"layers={len(self.hidden_dims) + 1} dims={dims} "
            f"dropout={self.dropout} lr={self.lr}"
        )


@dataclass
class GridSearchResult:
    """All evaluated points, best first."""

    points: List[GridPoint] = field(default_factory=list)

    @property
    def best(self) -> GridPoint:
        if not self.points:
            raise ModelError("empty grid search")
        return self.points[0]

    def table(self) -> List[Dict[str, object]]:
        """Rows for report rendering."""
        return [
            {
                "hidden dims": "-".join(str(d) for d in p.hidden_dims),
                "dropout": p.dropout,
                "lr": p.lr,
                "val accuracy": round(p.val_accuracy, 4),
            }
            for p in self.points
        ]


def grid_search(
    builder: ModelBuilder,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    hidden_dim_options: Sequence[Sequence[int]] = (
        (16,), (16, 32), (16, 32, 64), (32, 64),
    ),
    dropout_options: Sequence[float] = (0.0, 0.3, 0.5),
    lr_options: Sequence[float] = (0.01,),
    epochs: int = 200,
    seed: int = 0,
) -> GridSearchResult:
    """Evaluate every combination and rank by validation accuracy."""
    points: List[GridPoint] = []
    for hidden_dims, dropout, lr in product(
        hidden_dim_options, dropout_options, lr_options
    ):
        model = builder(tuple(hidden_dims), dropout, seed)
        config = TrainingConfig(epochs=epochs, lr=lr, patience=40)
        history = train_classifier(
            model, x, targets, train_mask, val_mask, config
        )
        predictions = model.forward(x).argmax(axis=1)
        accuracy = float(
            (predictions[val_mask] == targets[val_mask]).mean()
        )
        points.append(GridPoint(
            hidden_dims=tuple(hidden_dims),
            dropout=dropout,
            lr=lr,
            val_accuracy=accuracy,
            best_epoch=history.best_epoch,
        ))
    points.sort(key=lambda p: p.val_accuracy, reverse=True)
    return GridSearchResult(points=points)
