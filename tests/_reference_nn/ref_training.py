"""Training loops for transductive node models.

Full-batch training (the whole graph per step, masked loss), Adam by
default, early stopping on the validation metric with best-weights
restore — the standard recipe for small-graph GCN training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.losses import mse_loss, nll_loss
from tests._reference_nn.ref_modules import Module
from tests._reference_nn.ref_optim import Adam, Optimizer, SGD
from repro.utils.errors import ModelError


@dataclass
class TrainingConfig:
    """Hyperparameters for one training run."""

    epochs: int = 300
    lr: float = 0.01
    weight_decay: float = 5e-4
    optimizer: str = "adam"
    patience: int = 60          # early-stopping patience (0 disables)
    class_weights: bool = True  # balance NLL by inverse class frequency
    verbose: bool = False

    def build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer == "adam":
            return Adam(model.parameters(), lr=self.lr,
                        weight_decay=self.weight_decay)
        if self.optimizer == "sgd":
            return SGD(model.parameters(), lr=self.lr, momentum=0.9,
                       weight_decay=self.weight_decay)
        raise ModelError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainingHistory:
    """Per-epoch metrics from one run."""

    train_loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_metric: float = -np.inf


class _BestWeights:
    """Lazy best-epoch weight snapshot for early stopping.

    Copying every improving epoch is wasted work: the weights only
    need preserving if a *later* step is about to overwrite them while
    they are still the restore candidate.  So an improvement merely
    flags the live weights as best, and the actual copy happens at the
    start of the next optimizer step — into reused buffers, so a long
    improvement streak costs ``copyto`` traffic but zero allocation.
    If training ends while the flag is set, the live weights already
    ARE the best and the restore is a no-op.
    """

    def __init__(self, model: Module):
        self._model = model
        self._snapshot: Optional[List[np.ndarray]] = None
        self._pending = False

    def mark_improved(self) -> None:
        """The weights currently in the model are the new best."""
        self._pending = True

    def before_step(self) -> None:
        """Capture the pending best before the optimizer mutates it."""
        if self._pending:
            if self._snapshot is None:
                self._snapshot = [
                    parameter.value.copy()
                    for parameter in self._model.parameters()
                ]
            else:
                for buffer, parameter in zip(
                    self._snapshot, self._model.parameters()
                ):
                    np.copyto(buffer, parameter.value)
            self._pending = False

    def restore(self) -> None:
        """Put the best-epoch weights back into the model."""
        if self._pending or self._snapshot is None:
            return  # live weights are already the best (or no epochs ran)
        for parameter, value in zip(
            self._model.parameters(), self._snapshot
        ):
            parameter.value[:] = value


def train_classifier(
    model: Module,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Train a log-softmax classifier on masked nodes.

    The validation metric is accuracy on ``val_mask`` (training-fold
    accuracy when no validation mask is given).  On completion the
    model holds the best-validation weights.
    """
    config = config or TrainingConfig()
    optimizer = config.build_optimizer(model)
    history = TrainingHistory()
    monitor_mask = val_mask if val_mask is not None else train_mask

    class_weights = None
    if config.class_weights:
        counts = np.bincount(targets[train_mask], minlength=2).astype(float)
        counts[counts == 0.0] = 1.0
        class_weights = counts.sum() / (len(counts) * counts)

    best = _BestWeights(model)
    stale = 0
    for epoch in range(config.epochs):
        model.train()
        optimizer.zero_grad()
        log_probs = model.forward(x)
        loss, grad = nll_loss(log_probs, targets, mask=train_mask,
                              class_weights=class_weights)
        model.backward(grad)
        best.before_step()
        optimizer.step()

        model.eval()
        monitored = model.forward(x)
        predictions = monitored.argmax(axis=1)
        accuracy = float(
            (predictions[monitor_mask] == targets[monitor_mask]).mean()
        )
        monitor_loss, _ = nll_loss(monitored, targets,
                                   mask=monitor_mask)
        # Early-stopping metric: accuracy with an NLL tie-breaker, so
        # among equally-accurate epochs the best-calibrated one wins
        # (this keeps probability rankings — and hence ROC/AUC —
        # faithful, not just the argmax).
        metric = accuracy - 0.1 * monitor_loss
        history.train_loss.append(loss)
        history.val_metric.append(metric)
        if config.verbose and epoch % 20 == 0:
            print(f"epoch {epoch:4d}  loss {loss:.4f}  val {metric:.4f}")

        if metric > history.best_val_metric:
            history.best_val_metric = metric
            history.best_epoch = epoch
            best.mark_improved()
            stale = 0
        else:
            stale += 1
            if config.patience and stale >= config.patience:
                break

    best.restore()
    model.eval()
    return history


def train_regressor(
    model: Module,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Train a scalar-output regressor on masked nodes.

    The validation metric is negative MSE (higher is better, so early
    stopping shares the classifier's logic).
    """
    config = config or TrainingConfig()
    optimizer = config.build_optimizer(model)
    history = TrainingHistory()
    monitor_mask = val_mask if val_mask is not None else train_mask

    best = _BestWeights(model)
    stale = 0
    for epoch in range(config.epochs):
        model.train()
        optimizer.zero_grad()
        predictions = model.forward(x)
        loss, grad = mse_loss(predictions, targets, mask=train_mask)
        model.backward(grad)
        best.before_step()
        optimizer.step()

        model.eval()
        predictions = model.forward(x).reshape(-1)
        val_loss, _ = mse_loss(predictions, targets, mask=monitor_mask)
        metric = -val_loss
        history.train_loss.append(loss)
        history.val_metric.append(metric)
        if config.verbose and epoch % 20 == 0:
            print(f"epoch {epoch:4d}  loss {loss:.5f}  val-mse {-metric:.5f}")

        if metric > history.best_val_metric:
            history.best_val_metric = metric
            history.best_epoch = epoch
            best.mark_improved()
            stale = 0
        else:
            stale += 1
            if config.patience and stale >= config.patience:
                break

    best.restore()
    model.eval()
    return history
