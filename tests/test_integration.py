"""Cross-module integration tests: the full pipeline on the remaining
designs, persistence across stages, and stage-consistency invariants.
(The ICFSM pipeline is covered continuously via the session-scoped
``icfsm_analyzer`` fixture.)"""

import numpy as np
import pytest

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.explain import aggregate_importance


@pytest.fixture(scope="module")
def sdram_analyzer(sdram):
    config = AnalyzerConfig(n_workloads=10, workload_cycles=150, seed=0)
    analyzer = FaultCriticalityAnalyzer(sdram, config)
    analyzer.classifier
    return analyzer


class TestSdramPipeline:
    def test_stages_are_consistent(self, sdram, sdram_analyzer):
        analyzer = sdram_analyzer
        assert analyzer.dataset.n_nodes == sdram.n_gates
        assert analyzer.features.node_names == sdram.node_names()
        assert analyzer.data.n_nodes == sdram.n_gates
        # The dataset and graph agree node-by-node after realignment.
        for position in (0, 17, 100):
            name = analyzer.data.node_names[position]
            assert analyzer.data.y_score[position] == pytest.approx(
                analyzer.dataset.score_of(name)
            )

    def test_model_beats_majority(self, sdram_analyzer):
        accuracy = sdram_analyzer.validation_accuracy()
        critical = sdram_analyzer.data.y_class.mean()
        majority = max(critical, 1 - critical)
        assert accuracy >= majority

    def test_explanations_cover_requested_nodes(self, sdram_analyzer):
        nodes = sdram_analyzer.data.node_names[:4]
        explanations = sdram_analyzer.explain_nodes(nodes)
        assert [e.node_name for e in explanations] == nodes
        importance = aggregate_importance(explanations)
        assert importance.n_explanations == 4

    def test_campaign_statistics_sane(self, sdram_analyzer):
        campaign = sdram_analyzer.campaign
        # Detection coverage should be substantial but not total under
        # functional observation.
        report = campaign.workload_report(campaign.workload_names[0])
        assert 0.1 < report.coverage() < 1.0
        # Some faults are latent somewhere (state-only corruption).
        assert campaign.latent.any()


class TestEndToEndArtifacts:
    def test_pipeline_survives_persistence_roundtrip(
        self, icfsm_analyzer, tmp_path
    ):
        """Campaign -> disk -> dataset -> graph -> saved model -> same
        predictions: the full artifact chain a production flow uses."""
        from repro.features import extract_features
        from repro.fi import dataset_from_campaign
        from repro.graph import build_graph_data
        from repro.io import (
            load_campaign,
            load_gcn,
            save_campaign,
            save_gcn,
        )

        analyzer = icfsm_analyzer
        campaign_path = tmp_path / "campaign.npz"
        save_campaign(analyzer.campaign, campaign_path)
        campaign = load_campaign(campaign_path)

        dataset = dataset_from_campaign(campaign)
        features = extract_features(
            analyzer.netlist, workloads=analyzer.workloads
        )
        data = build_graph_data(analyzer.netlist, features, dataset)
        assert np.array_equal(data.y_class, analyzer.data.y_class)

        model_path = tmp_path / "model.npz"
        save_gcn(analyzer.classifier, model_path)
        reloaded = load_gcn(model_path, data)
        assert np.array_equal(reloaded.predict(),
                              analyzer.classifier.predict())

    def test_verilog_roundtrip_preserves_analysis(self, icfsm_analyzer):
        """Re-importing the design from Verilog yields identical
        criticality labels (same workloads, same campaign)."""
        from repro.fi import dataset_from_campaign, run_campaign
        from repro.netlist import from_verilog, to_verilog

        analyzer = icfsm_analyzer
        reparsed = from_verilog(to_verilog(analyzer.netlist))
        campaign = run_campaign(reparsed, analyzer.workloads)
        dataset = dataset_from_campaign(campaign)
        original = analyzer.dataset
        # Align by node name.
        scores = {n: s for n, s in zip(dataset.node_names,
                                       dataset.scores)}
        for name, score in zip(original.node_names, original.scores):
            assert scores[name] == pytest.approx(score)


class TestUartPipelineSmoke:
    def test_uart_end_to_end(self):
        analyzer = FaultCriticalityAnalyzer(
            build_design("uart"),
            AnalyzerConfig(n_workloads=8, workload_cycles=250, seed=0),
        )
        summary = analyzer.summary()
        assert summary["design"] == "uart"
        assert summary["gcn_accuracy"] >= 0.6
        quality = analyzer.regression_quality()
        assert quality["pearson"] > 0.5
