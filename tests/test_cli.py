"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_designs_command(capsys):
    assert main(["designs"]) == 0
    out = capsys.readouterr().out
    assert "sdram_controller" in out
    assert "or1200_icfsm" in out


def test_verilog_command_stdout(capsys):
    assert main(["verilog", "or1200_icfsm"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("// generated")
    assert "module or1200_icfsm" in out


def test_verilog_command_file(tmp_path, capsys):
    target = tmp_path / "design.v"
    assert main(["verilog", "sdram", "--out", str(target)]) == 0
    from repro.netlist import read_verilog

    parsed = read_verilog(target)
    assert parsed.name == "sdram_controller"


def test_campaign_command(capsys):
    assert main([
        "campaign", "or1200_icfsm",
        "--workloads", "2", "--cycles", "60", "--collapse",
    ]) == 0
    out = capsys.readouterr().out
    assert "fault-experiments" in out
    assert "Algorithm 1" in out


def test_campaign_command_saves(tmp_path, capsys):
    target = tmp_path / "campaign.npz"
    assert main([
        "campaign", "or1200_icfsm",
        "--workloads", "2", "--cycles", "60", "--out", str(target),
    ]) == 0
    from repro.io import load_campaign

    loaded = load_campaign(target)
    assert loaded.netlist_name == "or1200_icfsm"


def test_campaign_command_checkpoint_resume(tmp_path, capsys):
    checkpoint_dir = tmp_path / "checkpoints"
    common = ["campaign", "or1200_icfsm", "--workloads", "2",
              "--cycles", "60", "--checkpoint-dir",
              str(checkpoint_dir)]
    assert main(common) == 0
    assert (checkpoint_dir / "manifest.json").exists()
    assert main(common + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "fault-experiments" in out


def test_campaign_command_retry_flags(capsys):
    assert main([
        "campaign", "or1200_icfsm", "--workloads", "2",
        "--cycles", "60", "--timeout", "600", "--retries", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "Algorithm 1" in out


def test_analyze_command(capsys):
    assert main([
        "analyze", "or1200_icfsm", "--workloads", "6", "--cycles", "80",
    ]) == 0
    out = capsys.readouterr().out
    assert "gcn_accuracy" in out
    assert "GCN" in out and "EBM" in out
    assert "pearson" in out


def test_explain_command(capsys):
    assert main([
        "explain", "or1200_icfsm", "--workloads", "6", "--cycles", "80",
    ]) == 0
    out = capsys.readouterr().out
    assert "criticality score" in out


def test_unknown_design_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "not_a_design"])


def test_reset_check_command(capsys):
    assert main(["reset-check", "or1200_icfsm"]) == 0
    out = capsys.readouterr().out
    assert "unknown control flops: 0" in out


def test_optimize_command(tmp_path, capsys):
    target = tmp_path / "opt.v"
    assert main(["optimize", "sdram", "--out", str(target)]) == 0
    out = capsys.readouterr().out
    assert "equivalence check: PASS" in out
    assert target.exists()


def test_harden_command(capsys):
    assert main([
        "harden", "or1200_icfsm", "--workloads", "6", "--cycles", "80",
        "--budget", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "mission failure probability" in out
