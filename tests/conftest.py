"""Shared fixtures.

Expensive artifacts (designs, workload suites, campaigns, trained
analyzers) are session-scoped so the suite stays fast while integration
tests exercise the real pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import (
    build_or1200_icfsm,
    build_or1200_if,
    build_sdram_controller,
    random_netlist,
)
from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer
from repro.netlist import Netlist


@pytest.fixture(scope="session")
def sdram():
    return build_sdram_controller()


@pytest.fixture(scope="session")
def or1200_if():
    return build_or1200_if()


@pytest.fixture(scope="session")
def icfsm():
    return build_or1200_icfsm()


@pytest.fixture(scope="session")
def all_designs(sdram, or1200_if, icfsm):
    return [sdram, or1200_if, icfsm]


@pytest.fixture(scope="session")
def small_random_netlist():
    return random_netlist(n_inputs=6, n_gates=40, n_flops=5,
                          n_outputs=4, seed=11)


@pytest.fixture()
def tiny_netlist():
    """a AND b -> y, with an inverter tap: fresh per test (mutable)."""
    netlist = Netlist("tiny")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y = netlist.add_gate("AN2", [a, b], instance="U1")
    inv = netlist.add_gate("IV", [y], instance="U2")
    netlist.add_output(y, "y")
    netlist.add_output(inv, "yn")
    return netlist


@pytest.fixture(scope="session")
def icfsm_analyzer(icfsm):
    """A fully-run analyzer on the smallest design (session-cached)."""
    config = AnalyzerConfig(n_workloads=12, workload_cycles=150, seed=0)
    analyzer = FaultCriticalityAnalyzer(icfsm, config)
    analyzer.classifier  # force the expensive stages once
    analyzer.regressor
    return analyzer
