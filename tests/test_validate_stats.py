"""Tests for netlist validation and statistics."""

import pytest

from repro.netlist import Netlist, check, summarize, validate
from repro.utils.errors import NetlistError


def test_clean_designs_validate(all_designs):
    for design in all_designs:
        assert check(design) == []
        validate(design)


def test_dangling_net_detected():
    netlist = Netlist("dangle")
    a = netlist.add_input("a")
    netlist.add_gate("IV", [a])  # output unused
    problems = check(netlist)
    assert any("dangling" in p for p in problems)
    with pytest.raises(NetlistError, match="dangling"):
        validate(netlist)


def test_unused_input_detected():
    netlist = Netlist("unused")
    netlist.add_input("a")
    b = netlist.add_input("b")
    out = netlist.add_gate("IV", [b])
    netlist.add_output(out, "y")
    problems = check(netlist)
    assert any("'a'" in p and "dangling" in p for p in problems)


def test_stats_tiny(tiny_netlist):
    stats = summarize(tiny_netlist)
    assert stats.n_gates == 2
    assert stats.n_flops == 0
    assert stats.cell_histogram == {"AN2": 1, "IV": 1}
    assert stats.depth == 1
    assert stats.area > 0


def test_stats_designs(all_designs):
    for design in all_designs:
        stats = summarize(design)
        assert stats.n_gates == design.n_gates
        assert stats.n_flops == len(design.sequential_gates())
        assert sum(stats.cell_histogram.values()) == design.n_gates
        assert stats.max_fanout >= 1
        row = stats.as_dict()
        assert row["design"] == design.name
        assert row["gates"] == design.n_gates
