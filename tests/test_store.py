"""Artifact store: content addressing, durability, eviction, races,
corruption handling, and warm-vs-cold bitwise identity."""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer
from repro.fi import run_campaign
from repro.io import (
    load_campaign,
    load_explanations,
    load_features,
    load_graph_data,
    save_campaign,
    save_explanations,
    save_features,
    save_graph_data,
)
from repro.netlist import from_verilog, to_verilog
from repro.sim import design_workloads
from repro.store import (
    KIND_EXTENSIONS,
    AnalysisMemo,
    ArtifactStore,
    memoized_campaign,
)
from repro.store import keys as K
from repro.utils.fingerprint import (
    campaign_fingerprint,
    canonical_hash,
    netlist_fingerprint,
    workloads_fingerprint,
)

SMALL = dict(n_workloads=3, workload_cycles=40)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def sdram_analysis(sdram):
    """One cold sdram analysis shared by the equality tests."""
    analyzer = FaultCriticalityAnalyzer(
        sdram, AnalyzerConfig(**SMALL)
    )
    analyzer.summary()
    return analyzer


def _text_writer(text):
    def writer(path):
        Path(path).write_text(text, encoding="utf-8")

    return writer


# ----------------------------------------------------------------------
# identity scheme
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_canonical_hash_key_order_independent(self):
        assert canonical_hash({"a": 1, "b": 2}) == canonical_hash(
            {"b": 2, "a": 1}
        )

    def test_canonical_hash_arrays_participate(self):
        header = {"x": 1}
        a = np.arange(4)
        assert canonical_hash(header, (a,)) != canonical_hash(header)
        assert canonical_hash(header, (a,)) == canonical_hash(
            header, (np.asfortranarray(a.reshape(2, 2)).ravel(),)
        )

    def test_netlist_fingerprint_tracks_structure(self, sdram):
        # Deterministic for identical sources ...
        text = to_verilog(sdram)
        fingerprint = netlist_fingerprint(from_verilog(text))
        assert netlist_fingerprint(from_verilog(text)) == fingerprint
        # ... and moved by any structural edit.
        edited = from_verilog(text)
        extra = edited.add_gate("IV", [edited.gates[3].output])
        edited.add_output(extra, "probe_extra")
        assert netlist_fingerprint(edited) != fingerprint

    def test_workloads_fingerprint_hashes_vector_bytes(self, sdram):
        suite_a = design_workloads("sdram", sdram, count=2, cycles=30,
                                   seed=0)
        suite_b = design_workloads("sdram", sdram, count=2, cycles=30,
                                   seed=1)
        assert [w.name for w in suite_a] == [w.name for w in suite_b]
        assert workloads_fingerprint(suite_a) != workloads_fingerprint(
            suite_b
        )

    def test_campaign_fingerprint_reexported_from_checkpoint(self):
        from repro.fi.checkpoint import (
            campaign_fingerprint as legacy,
        )

        assert legacy is campaign_fingerprint

    def test_stage_keys_chain_parents(self):
        a = K.stage_key("netlist", {"fingerprint": "x"})
        campaign_one = K.campaign_key(a, "w", severity=0.2,
                                      collapse=False,
                                      observation="all-outputs")
        campaign_two = K.campaign_key("other", "w", severity=0.2,
                                      collapse=False,
                                      observation="all-outputs")
        assert campaign_one != campaign_two
        assert K.dataset_key(campaign_one, threshold=0.5) != \
            K.dataset_key(campaign_two, threshold=0.5)


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_put_get_roundtrip(self, store):
        key = K.stage_key("netlist", {"fingerprint": "t"})
        store.put(key, "netlist", _text_writer("module m; endmodule"))
        assert store.contains(key, "netlist")
        text = store.get(
            key, "netlist",
            lambda p: Path(p).read_text(encoding="utf-8"),
        )
        assert text == "module m; endmodule"

    def test_miss_returns_none_and_counts(self, store):
        assert store.get("0" * 64, "netlist",
                         lambda p: Path(p).read_text()) is None
        assert store.stats()["misses"] == 1

    def test_corrupt_entry_is_logged_miss_then_rewritten(
        self, store, caplog, sdram
    ):
        workloads = design_workloads("sdram", sdram, count=2,
                                     cycles=30, seed=0)
        campaign = run_campaign(sdram, workloads)
        key = "c" * 64
        store.put(key, "campaign",
                  lambda p: save_campaign(campaign, p))
        path = store.object_path(key, "campaign")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get(key, "campaign", load_campaign) is None
        assert any("failed validation" in record.message
                   for record in caplog.records)
        assert not path.exists()
        # Transparent rewrite: the slot accepts the artifact again.
        store.put(key, "campaign",
                  lambda p: save_campaign(campaign, p))
        restored = store.get(key, "campaign", load_campaign)
        assert np.array_equal(restored.error_cycles,
                              campaign.error_cycles)

    def test_garbage_bytes_every_kind_is_a_miss(self, store):
        for kind in KIND_EXTENSIONS:
            key = canonical_hash({"kind": kind})
            store.put(key, kind, _text_writer("not a valid artifact"))
        readers = {
            "campaign": load_campaign,
            "features": load_features,
            "graph": load_graph_data,
            "explanations": load_explanations,
            "dataset": lambda p: json.loads(
                Path(p).read_text()
            )["nodes"],
            "gridsearch": lambda p: json.loads(
                Path(p).read_text()
            )["points"],
        }
        for kind, reader in readers.items():
            key = canonical_hash({"kind": kind})
            # Wipe the recorded hash so the reader sees the bytes.
            assert store.get(key, kind, reader) is None

    def test_sha256_drift_is_a_miss(self, store):
        key = "d" * 64
        store.put(key, "netlist", _text_writer("original"))
        # Flip bytes behind the store's back, keeping the size.
        store.object_path(key, "netlist").write_text("ORIGINAL")
        assert store.get(
            key, "netlist",
            lambda p: Path(p).read_text(encoding="utf-8"),
        ) is None

    def test_lru_gc_under_byte_budget(self, store):
        keys = [canonical_hash({"i": i}) for i in range(6)]
        for key in keys:
            store.put(key, "netlist", _text_writer("x" * 1000))
        # Touch the two oldest so they become the most recent.
        for key in keys[:2]:
            store.get(key, "netlist", lambda p: Path(p).read_text())
        evicted, freed = store.gc(byte_budget=3000)
        assert evicted == 3 and freed == 3000
        survivors = {row["key"] for row in store.entries()}
        assert survivors == {keys[0], keys[1], keys[5]}
        assert store.stats()["bytes"] <= 3000
        # put() enforces the persisted budget from now on.
        store.put(canonical_hash({"i": 99}), "netlist",
                  _text_writer("y" * 1000))
        assert store.stats()["bytes"] <= 3000

    def test_clear_empties_store(self, store):
        store.put("e" * 64, "netlist", _text_writer("x"))
        assert store.clear() == 1
        assert store.stats()["entries"] == 0
        assert not store.contains("e" * 64, "netlist")

    def test_corrupt_index_rebuilt_from_scan(self, store):
        key = "f" * 64
        store.put(key, "netlist", _text_writer("survives"))
        store.index_path.write_text("{ not json !", encoding="utf-8")
        reopened = ArtifactStore(store.directory)
        assert reopened.get(
            key, "netlist",
            lambda p: Path(p).read_text(encoding="utf-8"),
        ) == "survives"

    def test_ghost_index_entry_dropped(self, store):
        key = "a" * 64
        store.put(key, "netlist", _text_writer("x"))
        store.object_path(key, "netlist").unlink()
        assert store.get(key, "netlist",
                         lambda p: Path(p).read_text()) is None
        assert store.stats()["entries"] == 0

    def test_find_matches_meta_most_recent_first(self, store):
        store.put("1" * 64, "netlist", _text_writer("x"),
                  meta={"design": "a"})
        store.put("2" * 64, "netlist", _text_writer("y"),
                  meta={"design": "b"})
        store.put("3" * 64, "netlist", _text_writer("z"),
                  meta={"design": "a"})
        found = store.find("netlist", design="a")
        assert [key for key, _ in found] == ["3" * 64, "1" * 64]


# ----------------------------------------------------------------------
# durability + races
# ----------------------------------------------------------------------
def _writer_process(directory: str, key: str, tag: int) -> None:
    store = ArtifactStore(directory)
    payload = f"// writer {tag}\n" + ("x" * 5000)
    store.put(key, "netlist", _text_writer(payload))


class TestDurability:
    def test_fsync_before_rename(self, tmp_path, monkeypatch):
        """The temp file must be durable before it is published."""
        import repro.io as io_module

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            io_module.os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            io_module.os, "replace",
            lambda a, b: (events.append("replace"),
                          real_replace(a, b))[1],
        )
        io_module.save_workload_checkpoint(
            tmp_path / "unit.npz", fingerprint="fp", workload_index=0,
            error_cycles=np.zeros(3, dtype=np.int64),
            detection_cycle=np.zeros(3, dtype=np.int64),
            latent=np.zeros(3, dtype=bool), elapsed_seconds=0.0,
        )
        assert "fsync" in events and "replace" in events
        # file fsync strictly precedes the rename; the parent
        # directory is synced after it.
        assert events.index("fsync") < events.index("replace")
        assert events[events.index("replace") + 1:].count("fsync") >= 1

    def test_atomic_write_text_durable(self, tmp_path):
        from repro.io import atomic_write_text

        target = tmp_path / "manifest.json"
        atomic_write_text(target, '{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_concurrent_writers_leave_one_valid_artifact(
        self, tmp_path
    ):
        directory = str(tmp_path / "shared")
        key = "b" * 64
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_writer_process,
                            args=(directory, key, tag))
            for tag in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        store = ArtifactStore(directory)
        text = store.get(
            key, "netlist",
            lambda p: Path(p).read_text(encoding="utf-8"),
        )
        assert text is not None and text.startswith("// writer ")
        objects = [
            path
            for path in (Path(directory) / "objects").glob("*/*")
            if not path.name.startswith(".tmp-")
        ]
        assert len(objects) == 1


# ----------------------------------------------------------------------
# memoized pipeline: warm == cold, bitwise
# ----------------------------------------------------------------------
class TestMemoizedAnalysis:
    def test_warm_rerun_is_bitwise_identical_without_recompute(
        self, sdram, sdram_analysis, tmp_path, monkeypatch
    ):
        config = AnalyzerConfig(**SMALL)
        directory = tmp_path / "store"
        cold = FaultCriticalityAnalyzer(
            sdram, config, store=ArtifactStore(directory)
        )
        cold_rows = (cold.summary(), cold.baseline_accuracies(),
                     cold.regression_quality())
        # The store-less reference run must agree with the cold
        # store-backed run (the store changes nothing on a miss) —
        # modulo wall-clock fields, which vary run to run.
        def steady(summary):
            return {key: value for key, value in summary.items()
                    if "seconds" not in key}

        assert repr(steady(cold.summary())) == \
            repr(steady(sdram_analysis.summary()))

        # Poison every expensive stage: a warm run must touch none.
        import repro.core.analyzer as analyzer_module

        def forbidden(*_args, **_kwargs):
            raise AssertionError("warm run recomputed a cached stage")

        monkeypatch.setattr(analyzer_module, "run_campaign", forbidden)
        monkeypatch.setattr(analyzer_module, "extract_features",
                            forbidden)
        monkeypatch.setattr(analyzer_module.GCNClassifier, "fit",
                            forbidden)
        monkeypatch.setattr(analyzer_module.GCNRegressor, "fit",
                            forbidden)
        warm = FaultCriticalityAnalyzer(
            sdram, config, store=ArtifactStore(directory)
        )
        warm_rows = (warm.summary(), warm.baseline_accuracies(),
                     warm.regression_quality())
        assert repr(warm_rows) == repr(cold_rows)
        assert np.array_equal(warm.data.x, cold.data.x)
        assert np.array_equal(warm.data.y_score, cold.data.y_score)
        assert np.array_equal(warm.classifier.predict(),
                              cold.classifier.predict())
        assert np.array_equal(warm.regressor.predict(),
                              cold.regressor.predict())

    def test_explanations_memoized_identically(self, sdram, tmp_path):
        config = AnalyzerConfig(**SMALL)
        directory = tmp_path / "store"
        cold = FaultCriticalityAnalyzer(
            sdram, config, store=ArtifactStore(directory)
        )
        nodes = cold.sample_explain_nodes(1)
        first = cold.explain_nodes(nodes)
        warm = FaultCriticalityAnalyzer(
            sdram, config, store=ArtifactStore(directory)
        )
        second = warm.explain_nodes(nodes)
        assert len(first) == len(second) > 0
        for mine, theirs in zip(first, second):
            assert mine.node_name == theirs.node_name
            assert mine.predicted_class == theirs.predicted_class
            assert np.array_equal(mine.feature_scores,
                                  theirs.feature_scores)
            assert mine.subgraph_nodes == theirs.subgraph_nodes
            assert mine.edge_importance == theirs.edge_importance

    def test_partial_campaign_never_cached(self, sdram, tmp_path):
        from repro.fi.campaign import CampaignResult, WorkloadFailure

        store = ArtifactStore(tmp_path / "store")
        workloads = design_workloads("sdram", sdram, count=2,
                                     cycles=30, seed=0)
        real = run_campaign(sdram, workloads)
        partial = CampaignResult(
            netlist_name=real.netlist_name, faults=real.faults,
            workload_names=real.workload_names,
            workload_cycles=real.workload_cycles,
            error_cycles=real.error_cycles,
            detection_cycle=real.detection_cycle, latent=real.latent,
            severity=real.severity,
            simulation_seconds=real.simulation_seconds,
            failures=[WorkloadFailure(
                workload="w0", status="timeout", attempts=1,
                elapsed_seconds=1.0, error="boom",
            )],
        )
        result = memoized_campaign(
            store, sdram, workloads, compute=lambda: partial
        )
        assert result is partial
        assert store.stats()["by_kind"].get("campaign") is None

    def test_near_miss_recovers_via_eco_bitwise(self, sdram, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        workloads = design_workloads("sdram", sdram, count=2,
                                     cycles=30, seed=0)
        memoized_campaign(
            store, sdram, workloads,
            compute=lambda: run_campaign(sdram, workloads),
        )
        # Edit the design: re-drive one output through an extra
        # buffer pair (structure changes, fault universe grows).
        edited = from_verilog(to_verilog(sdram))
        tap = edited.gates[10].output
        first = edited.add_gate("IV", [tap])
        second = edited.add_gate("IV", [first])
        edited.add_output(second, "probe_tap")
        edited_workloads = design_workloads("sdram", edited, count=2,
                                            cycles=30, seed=0)

        calls = {"cold": 0}

        def cold_compute():
            calls["cold"] += 1
            return run_campaign(edited, edited_workloads)

        recovered = memoized_campaign(
            store, edited, edited_workloads, compute=cold_compute
        )
        assert calls["cold"] == 0, "near-miss path did not engage"
        reference = run_campaign(edited, edited_workloads)
        assert recovered.netlist_name == reference.netlist_name
        assert np.array_equal(recovered.error_cycles,
                              reference.error_cycles)
        assert np.array_equal(recovered.detection_cycle,
                              reference.detection_cycle)
        assert np.array_equal(recovered.latent, reference.latent)
        # The recovered result is now cached under its exact key:
        # a third run is a plain hit.
        hit = memoized_campaign(
            store, edited, edited_workloads, compute=cold_compute
        )
        assert calls["cold"] == 0
        assert np.array_equal(hit.error_cycles, reference.error_cycles)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestStoreCli:
    def test_analyze_warm_stdout_identical(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = ["analyze", "sdram", "--workloads", "3", "--cycles",
                "40", "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        cold_output = capsys.readouterr().out
        assert main(argv) == 0
        warm_output = capsys.readouterr().out
        assert warm_output == cold_output
        # A store-less run still works (fresh simulation timing means
        # its wall-clock column may differ, so no byte comparison).
        assert main(argv[:-2] + ["--no-store"]) == 0
        assert capsys.readouterr().out

    def test_store_subcommand_lifecycle(self, tmp_path, capsys):
        from repro.__main__ import main

        directory = str(tmp_path / "store")
        argv = ["campaign", "sdram", "--workloads", "2", "--cycles",
                "30", "--store", directory]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", directory]) == 0
        assert "campaign" in capsys.readouterr().out
        assert main(["store", "ls", "--store", directory]) == 0
        assert "sdram" in capsys.readouterr().out
        assert main(["store", "gc", "--store", directory,
                     "--budget", "1"]) == 0
        assert "evicted" in capsys.readouterr().out
        assert ArtifactStore(directory).stats()["bytes"] <= 1
        assert main(["store", "clear", "--store", directory]) == 0
        assert "removed" in capsys.readouterr().out

    def test_store_subcommand_requires_directory(self, capsys,
                                                 monkeypatch):
        from repro.__main__ import main

        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "stats"]) == 2


# ----------------------------------------------------------------------
# new io round-trips
# ----------------------------------------------------------------------
class TestNewIoRoundTrips:
    def test_features_roundtrip(self, sdram, tmp_path):
        from repro.features import extract_features

        features = extract_features(sdram, probability_source="cop")
        path = tmp_path / "features.npz"
        save_features(features, path)
        loaded = load_features(path)
        assert loaded.design == features.design
        assert loaded.node_names == features.node_names
        assert loaded.feature_names == features.feature_names
        assert np.array_equal(loaded.matrix, features.matrix)

    def test_graph_data_roundtrip(self, sdram, tmp_path):
        analyzer = FaultCriticalityAnalyzer(
            sdram, AnalyzerConfig(**SMALL)
        )
        data = analyzer.data
        path = tmp_path / "graph.npz"
        save_graph_data(data, path)
        loaded = load_graph_data(path)
        assert loaded.design == data.design
        assert loaded.node_names == data.node_names
        assert np.array_equal(loaded.x, data.x)
        assert np.array_equal(loaded.x_raw, data.x_raw)
        assert np.array_equal(loaded.edge_index, data.edge_index)
        assert np.array_equal(loaded.y_class, data.y_class)
        assert np.array_equal(loaded.y_score, data.y_score)

    def test_explanations_roundtrip(self, sdram, tmp_path):
        analyzer = FaultCriticalityAnalyzer(
            sdram, AnalyzerConfig(**SMALL)
        )
        nodes = analyzer.sample_explain_nodes(1)
        explanations = analyzer.explain_nodes(nodes)
        path = tmp_path / "explanations.npz"
        save_explanations(explanations, path)
        loaded = load_explanations(path)
        assert len(loaded) == len(explanations)
        for mine, theirs in zip(explanations, loaded):
            assert mine.node_name == theirs.node_name
            assert mine.node_index == theirs.node_index
            assert mine.predicted_class == theirs.predicted_class
            assert mine.feature_names == theirs.feature_names
            assert np.array_equal(mine.feature_scores,
                                  theirs.feature_scores)
            assert mine.subgraph_nodes == theirs.subgraph_nodes
            assert mine.edge_importance == theirs.edge_importance
