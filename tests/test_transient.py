"""Tests for the transient-fault (SEU) extension."""

import numpy as np
import pytest

from repro.fi import (
    TransientFault,
    dataset_from_campaign,
    run_transient_campaign,
    transient_fault_universe,
)
from repro.netlist import Netlist
from repro.sim import (
    BitParallelSimulator,
    Simulator,
    Workload,
    design_workloads,
    random_workload,
)
from repro.utils.errors import SimulationError


def toggle_counter_netlist():
    """A 2-bit counter observed directly: upsets are architecturally
    permanent (the wrong count persists), so effects are predictable."""
    from repro.circuits import CircuitBuilder, up_counter

    builder = CircuitBuilder("ctr")
    reset = builder.input("rst")
    ports = up_counter(builder, 2, reset)
    builder.output_bus(ports.value, "q")
    return builder.netlist


class TestTransientEngine:
    def test_upset_flips_exactly_from_injection(self):
        netlist = toggle_counter_netlist()
        flop = netlist.sequential_gates()[0]  # counter bit 0
        workload = Workload.from_dicts(
            "w", netlist,
            [{"rst": 1}] + [{"rst": 0}] * 9,
        )
        engine = BitParallelSimulator(netlist)
        error_cycles, detection, latent = engine.run_transient_pass(
            workload,
            np.array([flop.output]),
            np.array([4]),
        )
        # Bit 0 of a free-running counter: flipping it changes q_0 on
        # every subsequent cycle and q_1 thereafter — detected at the
        # injection cycle, erroneous until the end.
        assert detection[0] == 4
        assert error_cycles[0] == 10 - 4

    def test_golden_machine_clean(self, icfsm):
        workload = random_workload(icfsm, cycles=40, seed=0)
        flops = icfsm.sequential_gates()
        engine = BitParallelSimulator(icfsm)
        error_cycles, detection, latent = engine.run_transient_pass(
            workload,
            np.array([gate.output for gate in flops[:10]]),
            np.full(10, 5),
        )
        assert len(error_cycles) == 10
        assert (error_cycles >= 0).all()

    def test_rejects_combinational_targets(self, tiny_netlist):
        workload = Workload.from_dicts("w", tiny_netlist,
                                       [{"a": 1, "b": 1}] * 4)
        engine = BitParallelSimulator(tiny_netlist)
        gate = tiny_netlist.gates[0]  # AN2 — not a flop
        with pytest.raises(SimulationError, match="flip-flop"):
            engine.run_transient_pass(
                workload, np.array([gate.output]), np.array([1])
            )

    def test_rejects_out_of_range_cycle(self):
        netlist = toggle_counter_netlist()
        flop = netlist.sequential_gates()[0]
        workload = Workload.from_dicts("w", netlist, [{"rst": 0}] * 5)
        engine = BitParallelSimulator(netlist)
        with pytest.raises(SimulationError, match="injection cycle"):
            engine.run_transient_pass(
                workload, np.array([flop.output]), np.array([9])
            )

    def test_matches_scalar_flip(self):
        """Cross-check against the scalar simulator with a manual state
        flip at the injection cycle."""
        netlist = toggle_counter_netlist()
        flop = netlist.sequential_gates()[1]  # counter bit 1
        rows = [{"rst": 1}] + [{"rst": 0}] * 11
        workload = Workload.from_dicts("w", netlist, rows)

        golden = Simulator(netlist).run(workload).outputs

        reference = Simulator(netlist)
        reference.reset()
        outputs = []
        for cycle, row in enumerate(rows):
            if cycle == 6:
                reference._values[flop.output] ^= 1
            observed = reference.step(row)
            outputs.append([observed["q_0"], observed["q_1"]])
        outputs = np.array(outputs, dtype=np.uint8)

        engine = BitParallelSimulator(netlist)
        error_cycles, detection, latent = engine.run_transient_pass(
            workload, np.array([flop.output]), np.array([6])
        )
        expected_errors = int((outputs != golden).any(axis=1).sum())
        assert error_cycles[0] == expected_errors
        mismatch_cycles = np.flatnonzero((outputs != golden).any(axis=1))
        assert detection[0] == mismatch_cycles[0]


class TestTransientUniverse:
    def test_universe_shape(self, icfsm):
        faults = transient_fault_universe(icfsm, cycles=100,
                                          injections_per_flop=6, seed=0)
        flops = icfsm.sequential_gates()
        assert len(faults) == 6 * len(flops)
        by_node = {}
        for fault in faults:
            by_node.setdefault(fault.node_name, set()).add(fault.cycle)
        assert all(len(cycles) == 6 for cycles in by_node.values())
        # injections restricted to the first half past warm-up
        assert all(4 <= fault.cycle < 50 for fault in faults)

    def test_universe_validation(self, tiny_netlist, icfsm):
        with pytest.raises(SimulationError, match="no flip-flops"):
            transient_fault_universe(tiny_netlist, cycles=100)
        with pytest.raises(SimulationError, match="cannot place"):
            transient_fault_universe(icfsm, cycles=20,
                                     injections_per_flop=50)

    def test_fault_name(self):
        fault = TransientFault(gate_index=0, net_index=1,
                               node_name="DFF_U1", cycle=7)
        assert fault.name == "DFF_U1/SEU@7"


class TestTransientCampaign:
    def test_campaign_and_dataset(self, icfsm):
        workloads = design_workloads(icfsm.name, icfsm, count=4,
                                     cycles=100, seed=0)
        campaign = run_transient_campaign(
            icfsm, workloads, injections_per_flop=4, seed=0
        )
        flops = icfsm.sequential_gates()
        assert len(campaign.faults) == 4 * len(flops)
        dataset = dataset_from_campaign(campaign)
        assert dataset.n_nodes == len(flops)
        assert dataset.scores.min() >= 0.0
        assert dataset.scores.max() <= 1.0
        # Permanent stuck-ats strictly dominate single upsets.
        from repro.fi import run_campaign

        permanent = dataset_from_campaign(run_campaign(icfsm, workloads))
        flop_names = {gate.node_name for gate in flops}
        permanent_scores = {
            name: score for name, score in
            zip(permanent.node_names, permanent.scores)
            if name in flop_names
        }
        assert dataset.scores.mean() <= (
            np.mean(list(permanent_scores.values())) + 1e-9
        )

    def test_campaign_empty_workloads(self, icfsm):
        with pytest.raises(SimulationError):
            run_transient_campaign(icfsm, [])
