"""Tests for the resilient campaign runner: backoff/retry policies,
checkpoint/resume, timeout supervision, and graceful degradation."""

import json

import numpy as np
import pytest

from repro.fi import run_campaign
from repro.fi.checkpoint import MANIFEST_NAME
from repro.fi.runner import CampaignRunner, PassTimeout, RunnerPolicy
from repro.sim import Workload, design_workloads
from repro.sim.bitparallel import BitParallelSimulator
from repro.utils.errors import (
    CampaignError,
    SerializationError,
    SimulationError,
)
from repro.utils.retry import BackoffPolicy, retry_call

NO_WAIT = BackoffPolicy(base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def suite(icfsm):
    return design_workloads(icfsm.name, icfsm, count=4, cycles=60,
                            seed=0)


@pytest.fixture(scope="module")
def baseline(icfsm, suite):
    return run_campaign(icfsm, suite)


def assert_campaigns_identical(left, right):
    assert left.netlist_name == right.netlist_name
    assert left.workload_names == right.workload_names
    assert np.array_equal(left.workload_cycles, right.workload_cycles)
    assert np.array_equal(left.error_cycles, right.error_cycles)
    assert np.array_equal(left.detection_cycle, right.detection_cycle)
    assert np.array_equal(left.latent, right.latent)
    assert left.severity == right.severity


class TestBackoffPolicy:
    def test_exponential_growth_and_cap(self):
        policy = BackoffPolicy(base=1.0, multiplier=2.0, max_delay=5.0,
                               jitter=0.0)
        assert policy.delays(4) == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_bounds_and_determinism(self):
        policy = BackoffPolicy(base=1.0, multiplier=1.0, max_delay=10.0,
                               jitter=0.25, seed=7)
        delays = policy.delays(50)
        assert all(0.75 <= delay <= 1.25 for delay in delays)
        assert delays == policy.delays(50)  # seeded => reproducible
        assert delays != BackoffPolicy(
            base=1.0, multiplier=1.0, max_delay=10.0, jitter=0.25,
            seed=8,
        ).delays(50)

    def test_validation(self):
        with pytest.raises(SimulationError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(SimulationError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(max_elapsed=0.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(max_elapsed=-5.0)
        assert BackoffPolicy(max_elapsed=10.0).max_elapsed == 10.0
        assert BackoffPolicy().max_elapsed is None  # unbounded default


class TestRetryCall:
    def _fake_clock(self):
        state = {"now": 0.0}

        def clock():
            return state["now"]

        def sleep(seconds):
            state["now"] += seconds

        return clock, sleep, state

    def test_success_first_try(self):
        clock, sleep, _ = self._fake_clock()
        value, outcome = retry_call(lambda: 42, retries=3,
                                    sleep=sleep, clock=clock)
        assert value == 42
        assert outcome.succeeded and outcome.attempts == 1

    def test_succeeds_after_failures_with_backoff_schedule(self):
        clock, sleep, state = self._fake_clock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = BackoffPolicy(base=1.0, multiplier=2.0,
                               max_delay=100.0, jitter=0.0)
        value, outcome = retry_call(flaky, retries=5, backoff=policy,
                                    sleep=sleep, clock=clock)
        assert value == "ok"
        assert outcome.attempts == 3
        assert state["now"] == 3.0  # slept 1s then 2s on the fake clock

    def test_exhaustion_returns_last_error(self):
        clock, sleep, _ = self._fake_clock()

        def always_broken():
            raise ValueError("permanent")

        value, outcome = retry_call(always_broken, retries=2,
                                    backoff=NO_WAIT, sleep=sleep,
                                    clock=clock)
        assert value is None
        assert not outcome.succeeded
        assert outcome.attempts == 3
        assert isinstance(outcome.error, ValueError)

    def test_kill_propagates(self):
        def killed():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            retry_call(killed, retries=5, backoff=NO_WAIT,
                       sleep=lambda _s: None)

    def test_negative_retries_rejected(self):
        with pytest.raises(SimulationError):
            retry_call(lambda: 1, retries=-1)

    def test_max_elapsed_stops_retrying_early(self):
        """The wall-clock deadline wins over remaining retries: a
        sleep that would overrun the budget is never taken."""
        clock, sleep, state = self._fake_clock()

        def always_broken():
            raise ValueError("permanent")

        policy = BackoffPolicy(base=1.0, multiplier=1.0,
                               max_delay=10.0, jitter=0.0,
                               max_elapsed=2.5)
        value, outcome = retry_call(always_broken, retries=10,
                                    backoff=policy, sleep=sleep,
                                    clock=clock)
        assert value is None
        assert not outcome.succeeded
        # Slept 1s twice (to t=2.0); the third 1s sleep would land at
        # t=3.0 >= 2.5, so the call gives up after 3 of 11 attempts.
        assert outcome.attempts == 3
        assert state["now"] == 2.0
        assert isinstance(outcome.error, ValueError)

    def test_max_elapsed_never_blocks_first_attempt(self):
        """A tiny budget still allows exactly one attempt — the
        deadline bounds *retrying*, not calling."""
        clock, sleep, _ = self._fake_clock()
        policy = BackoffPolicy(base=1.0, jitter=0.0, max_elapsed=0.5)
        value, outcome = retry_call(lambda: "ok", retries=5,
                                    backoff=policy, sleep=sleep,
                                    clock=clock)
        assert value == "ok"
        assert outcome.attempts == 1

        def broken():
            raise RuntimeError("nope")

        value, outcome = retry_call(broken, retries=5, backoff=policy,
                                    sleep=sleep, clock=clock)
        assert value is None
        assert outcome.attempts == 1  # no sleep fits inside 0.5s

    def test_runner_rejects_deadline_below_timeout(self, icfsm, suite):
        with pytest.raises(CampaignError, match="max_elapsed"):
            RunnerPolicy(
                timeout=10.0, retries=2,
                backoff=BackoffPolicy(max_elapsed=5.0),
            )

    def test_campaign_honours_retry_deadline(
        self, icfsm, suite, monkeypatch,
    ):
        """With a deadline that only covers one backoff sleep, a
        permanently broken workload stops retrying early and lands in
        the ledger with fewer attempts than the retry budget allows."""
        original = BitParallelSimulator.run_fault_pass
        broken = suite[1].name

        def flaky(self, workload, *args, **kwargs):
            if workload.name == broken:
                raise RuntimeError("injected permanent fault")
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            flaky)
        policy = BackoffPolicy(base=30.0, multiplier=1.0, jitter=0.0,
                               max_elapsed=1.0)
        result = run_campaign(icfsm, suite, retries=5, backoff=policy)
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.workload == broken
        assert failure.status == "error"
        # 6 attempts allowed, but the first 30s sleep would overrun
        # the 1s budget — exactly one attempt happened.
        assert failure.attempts == 1


class TestPreflight:
    def test_zero_cycle_workload_rejected(self, icfsm):
        empty = Workload(
            "empty", icfsm.input_names(),
            np.zeros((0, icfsm.n_inputs), dtype=np.uint8),
        )
        with pytest.raises(SimulationError, match="zero-cycle"):
            run_campaign(icfsm, [empty])

    def test_duplicate_workload_names_rejected(self, icfsm, suite):
        with pytest.raises(SimulationError, match="duplicate"):
            run_campaign(icfsm, [suite[0], suite[0]])

    def test_policy_validation(self):
        with pytest.raises(CampaignError):
            RunnerPolicy(timeout=0.0)
        with pytest.raises(CampaignError):
            RunnerPolicy(retries=-1)
        with pytest.raises(CampaignError):
            RunnerPolicy(resume=True)  # no checkpoint_dir


class TestCheckpointResume:
    def test_uninterrupted_checkpointed_run_matches_plain(
        self, icfsm, suite, baseline, tmp_path,
    ):
        checkpointed = run_campaign(icfsm, suite,
                                    checkpoint_dir=tmp_path)
        assert_campaigns_identical(baseline, checkpointed)
        files = sorted(path.name for path in tmp_path.iterdir())
        assert MANIFEST_NAME in files
        assert sum(name.startswith("workload_") for name in files) == 4

    def test_killed_campaign_resumes_identically(
        self, icfsm, suite, baseline, tmp_path, monkeypatch,
    ):
        """Simulated SIGKILL after 2 completed workloads: the interrupt
        propagates (kills stay kills), checkpoints survive, and the
        resumed campaign is identical to an uninterrupted one."""
        original = BitParallelSimulator.run_fault_pass
        passes = {"n": 0}

        def dying(self, workload, *args, **kwargs):
            if passes["n"] == 2:
                raise KeyboardInterrupt
            passes["n"] += 1
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            dying)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                         retries=3, backoff=NO_WAIT)
        completed = [path for path in tmp_path.iterdir()
                     if path.name.startswith("workload_")]
        assert len(completed) == 2  # durable progress survived the kill

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            original)
        resumed = run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                               resume=True)
        assert_campaigns_identical(baseline, resumed)
        assert resumed.complete

    def test_resume_with_collapse(self, icfsm, suite, tmp_path):
        plain = run_campaign(icfsm, suite, collapse=True)
        run_campaign(icfsm, suite, collapse=True,
                     checkpoint_dir=tmp_path)
        resumed = run_campaign(icfsm, suite, collapse=True,
                               checkpoint_dir=tmp_path, resume=True)
        assert_campaigns_identical(plain, resumed)

    def test_fresh_run_refuses_populated_directory(
        self, icfsm, suite, tmp_path,
    ):
        run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        with pytest.raises(CampaignError, match="resume it"):
            run_campaign(icfsm, suite, checkpoint_dir=tmp_path)

    def test_resume_without_manifest_rejected(
        self, icfsm, suite, tmp_path,
    ):
        with pytest.raises(CampaignError, match="nothing to resume"):
            run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                         resume=True)

    def test_resume_different_campaign_rejected(
        self, icfsm, suite, tmp_path,
    ):
        """Same workload *names*, different stimulus bytes: the
        fingerprint must catch it."""
        run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        other = design_workloads(icfsm.name, icfsm, count=4, cycles=60,
                                 seed=99)
        assert [w.name for w in other] == [w.name for w in suite]
        with pytest.raises(CampaignError, match="different campaign"):
            run_campaign(icfsm, other, checkpoint_dir=tmp_path,
                         resume=True)

    def test_torn_workload_checkpoint_resimulated(
        self, icfsm, suite, baseline, tmp_path,
    ):
        """A unit file truncated mid-write (the kill-during-save
        signature) is skipped and re-simulated on resume — resuming
        after a crash must never require manual file surgery."""
        run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        victim = tmp_path / "workload_0001.npz"
        victim.write_bytes(victim.read_bytes()[:40])  # torn bytes
        resumed = run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                               resume=True)
        assert_campaigns_identical(baseline, resumed)
        assert resumed.complete
        # The re-simulated unit was durably re-checkpointed intact.
        third = run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                             resume=True)
        assert_campaigns_identical(baseline, third)

    def test_mismatched_workload_checkpoint_still_rejected(
        self, icfsm, suite, tmp_path,
    ):
        """A *well-formed* unit file that belongs to a different
        campaign configuration is an operator error, not a torn
        write — it must refuse loudly, never silently re-simulate."""
        from repro.io import save_workload_checkpoint

        campaign = run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        save_workload_checkpoint(
            tmp_path / "workload_0001.npz",
            fingerprint="0" * 64,  # some other campaign's digest
            workload_index=1,
            error_cycles=campaign.error_cycles[1],
            detection_cycle=campaign.detection_cycle[1],
            latent=campaign.latent[1],
            elapsed_seconds=0.0,
        )
        with pytest.raises(CampaignError, match="failed validation"):
            run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                         resume=True)

    def test_corrupt_manifest_rejected(self, icfsm, suite, tmp_path):
        run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json",
                                              encoding="utf-8")
        with pytest.raises(CampaignError, match="corrupt"):
            run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                         resume=True)


class TestGracefulDegradation:
    def test_retry_exhaustion_yields_failure_ledger(
        self, icfsm, suite, baseline, monkeypatch,
    ):
        original = BitParallelSimulator.run_fault_pass
        broken = suite[1].name

        def flaky(self, workload, *args, **kwargs):
            if workload.name == broken:
                raise RuntimeError("injected harness fault")
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            flaky)
        result = run_campaign(icfsm, suite, retries=2,
                              backoff=NO_WAIT)
        assert not result.complete
        assert [f.workload for f in result.failures] == [broken]
        failure = result.failures[0]
        assert failure.status == "error"
        assert failure.attempts == 3  # 1 try + 2 retries
        assert "injected harness fault" in failure.error
        assert list(result.completed_mask) == [True, False, True, True]
        # failed row stays at the no-error initial state...
        assert result.error_cycles[1].sum() == 0
        assert (result.detection_cycle[1] == -1).all()
        assert not result.latent[1].any()
        # ...and the other rows are the real results.
        for row in (0, 2, 3):
            assert np.array_equal(result.error_cycles[row],
                                  baseline.error_cycles[row])

    def test_transient_failure_recovered_by_retry(
        self, icfsm, suite, baseline, monkeypatch,
    ):
        original = BitParallelSimulator.run_fault_pass
        attempts = {"n": 0}

        def once_flaky(self, workload, *args, **kwargs):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            once_flaky)
        result = run_campaign(icfsm, suite, retries=1, backoff=NO_WAIT)
        assert result.complete
        assert_campaigns_identical(baseline, result)

    def test_hung_pass_times_out(self, icfsm, suite, monkeypatch):
        import time as time_module

        original = BitParallelSimulator.run_fault_pass
        hung = suite[0].name

        def hang(self, workload, *args, **kwargs):
            if workload.name == hung:
                time_module.sleep(5.0)
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            hang)
        result = run_campaign(icfsm, suite[:2], timeout=0.2)
        assert [f.status for f in result.failures] == ["timeout"]
        assert result.failures[0].workload == hung
        assert result.completed_mask[1]

    def test_failure_ledger_survives_save_load(
        self, icfsm, suite, monkeypatch, tmp_path,
    ):
        from repro.io import load_campaign, save_campaign

        original = BitParallelSimulator.run_fault_pass

        def flaky(self, workload, *args, **kwargs):
            if workload.name == suite[0].name:
                raise RuntimeError("dead workload")
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            flaky)
        result = run_campaign(icfsm, suite, backoff=NO_WAIT)
        target = tmp_path / "partial.npz"
        save_campaign(result, target)
        loaded = load_campaign(target)
        assert loaded.failures == result.failures
        assert list(loaded.completed_mask) == list(
            result.completed_mask
        )

    def test_timeout_failures_checkpoint_resume(
        self, icfsm, suite, baseline, monkeypatch, tmp_path,
    ):
        """A failed workload is NOT checkpointed: a later resume
        re-simulates it and recovers the full campaign."""
        original = BitParallelSimulator.run_fault_pass
        broken = suite[2].name

        def flaky(self, workload, *args, **kwargs):
            if workload.name == broken:
                raise RuntimeError("flaky box")
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            flaky)
        partial = run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                               backoff=NO_WAIT)
        assert [f.workload for f in partial.failures] == [broken]

        monkeypatch.setattr(BitParallelSimulator, "run_fault_pass",
                            original)
        recovered = run_campaign(icfsm, suite, checkpoint_dir=tmp_path,
                                 resume=True)
        assert recovered.complete
        assert_campaigns_identical(baseline, recovered)


class TestRunnerDirect:
    def test_runner_preflight_happens_at_construction(self, icfsm):
        with pytest.raises(SimulationError):
            CampaignRunner(icfsm, [])

    def test_pass_timeout_is_campaign_error(self):
        assert issubclass(PassTimeout, CampaignError)

    def test_manifest_contents(self, icfsm, suite, tmp_path):
        run_campaign(icfsm, suite, checkpoint_dir=tmp_path)
        manifest = json.loads(
            (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["netlist_name"] == icfsm.name
        assert manifest["workload_names"] == [w.name for w in suite]
        assert manifest["n_faults"] == 2 * icfsm.n_gates
