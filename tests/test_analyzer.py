"""Tests for the end-to-end FaultCriticalityAnalyzer pipeline."""

import numpy as np
import pytest

from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer
from repro.models import BASELINE_NAMES


class TestPipelineStages:
    def test_stage_caching(self, icfsm_analyzer):
        analyzer = icfsm_analyzer
        assert analyzer.workloads is analyzer.workloads
        assert analyzer.campaign is analyzer.campaign
        assert analyzer.dataset is analyzer.dataset
        assert analyzer.classifier is analyzer.classifier
        assert analyzer.regressor is analyzer.regressor

    def test_workloads_config(self, icfsm_analyzer):
        assert len(icfsm_analyzer.workloads) == 12
        assert all(w.cycles == 150 for w in icfsm_analyzer.workloads)

    def test_dataset_properties(self, icfsm_analyzer):
        dataset = icfsm_analyzer.dataset
        assert dataset.n_nodes == icfsm_analyzer.netlist.n_gates
        assert 0.0 < dataset.critical_fraction < 1.0
        assert dataset.threshold == 0.5

    def test_split_is_80_20(self, icfsm_analyzer):
        split = icfsm_analyzer.split
        total = split.n_train + split.n_val
        assert total == icfsm_analyzer.data.n_nodes
        assert split.n_val == pytest.approx(total * 0.2, abs=3)

    def test_summary_keys(self, icfsm_analyzer):
        summary = icfsm_analyzer.summary()
        assert summary["design"] == "or1200_icfsm"
        assert 0.5 <= summary["gcn_accuracy"] <= 1.0
        assert 0.0 <= summary["gcn_auc"] <= 1.0
        assert summary["fi_seconds"] > 0


class TestEvaluationViews:
    def test_validation_accuracy_beats_chance(self, icfsm_analyzer):
        accuracy = icfsm_analyzer.validation_accuracy()
        assert accuracy >= 0.6

    def test_validation_roc(self, icfsm_analyzer):
        curve = icfsm_analyzer.validation_roc()
        assert 0.5 <= curve.auc <= 1.0

    def test_validation_confusion_totals(self, icfsm_analyzer):
        matrix = icfsm_analyzer.validation_confusion()
        total = (matrix.true_positive + matrix.false_positive
                 + matrix.true_negative + matrix.false_negative)
        assert total == icfsm_analyzer.split.n_val

    def test_baseline_accuracies(self, icfsm_analyzer):
        results = icfsm_analyzer.baseline_accuracies()
        assert set(results) == set(BASELINE_NAMES)
        assert all(0.3 <= value <= 1.0 for value in results.values())

    def test_baseline_rocs(self, icfsm_analyzer):
        curves = icfsm_analyzer.baseline_rocs(names=("LoR", "RFC"))
        assert set(curves) == {"LoR", "RFC"}
        assert all(0.0 <= curve.auc <= 1.0 for curve in curves.values())

    def test_regression_quality(self, icfsm_analyzer):
        quality = icfsm_analyzer.regression_quality()
        assert -1.0 <= quality["pearson"] <= 1.0
        assert 0.0 <= quality["conformity_with_classifier"] <= 1.0
        assert 0.0 <= quality["conformity_with_labels"] <= 1.0

    def test_node_report_rows(self, icfsm_analyzer):
        nodes = icfsm_analyzer.data.node_names[:3]
        reports = icfsm_analyzer.node_report(nodes)
        assert [report.node_name for report in reports] == nodes
        for report in reports:
            assert report.classification in ("Critical", "Non-critical")
            assert 0.0 <= report.criticality_score <= 1.0
            assert len(report.feature_scores) == 5
            row = report.as_row()
            assert row["design"] == "or1200_icfsm"

    def test_global_importance(self, icfsm_analyzer):
        importance = icfsm_analyzer.global_importance(sample=8)
        assert importance.n_explanations == 8
        assert len(importance.ranked_features()) == 5

    def test_sample_explain_nodes(self, icfsm_analyzer):
        sample = icfsm_analyzer.sample_explain_nodes(per_class=2)
        assert sample == icfsm_analyzer.sample_explain_nodes(per_class=2)
        validation = np.flatnonzero(icfsm_analyzer.split.val_mask)
        assert set(sample) <= {int(node) for node in validation}
        predictions = icfsm_analyzer.classifier.predict()
        sampled_classes = {int(predictions[node]) for node in sample}
        present_classes = {int(predictions[node]) for node in validation}
        assert sampled_classes == present_classes
        for label in present_classes:
            count = sum(
                1 for node in sample if predictions[node] == label
            )
            assert count <= 2

    def test_explain_nodes_jobs_match_serial(self, icfsm_analyzer):
        nodes = icfsm_analyzer.data.node_names[:4]
        serial = icfsm_analyzer.explain_nodes(nodes)
        forked = icfsm_analyzer.explain_nodes(
            nodes, jobs=2, batch_size=2
        )
        for left, right in zip(serial, forked):
            assert np.array_equal(left.feature_scores,
                                  right.feature_scores)
            assert left.edge_importance == right.edge_importance


def test_config_controls_features(icfsm):
    config = AnalyzerConfig(
        n_workloads=4, workload_cycles=60,
        probability_source="cop", extended_features=True, seed=1,
    )
    analyzer = FaultCriticalityAnalyzer(icfsm, config)
    assert analyzer.features.n_features == 13
    assert analyzer.data.x.shape[1] == 13


def test_custom_workloads_respected(icfsm):
    from repro.sim import random_workload

    workloads = [random_workload(icfsm, cycles=40, seed=s)
                 for s in range(3)]
    analyzer = FaultCriticalityAnalyzer(icfsm, workloads=workloads)
    assert analyzer.workloads is not None
    assert len(analyzer.workloads) == 3
    assert analyzer.campaign.n_workloads == 3


def test_analyzer_deterministic(icfsm):
    config = AnalyzerConfig(n_workloads=4, workload_cycles=60, seed=9)
    first = FaultCriticalityAnalyzer(icfsm, config)
    second = FaultCriticalityAnalyzer(icfsm, config)
    assert np.array_equal(first.dataset.scores, second.dataset.scores)
    assert np.array_equal(first.split.val_mask, second.split.val_mask)
    assert first.validation_accuracy() == second.validation_accuracy()
