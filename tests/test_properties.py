"""Property-based tests (hypothesis) on core data structures and
invariants: netlist generation, simulator equivalence, Verilog
round-trips, adjacency normalization, metrics, and Algorithm 1."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_netlist
from repro.fi import dataset_from_campaign, generate_dataset, run_campaign
from repro.graph import normalized_adjacency, stratified_split
from repro.metrics import auc_score, roc_curve, spearman
from repro.metrics.regression import _rankdata
from repro.netlist import check, from_verilog, to_verilog
from repro.sim import BitParallelSimulator, Simulator, random_workload

SLOW = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

netlist_params = st.tuples(
    st.integers(min_value=2, max_value=8),    # inputs
    st.integers(min_value=4, max_value=60),   # gates
    st.integers(min_value=0, max_value=8),    # flops
    st.integers(min_value=1, max_value=5),    # outputs
    st.integers(min_value=0, max_value=10_000),  # seed
)


@SLOW
@given(netlist_params)
def test_random_netlists_are_valid(params):
    n_inputs, n_gates, n_flops, n_outputs, seed = params
    netlist = random_netlist(n_inputs, n_gates, n_flops, n_outputs,
                             seed=seed)
    assert check(netlist) == []
    levels = netlist.levelize()
    assert len(levels) == netlist.n_gates


@SLOW
@given(netlist_params)
def test_verilog_roundtrip_property(params):
    n_inputs, n_gates, n_flops, n_outputs, seed = params
    netlist = random_netlist(n_inputs, n_gates, n_flops, n_outputs,
                             seed=seed)
    parsed = from_verilog(to_verilog(netlist))
    assert parsed.n_gates == netlist.n_gates
    assert sorted(parsed.node_names()) == sorted(netlist.node_names())
    workload = random_workload(netlist, cycles=15, seed=seed,
                               reset_input="in_0")
    original = Simulator(netlist).run(workload).outputs
    replayed = Simulator(parsed).run(workload).outputs
    assert np.array_equal(original, replayed)


@SLOW
@given(netlist_params)
def test_scalar_and_bitparallel_agree(params):
    n_inputs, n_gates, n_flops, n_outputs, seed = params
    netlist = random_netlist(n_inputs, n_gates, n_flops, n_outputs,
                             seed=seed)
    workload = random_workload(netlist, cycles=20, seed=seed,
                               reset_input="in_0")
    scalar = Simulator(netlist).run(workload).outputs
    packed = BitParallelSimulator(netlist).golden_outputs(workload)
    assert np.array_equal(scalar, packed)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
             min_size=1, max_size=60),
    st.sampled_from(["symmetric", "row"]),
)
def test_normalization_invariants(edge_list, mode):
    edges = np.array(edge_list).T
    a_norm = normalized_adjacency(edges, 20, mode=mode)
    dense = a_norm.toarray()
    assert (dense >= 0.0).all()
    sums = dense.sum(axis=1)
    if mode == "row":
        assert np.allclose(sums, 1.0)
    else:
        assert np.allclose(dense, dense.T)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-9  # spectral radius bound


@settings(max_examples=40, deadline=None)
@given(st.lists(st.booleans(), min_size=4, max_size=200),
       st.integers(0, 2**31 - 1))
def test_auc_bounds_and_reversal(labels, seed):
    y = np.array(labels, dtype=int)
    if y.min() == y.max():
        return  # need both classes
    rng = np.random.default_rng(seed)
    scores = rng.random(len(y))
    auc = auc_score(y, scores)
    assert 0.0 <= auc <= 1.0
    assert auc_score(y, -scores) == pytest.approx(1.0 - auc)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2, max_size=80,
))
def test_rankdata_properties(values):
    array = np.array(values)
    ranks = _rankdata(array)
    assert ranks.sum() == pytest.approx(len(array) * (len(array) + 1) / 2)
    order = np.argsort(array, kind="stable")
    assert (np.diff(ranks[order]) >= 0).all()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False),
                min_size=3, max_size=50))
def test_spearman_self_correlation(values):
    array = np.array(values)
    if np.unique(array).size < 2:
        return
    assert spearman(array, array) == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(5, 300),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(0, 2**31 - 1),
)
def test_split_partition_property(n, fraction, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    split = stratified_split(labels, fraction, seed=seed)
    assert (split.train_mask ^ split.val_mask).all()
    for value in (0, 1):
        members = labels == value
        if members.sum() >= 2:
            assert split.val_mask[members].sum() >= 1
            assert split.train_mask[members].sum() >= 1


@SLOW
@given(st.integers(0, 1000), st.integers(2, 5))
def test_algorithm1_score_bounds(seed, n_workloads):
    netlist = random_netlist(n_inputs=4, n_gates=15, n_flops=2,
                             n_outputs=3, seed=seed)
    workloads = [
        random_workload(netlist, cycles=15, seed=(seed, index),
                        reset_input="in_0")
        for index in range(n_workloads)
    ]
    campaign = run_campaign(netlist, workloads)
    dataset = dataset_from_campaign(campaign)
    assert dataset.scores.min() >= 0.0
    assert dataset.scores.max() <= 1.0
    assert ((dataset.scores >= 0.5) == dataset.labels.astype(bool)).all()
    literal = generate_dataset(campaign.reports())
    assert np.allclose(dataset.scores, literal.scores)
