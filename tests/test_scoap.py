"""Tests for SCOAP testability measures."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.features import compute_scoap
from repro.features.scoap import INFINITE


def test_and_gate_textbook_values():
    """Classic SCOAP: AND output CC1 = CC1(a)+CC1(b)+1, CC0 =
    min(CC0(a),CC0(b))+1; input CO = CO(out)+CC1(other)+1."""
    builder = CircuitBuilder("scoap_and")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.and_(a, b)
    builder.output(y, "y")
    measures = compute_scoap(builder.netlist)
    assert measures.net_cc1[y] == 1 + 1 + 1
    assert measures.net_cc0[y] == 1 + 1
    assert measures.net_co[y] == 0
    assert measures.net_co[a] == 0 + 1 + 1  # sensitize: b=1
    assert measures.net_co[b] == 2


def test_or_gate_values():
    builder = CircuitBuilder("scoap_or")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.or_(a, b)
    builder.output(y, "y")
    measures = compute_scoap(builder.netlist)
    assert measures.net_cc0[y] == 3  # both inputs at 0
    assert measures.net_cc1[y] == 2  # either input at 1


def test_xor_gate_values():
    builder = CircuitBuilder("scoap_xor")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.xor(a, b)
    builder.output(y, "y")
    measures = compute_scoap(builder.netlist)
    # XOR: either polarity needs one specific assignment of both inputs.
    assert measures.net_cc0[y] == 3
    assert measures.net_cc1[y] == 3
    # XOR inputs are always sensitized: CO = CO(out) + cost(other) + 1.
    assert measures.net_co[a] == 2


def test_inverter_chain_accumulates():
    builder = CircuitBuilder("scoap_chain")
    a = builder.input("a")
    n1 = builder.not_(a)
    n2 = builder.not_(n1)
    builder.output(n2, "y")
    measures = compute_scoap(builder.netlist)
    assert measures.net_cc1[n1] == 2   # a=0 costs 1, +1
    assert measures.net_cc1[n2] == 3
    assert measures.net_co[a] == 2     # two inversions to the PO
    assert measures.net_co[n1] == 1


def test_deep_logic_is_harder():
    """CC grows monotonically with AND-tree depth."""
    builder = CircuitBuilder("scoap_tree")
    leaves = [builder.input(f"i{k}") for k in range(8)]
    level1 = [builder.and_(leaves[2 * k], leaves[2 * k + 1])
              for k in range(4)]
    level2 = [builder.and_(level1[0], level1[1]),
              builder.and_(level1[2], level1[3])]
    root = builder.and_(level2[0], level2[1])
    builder.output(root, "y")
    measures = compute_scoap(builder.netlist)
    assert (measures.net_cc1[root] > measures.net_cc1[level2[0]]
            > measures.net_cc1[level1[0]])


def test_full_scan_convention(icfsm):
    measures = compute_scoap(icfsm)
    for gate in icfsm.sequential_gates():
        assert measures.net_cc0[gate.output] == 1
        assert measures.net_cc1[gate.output] == 1
        # D pins observable under full scan.
        assert measures.net_co[gate.inputs[0]] == 0


def test_designs_have_finite_measures(all_designs):
    for design in all_designs:
        measures = compute_scoap(design)
        # Every gate is controllable to at least one value (TIE cells
        # are structurally uncontrollable to the other) and observable
        # under full scan.
        easiest = np.minimum(measures.gate_cc0, measures.gate_cc1)
        assert easiest.max() < INFINITE
        # A handful of gates may be structurally unobservable (logic
        # masked by tie cells, e.g. the zero-word branch of an address
        # mux) — SCOAP correctly flags them as untestable sites.
        unobservable = (measures.gate_co >= INFINITE).sum()
        assert unobservable <= 0.01 * design.n_gates + 1
        assert measures.gate_testability.min() >= 1


def test_mux_select_controllability():
    builder = CircuitBuilder("scoap_mux")
    a = builder.input("a")
    b = builder.input("b")
    select = builder.input("s")
    y = builder.mux(select, a, b)
    builder.output(y, "y")
    measures = compute_scoap(builder.netlist)
    # Output 1 through either branch: data=1 plus matching select.
    assert measures.net_cc1[y] == 3
    assert measures.net_cc0[y] == 3
