"""Property-based correctness tests for synthesis and transforms:

* one-hot and binary encodings of random FSMs are behaviourally
  equivalent;
* TMR hardening of arbitrary nodes preserves fault-free behaviour;
* the optimizer preserves behaviour on random netlists (which are rich
  in dead logic and constant cones — the hard cases).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitBuilder, FsmSpec, random_netlist, synthesize_fsm
from repro.netlist import check_equivalence, harden_nodes
from repro.netlist.optimize import optimize_netlist
from repro.sim import Simulator

SLOW = settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# random FSM specs
# ----------------------------------------------------------------------
def build_random_fsm(n_states, n_inputs, transition_seed, encoding):
    """Synthesize a random-but-valid FSM under the given encoding."""
    rng = np.random.default_rng(transition_seed)
    states = [f"S{i}" for i in range(n_states)]
    input_names = [f"i{k}" for k in range(n_inputs)]

    def random_guard():
        terms = []
        for name in input_names:
            roll = rng.integers(3)
            if roll == 0:
                terms.append(name)
            elif roll == 1:
                terms.append(f"~{name}")
        if not terms:
            terms.append(input_names[int(rng.integers(n_inputs))])
        connector = " & " if rng.random() < 0.5 else " | "
        return connector.join(terms)

    spec = FsmSpec("rand", states=states, reset_state=states[0])
    for source in states:
        n_outgoing = int(rng.integers(0, 3))
        for _ in range(n_outgoing):
            destination = states[int(rng.integers(n_states))]
            spec.transition(source, destination, when=random_guard())
        if rng.random() < 0.4:
            spec.transition(source,
                            states[int(rng.integers(n_states))])
    spec.moore_output(
        "flag", states=[s for i, s in enumerate(states) if i % 2 == 0]
    )

    builder = CircuitBuilder(f"fsm_{encoding}")
    reset = builder.input("rst")
    inputs = {name: builder.input(name) for name in input_names}
    fsm = synthesize_fsm(spec, builder, inputs=inputs, reset=reset,
                         encoding=encoding)
    for state, net in fsm.state_bits.items():
        builder.output(net, f"in_{state}")
    builder.output(fsm.outputs["flag"], "flag")
    return builder.netlist


@SLOW
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
def test_fsm_encodings_equivalent_property(n_states, n_inputs,
                                           transition_seed):
    one_hot = build_random_fsm(n_states, n_inputs, transition_seed,
                               "one-hot")
    binary = build_random_fsm(n_states, n_inputs, transition_seed,
                              "binary")
    result = check_equivalence(one_hot, binary, workloads=3, cycles=40,
                               reset_input="rst")
    assert result.equivalent, result.counterexample.describe()


# ----------------------------------------------------------------------
# TMR hardening
# ----------------------------------------------------------------------
@SLOW
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=5),
)
def test_hardening_random_nodes_preserves_behaviour(seed, n_targets):
    netlist = random_netlist(n_inputs=5, n_gates=35, n_flops=4,
                             n_outputs=4, seed=seed)
    rng = np.random.default_rng(seed)
    names = netlist.node_names()
    chosen = list(rng.choice(
        names, size=min(n_targets, len(names)), replace=False
    ))
    hardened = harden_nodes(netlist, chosen)
    result = check_equivalence(netlist, hardened, workloads=3,
                               cycles=30, reset_input="in_0")
    assert result.equivalent, result.counterexample.describe()


# ----------------------------------------------------------------------
# optimizer
# ----------------------------------------------------------------------
@SLOW
@given(st.integers(min_value=0, max_value=10_000))
def test_optimizer_preserves_behaviour_property(seed):
    netlist = random_netlist(n_inputs=5, n_gates=45, n_flops=5,
                             n_outputs=4, seed=seed)
    optimized, report = optimize_netlist(netlist)
    assert report.gates_after <= report.gates_before
    result = check_equivalence(netlist, optimized, workloads=3,
                               cycles=30, reset_input="in_0")
    assert result.equivalent, result.counterexample.describe()
