"""Tests for report rendering and shared utilities."""

import numpy as np
import pytest

from repro.metrics import roc_curve
from repro.reporting import bar_chart, grouped_bar_chart, render_table, roc_ascii
from repro.utils import SeedSequence, Stopwatch, derive_rng, rng_from_seed


class TestTables:
    def test_render_basic(self):
        rows = [{"design": "sdram", "acc": 0.9},
                {"design": "if", "acc": 0.94}]
        text = render_table(rows, title="Results")
        assert "Results" in text
        assert "sdram" in text and "0.94" in text
        # header + separator + 2 rows + borders
        assert text.count("\n") >= 5

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_render_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[1]


class TestCharts:
    def test_bar_chart(self):
        text = bar_chart({"GCN": 0.9, "MLP": 0.75}, title="Fig3",
                         width=20)
        assert "Fig3" in text and "GCN" in text
        gcn_line = [line for line in text.splitlines() if "GCN" in line][0]
        mlp_line = [line for line in text.splitlines() if "MLP" in line][0]
        assert gcn_line.count("#") > mlp_line.count("#")

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart({})

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart(
            {"sdram": {"GCN": 0.9}, "if": {"GCN": 0.94}}
        )
        assert "sdram:" in text and "if:" in text

    def test_roc_ascii(self):
        y = np.array([0, 1, 0, 1, 1, 0, 1, 0] * 5)
        rng = np.random.default_rng(0)
        curves = {
            "good": roc_curve(y, y + rng.normal(0, 0.3, len(y))),
            "rand": roc_curve(y, rng.random(len(y))),
        }
        text = roc_ascii(curves, title="Fig4")
        assert "Fig4" in text
        assert "AUC=" in text
        assert "> FPR" in text


class TestRng:
    def test_rng_from_seed_types(self):
        assert rng_from_seed(3).integers(10) == rng_from_seed(3).integers(10)
        generator = np.random.default_rng(0)
        assert rng_from_seed(generator) is generator
        tuple_a = rng_from_seed((1, "x")).integers(1000)
        tuple_b = rng_from_seed((1, "x")).integers(1000)
        assert tuple_a == tuple_b

    def test_derive_rng_label_independence(self):
        a = derive_rng(7, "alpha").integers(10_000)
        b = derive_rng(7, "beta").integers(10_000)
        a_again = derive_rng(7, "alpha").integers(10_000)
        assert a == a_again
        assert a != b  # overwhelmingly likely

    def test_seed_sequence_children(self):
        seeds = SeedSequence(11)
        first = seeds.child("w").integers(10_000)
        second = SeedSequence(11).child("w").integers(10_000)
        assert first == second
        streams = list(seeds.children("m", 3))
        values = [stream.integers(10_000) for stream in streams]
        assert len(set(values)) == 3


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch:
        sum(range(1000))
    first = watch.elapsed
    with watch:
        sum(range(1000))
    assert watch.elapsed > first
    watch.reset()
    assert watch.elapsed == 0.0
