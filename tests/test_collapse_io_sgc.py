"""Tests for fault collapsing, persistence, and the SGC model."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.fi import (
    collapse_faults,
    dataset_from_campaign,
    expand_results,
    full_fault_universe,
    run_campaign,
    run_transient_campaign,
)
from repro.graph import stratified_split
from repro.io import (
    load_campaign,
    load_dataset,
    load_gcn,
    load_split,
    save_campaign,
    save_dataset,
    save_gcn,
    save_split,
)
from repro.models import GCNClassifier, GCNRegressor
from repro.models.sgc import SGCClassifier
from repro.sim import design_workloads, random_workload
from repro.utils.errors import ModelError, ReproError


# ----------------------------------------------------------------------
# fault collapsing
# ----------------------------------------------------------------------
class TestCollapse:
    def buffered_chain(self):
        """inv -> buf -> buf -> PO: all four faults collapse to two
        classes (one per polarity)."""
        builder = CircuitBuilder("chain")
        a = builder.input("a")
        inverted = builder.not_(a)
        buffered = builder.buf(builder.buf(inverted))
        builder.output(buffered, "y")
        return builder.netlist

    def test_chain_collapses(self):
        netlist = self.buffered_chain()
        faults = full_fault_universe(netlist)
        universe = collapse_faults(netlist, faults)
        # 3 gates x 2 faults = 6 faults -> 2 classes (stuck 0/1 at the
        # chain's observable end).
        assert len(universe.original) == 6
        assert len(universe.representatives) == 2
        assert universe.collapse_ratio == pytest.approx(4 / 6)

    def test_fanout_blocks_collapse(self):
        builder = CircuitBuilder("fan")
        a = builder.input("a")
        inverted = builder.not_(a)
        builder.output(builder.buf(inverted), "y0")
        builder.output(builder.buf(inverted), "y1")  # second observer
        netlist = builder.netlist
        universe = collapse_faults(netlist, full_fault_universe(netlist))
        # The inverter's output feeds two buffers: no collapsing there.
        assert len(universe.representatives) == 6

    def test_po_blocks_collapse(self):
        builder = CircuitBuilder("po")
        a = builder.input("a")
        inverted = builder.not_(a)
        builder.output(inverted, "tap")  # observable: cannot collapse
        builder.output(builder.buf(inverted), "y")
        netlist = builder.netlist
        universe = collapse_faults(netlist, full_fault_universe(netlist))
        assert len(universe.representatives) == 4

    def test_expand_results_scatter(self):
        netlist = self.buffered_chain()
        universe = collapse_faults(netlist, full_fault_universe(netlist))
        per_rep = np.array([[10, 20]])
        expanded = expand_results(universe, per_rep)
        assert expanded.shape == (1, 6)
        assert set(expanded[0]) == {10, 20}

    def test_collapsed_campaign_identical(self, icfsm):
        workloads = design_workloads(icfsm.name, icfsm, count=3,
                                     cycles=80, seed=0)
        full = run_campaign(icfsm, workloads)
        collapsed = run_campaign(icfsm, workloads, collapse=True)
        assert np.array_equal(full.error_cycles, collapsed.error_cycles)
        assert np.array_equal(full.detection_cycle,
                              collapsed.detection_cycle)
        assert np.array_equal(full.latent, collapsed.latent)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
class TestPersistence:
    def test_campaign_roundtrip(self, icfsm, tmp_path):
        workloads = design_workloads(icfsm.name, icfsm, count=3,
                                     cycles=60, seed=0)
        campaign = run_campaign(icfsm, workloads)
        path = tmp_path / "campaign.npz"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert loaded.netlist_name == campaign.netlist_name
        assert loaded.workload_names == campaign.workload_names
        assert loaded.severity == campaign.severity
        assert np.array_equal(loaded.error_cycles, campaign.error_cycles)
        assert np.array_equal(loaded.latent, campaign.latent)
        assert [f.name for f in loaded.faults] == [
            f.name for f in campaign.faults
        ]
        # The derived dataset is identical.
        a = dataset_from_campaign(campaign)
        b = dataset_from_campaign(loaded)
        assert np.allclose(a.scores, b.scores)

    def test_transient_campaign_roundtrip(self, icfsm, tmp_path):
        workloads = design_workloads(icfsm.name, icfsm, count=2,
                                     cycles=80, seed=0)
        campaign = run_transient_campaign(icfsm, workloads,
                                          injections_per_flop=3, seed=1)
        path = tmp_path / "seu.npz"
        save_campaign(campaign, path)
        loaded = load_campaign(path)
        assert [f.name for f in loaded.faults] == [
            f.name for f in campaign.faults
        ]
        assert np.array_equal(loaded.error_cycles, campaign.error_cycles)

    def test_corrupt_campaign_archive_rejected(self, tmp_path):
        from repro.utils.errors import SerializationError

        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive")
        with pytest.raises(SerializationError, match="corrupt"):
            load_campaign(garbage)
        assert issubclass(SerializationError, ReproError)

    def test_truncated_campaign_archive_rejected(self, icfsm,
                                                 tmp_path):
        workloads = design_workloads(icfsm.name, icfsm, count=2,
                                     cycles=60, seed=0)
        campaign = run_campaign(icfsm, workloads)
        path = tmp_path / "campaign.npz"
        save_campaign(campaign, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ReproError):
            load_campaign(path)

    def test_inconsistent_campaign_shapes_rejected(self, icfsm,
                                                   tmp_path):
        """Tampered archive: error matrix dropped a workload row."""
        workloads = design_workloads(icfsm.name, icfsm, count=3,
                                     cycles=60, seed=0)
        campaign = run_campaign(icfsm, workloads)
        path = tmp_path / "campaign.npz"
        campaign.error_cycles = campaign.error_cycles[:2]
        save_campaign(campaign, path)
        with pytest.raises(ReproError, match="shape"):
            load_campaign(path)

    def test_corrupt_dataset_json_rejected(self, tmp_path):
        path = tmp_path / "dataset.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_dataset(path)

    def test_dataset_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "dataset.json"
        path.write_text('{"design": "x"}', encoding="utf-8")
        with pytest.raises(ReproError, match="missing"):
            load_dataset(path)

    def test_dataset_malformed_node_rejected(self, tmp_path):
        import json

        path = tmp_path / "dataset.json"
        path.write_text(json.dumps({
            "design": "x", "threshold": 0.5, "n_workloads": 1,
            "nodes": [{"name": "a"}],
        }), encoding="utf-8")
        with pytest.raises(ReproError, match="node row 0"):
            load_dataset(path)

    def test_dataset_roundtrip(self, icfsm_analyzer, tmp_path):
        dataset = icfsm_analyzer.dataset
        path = tmp_path / "dataset.json"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.design == dataset.design
        assert loaded.node_names == dataset.node_names
        assert np.allclose(loaded.scores, dataset.scores)
        assert np.array_equal(loaded.labels, dataset.labels)

    def test_gcn_roundtrip(self, icfsm_analyzer, tmp_path):
        classifier = icfsm_analyzer.classifier
        path = tmp_path / "gcn.npz"
        save_gcn(classifier, path)
        loaded = load_gcn(path, icfsm_analyzer.data)
        assert np.array_equal(loaded.predict(), classifier.predict())
        assert np.allclose(loaded.predict_proba(),
                           classifier.predict_proba())

    def test_regressor_roundtrip(self, icfsm_analyzer, tmp_path):
        regressor = icfsm_analyzer.regressor
        path = tmp_path / "reg.npz"
        save_gcn(regressor, path)
        loaded = load_gcn(path, icfsm_analyzer.data)
        assert np.allclose(loaded.predict(), regressor.predict())

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_gcn(GCNClassifier(), tmp_path / "x.npz")

    def test_load_gcn_feature_mismatch(self, icfsm_analyzer, tmp_path):
        path = tmp_path / "gcn.npz"
        save_gcn(icfsm_analyzer.classifier, path)
        reduced = icfsm_analyzer.data.subset_features(
            ["Number of connections"]
        )
        with pytest.raises(ReproError, match="shape mismatch"):
            load_gcn(path, reduced)

    def test_split_roundtrip(self, tmp_path):
        labels = np.random.default_rng(0).integers(0, 2, 40)
        split = stratified_split(labels, 0.25, seed=2)
        path = tmp_path / "split.npz"
        save_split(split, path)
        loaded = load_split(path)
        assert np.array_equal(loaded.train_mask, split.train_mask)
        assert np.array_equal(loaded.val_mask, split.val_mask)


# ----------------------------------------------------------------------
# SGC extension model
# ----------------------------------------------------------------------
class TestSGC:
    def test_learns_real_dataset(self, icfsm_analyzer):
        data = icfsm_analyzer.data
        split = icfsm_analyzer.split
        model = SGCClassifier(k=3).fit(data, split)
        accuracy = model.accuracy(split.val_mask)
        assert accuracy >= 0.6
        probabilities = model.predict_proba()
        assert probabilities.shape == (data.n_nodes, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_structure_helps_over_k0_equivalent(self, icfsm_analyzer):
        """SGC with smoothing should not be drastically worse than the
        plain-feature logistic head (it uses strictly more info)."""
        from repro.models import LogisticRegression

        data = icfsm_analyzer.data
        split = icfsm_analyzer.split
        sgc = SGCClassifier(k=2).fit(data, split)
        plain = LogisticRegression().fit(
            data.x[split.train_mask], data.y_class[split.train_mask]
        )
        plain_accuracy = plain.score(data.x[split.val_mask],
                                     data.y_class[split.val_mask])
        assert sgc.accuracy(split.val_mask) >= plain_accuracy - 0.1

    def test_validation(self, icfsm_analyzer):
        with pytest.raises(ModelError):
            SGCClassifier(k=0)
        with pytest.raises(ModelError):
            SGCClassifier().predict()


def test_dataset_roundtrip_preserves_trials(icfsm_analyzer, tmp_path):
    import numpy as np

    dataset = icfsm_analyzer.dataset
    path = tmp_path / "ds.json"
    save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert loaded.trials is not None
    assert np.array_equal(loaded.trials, dataset.trials)
    low_a, high_a = dataset.confidence_intervals()
    low_b, high_b = loaded.confidence_intervals()
    assert np.allclose(low_a, low_b) and np.allclose(high_a, high_b)
