"""Tests for the FSM×datapath grid design generator."""

import numpy as np

from repro.circuits import build_fsm_grid
from repro.netlist import from_verilog, to_verilog, validate
from repro.sim import Simulator, random_workload


def test_grid_validates_and_scales():
    small = build_fsm_grid(2, 2, width=4)
    large = build_fsm_grid(3, 4, width=4)
    validate(small)
    validate(large)
    # Gate count grows with tile count.
    assert large.n_gates > small.n_gates * 2
    assert small.input_names()[0] == "rst"


def test_grid_deterministic_per_seed():
    a = build_fsm_grid(3, 3, width=4, seed=7)
    b = build_fsm_grid(3, 3, width=4, seed=7)
    c = build_fsm_grid(3, 3, width=4, seed=8)
    assert to_verilog(a) == to_verilog(b)
    assert to_verilog(a) != to_verilog(c)


def test_grid_tile_parity_mixes_encodings():
    netlist = build_fsm_grid(2, 2, width=4)
    cells = {gate.cell.name for gate in netlist.gates}
    # Even-parity tiles use enable-held state (DFFE), odd-parity tiles
    # use reset flops (DFFR); both appear in any 2x2 grid.
    assert "DFFE" in cells
    assert "DFFR" in cells


def test_grid_roundtrips_through_verilog():
    netlist = build_fsm_grid(2, 3, width=4, seed=2)
    parsed = from_verilog(to_verilog(netlist))
    validate(parsed)
    assert parsed.n_gates == netlist.n_gates
    assert parsed.n_nets == netlist.n_nets
    assert parsed.input_names() == netlist.input_names()
    assert parsed.output_names() == netlist.output_names()


def test_grid_simulates():
    netlist = build_fsm_grid(2, 2, width=4, seed=1)
    workload = random_workload(netlist, cycles=20, seed=0,
                               reset_input="rst")
    result = Simulator(netlist).run(workload)
    # The datapath must actually toggle: outputs are not constant.
    assert result.outputs.any()


def test_grid_width_parameter():
    narrow = build_fsm_grid(2, 2, width=4)
    wide = build_fsm_grid(2, 2, width=8)
    assert wide.n_gates > narrow.n_gates
    assert f"d0_{7}" in wide.input_names()
    # Degenerate grid: no tiles, just the exported reset.
    empty = build_fsm_grid(0, 0)
    assert empty.n_gates == 0


def test_grid_feature_pipeline():
    from repro.features.extract import extract_features
    from repro.graph.build import netlist_edges

    netlist = build_fsm_grid(2, 2, width=4)
    edges = netlist_edges(netlist)
    assert edges.shape[0] == 2
    assert edges.shape[1] > netlist.n_gates  # connected grid
    features = extract_features(netlist, probability_source="cop")
    assert features.matrix.shape == (netlist.n_gates, 5)
    assert np.isfinite(features.matrix).all()
