"""Unit tests for the netlist data model."""

import pytest

from repro.netlist import Netlist
from repro.utils.errors import NetlistError


def test_basic_construction(tiny_netlist):
    assert tiny_netlist.n_gates == 2
    assert tiny_netlist.n_nets == 4
    assert tiny_netlist.n_inputs == 2
    assert tiny_netlist.n_outputs == 2


def test_node_names(tiny_netlist):
    assert tiny_netlist.node_names() == ["AN2_U1", "IV_U2"]


def test_gate_lookup(tiny_netlist):
    gate = tiny_netlist.gate_by_instance("U1")
    assert gate.cell.name == "AN2"
    gate = tiny_netlist.gate_by_node_name("IV_U2")
    assert gate.instance == "U2"


def test_gate_lookup_errors(tiny_netlist):
    with pytest.raises(NetlistError):
        tiny_netlist.gate_by_instance("U99")
    with pytest.raises(NetlistError):
        tiny_netlist.gate_by_node_name("ND2_U1")  # wrong cell name


def test_net_index(tiny_netlist):
    assert tiny_netlist.net_index("a") == 0
    with pytest.raises(NetlistError):
        tiny_netlist.net_index("zz")


def test_duplicate_net_name():
    netlist = Netlist("d")
    netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_input("a")


def test_duplicate_instance():
    netlist = Netlist("d")
    a = netlist.add_input("a")
    netlist.add_gate("IV", [a], instance="U1")
    with pytest.raises(NetlistError):
        netlist.add_gate("IV", [a], instance="U1")


def test_duplicate_output_port(tiny_netlist):
    with pytest.raises(NetlistError):
        tiny_netlist.add_output(0, "y")


def test_bad_arity():
    netlist = Netlist("d")
    a = netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_gate("AN2", [a])


def test_bad_net_reference():
    netlist = Netlist("d")
    with pytest.raises(NetlistError):
        netlist.add_gate("IV", [5])


def test_levelize_combinational_chain():
    netlist = Netlist("chain")
    a = netlist.add_input("a")
    n1 = netlist.add_gate("IV", [a])
    n2 = netlist.add_gate("IV", [n1])
    n3 = netlist.add_gate("IV", [n2])
    netlist.add_output(n3, "y")
    assert netlist.levelize() == [0, 1, 2]
    assert netlist.depth() == 2


def test_levelize_flop_breaks_level():
    netlist = Netlist("seq")
    a = netlist.add_input("a")
    inv = netlist.add_gate("IV", [a])
    flop = netlist.add_gate("DFF", [inv])
    out = netlist.add_gate("IV", [flop])
    netlist.add_output(out, "y")
    levels = netlist.levelize()
    # Flop outputs behave like primary inputs: both the flop and the
    # gate reading only the flop sit at level 0, while the gate feeding
    # the flop keeps its combinational depth.
    assert levels[netlist.nets[flop].driver] == 0
    assert levels[netlist.nets[out].driver] == 0
    assert levels[netlist.nets[inv].driver] == 0
    assert netlist.depth() == 0


def test_sequential_feedback_is_legal():
    netlist = Netlist("loop")
    a = netlist.add_input("a")
    flop = netlist.add_gate("DFF", [a], instance="R")
    toggle = netlist.add_gate("XOR2", [flop, a])
    netlist.add_output(toggle, "y")
    # Rewire the flop to consume the xor output: a state loop.
    from repro.circuits.fsm import _rewire_input
    from repro.circuits.builder import CircuitBuilder

    shim = CircuitBuilder.__new__(CircuitBuilder)
    shim.netlist = netlist
    _rewire_input(shim, flop, 0, toggle)
    assert netlist.levelize()  # no loop error


def test_combinational_loop_detected():
    netlist = Netlist("comb_loop")
    a = netlist.add_input("a")
    g1 = netlist.add_gate("AN2", [a, a], instance="G1")
    g2 = netlist.add_gate("OR2", [g1, a], instance="G2")
    netlist.add_output(g2, "y")
    # Force a combinational cycle g1 <- g2.
    from repro.circuits.fsm import _rewire_input
    from repro.circuits.builder import CircuitBuilder

    shim = CircuitBuilder.__new__(CircuitBuilder)
    shim.netlist = netlist
    _rewire_input(shim, g1, 1, g2)
    with pytest.raises(NetlistError, match="loop"):
        netlist.levelize()


def test_topological_order_respects_dependencies(small_random_netlist):
    netlist = small_random_netlist
    order = netlist.topological_order()
    position = {gate_index: i for i, gate_index in enumerate(order)}
    for gate in netlist.gates:
        if gate.is_sequential:
            continue
        for net in gate.inputs:
            driver = netlist.nets[net].driver
            if driver is not None and not netlist.gates[driver].is_sequential:
                assert position[driver] < position[gate.index]


def test_fanin_fanout_counts(tiny_netlist):
    and_gate = tiny_netlist.gate_by_instance("U1")
    assert tiny_netlist.fanin_count(and_gate) == 2
    # AND drives the inverter plus the primary output "y".
    assert tiny_netlist.fanout_count(and_gate) == 2
    inv = tiny_netlist.gate_by_instance("U2")
    assert tiny_netlist.fanout_count(inv) == 1  # only the PO


def test_fanout_gates_deduplicated():
    netlist = Netlist("dup")
    a = netlist.add_input("a")
    inv = netlist.add_gate("IV", [a], instance="U1")
    # One sink gate reads the inverter on two ports.
    both = netlist.add_gate("AN2", [inv, inv], instance="U2")
    netlist.add_output(both, "y")
    gate = netlist.gate_by_instance("U1")
    assert netlist.fanout_gates(gate) == [1]
    assert netlist.fanout_count(gate) == 2  # two connections


def test_dffe_feedback_wired_automatically():
    netlist = Netlist("enable")
    d = netlist.add_input("d")
    e = netlist.add_input("e")
    flop = netlist.add_gate("DFFE", [d, e], instance="R")
    netlist.add_output(flop, "q")
    gate = netlist.gate_by_instance("R")
    assert gate.inputs == (d, e, flop)
    # The feedback connection is not counted as fanin/fanout.
    assert netlist.fanin_count(gate) == 2
    assert netlist.fanout_count(gate) == 1


def test_repr(tiny_netlist):
    text = repr(tiny_netlist)
    assert "tiny" in text and "2 gates" in text
