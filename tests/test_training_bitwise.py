"""Bitwise guardrail for the zero-allocation training engine.

The compiled workspace (preallocated buffers, direct sparse kernels,
packed optimizer state, monitor-forward prefix reuse) must reproduce
the historical module-by-module implementation *bitwise*: identical
per-epoch loss/metric histories and identical final weights.  The
ground truth is ``tests/_reference_nn`` — frozen pre-rewrite copies of
``modules``/``optim``/``training``/``gridsearch`` (see that package's
docstring) — exercised here on built-in designs and randomized
circuits, for both optimizers, with and without dropout, for the
regressor, and through serial and pooled grid search.
"""

import numpy as np
import pytest

from repro.circuits import build_or1200_icfsm, build_or1200_if, random_netlist
from repro.features.extract import extract_features
from repro.graph.adjacency import normalized_adjacency
from repro.graph.build import netlist_edges
from repro.models.gcn import DROPOUT_AFTER_LAYER, build_gcn_stack
from repro.nn import TrainingConfig, train_classifier, train_regressor
from repro.nn.gridsearch import grid_search
from repro.utils.rng import derive_rng

from tests._reference_nn import ref_modules as rm
from tests._reference_nn.ref_gridsearch import grid_search as ref_grid_search
from tests._reference_nn.ref_training import (
    TrainingConfig as RefConfig,
    train_classifier as ref_train_classifier,
    train_regressor as ref_train_regressor,
)


# ----------------------------------------------------------------------
# designs under test
# ----------------------------------------------------------------------
def _graph_case(netlist):
    """(x, a_norm, labels, regression targets, train/val masks)."""
    features = extract_features(netlist, probability_source="cop")
    x = features.standardized().matrix
    n = netlist.n_gates
    a_norm = normalized_adjacency(netlist_edges(netlist), n)
    rng = np.random.default_rng(7)
    y = (rng.random(n) < 0.25).astype(np.int64)
    y_reg = rng.normal(size=n)
    train_mask = rng.random(n) < 0.7
    val_mask = ~train_mask
    if not val_mask.any():
        val_mask[:2] = True
    return x, a_norm, y, y_reg, train_mask, val_mask


CASES = {
    "or1200_if": lambda: _graph_case(build_or1200_if()),
    "icfsm": lambda: _graph_case(build_or1200_icfsm()),
    "rand_1": lambda: _graph_case(
        random_netlist(n_inputs=5, n_gates=60, n_flops=6, n_outputs=4,
                       seed=1, name="rand_1")),
    "rand_2": lambda: _graph_case(
        random_netlist(n_inputs=5, n_gates=60, n_flops=6, n_outputs=4,
                       seed=2, name="rand_2")),
}


@pytest.fixture(scope="module", params=sorted(CASES))
def case(request):
    return CASES[request.param]()


def ref_stack(in_features, out_features, a_norm, hidden_dims=(16, 32, 64),
              dropout=0.3, log_softmax=True, seed=0):
    """``build_gcn_stack`` mirrored onto the frozen reference modules."""
    rng = derive_rng(seed, "gcn-init")
    modules = []
    previous = in_features
    for position, width in enumerate(hidden_dims):
        modules.append(rm.GCNConv(previous, width, a_norm, seed=rng))
        modules.append(rm.ReLU())
        if dropout > 0.0 and position + 1 == DROPOUT_AFTER_LAYER:
            modules.append(rm.Dropout(dropout, seed=rng))
        previous = width
    modules.append(rm.GCNConv(previous, out_features, a_norm, seed=rng))
    if log_softmax:
        modules.append(rm.LogSoftmax())
    return rm.Sequential(*modules)


def assert_identical_runs(history, ref_history, model, ref_model):
    """Histories and final weights must match bit for bit."""
    assert history.train_loss == ref_history.train_loss
    assert history.val_metric == ref_history.val_metric
    assert history.best_epoch == ref_history.best_epoch
    assert history.best_val_metric == ref_history.best_val_metric
    for parameter, reference in zip(model.parameters(),
                                    ref_model.parameters()):
        assert np.array_equal(parameter.value, reference.value)


# ----------------------------------------------------------------------
# classifier / regressor training
# ----------------------------------------------------------------------
@pytest.mark.parametrize("optimizer", ["adam", "sgd"])
def test_classifier_bitwise(case, optimizer):
    x, a_norm, y, _, train_mask, val_mask = case
    model = build_gcn_stack(x.shape[1], 2, a_norm)
    reference = ref_stack(x.shape[1], 2, a_norm)
    history = train_classifier(
        model, x, y, train_mask, val_mask,
        TrainingConfig(epochs=150, optimizer=optimizer))
    ref_history = ref_train_classifier(
        reference, x, y, train_mask, val_mask,
        RefConfig(epochs=150, optimizer=optimizer))
    assert_identical_runs(history, ref_history, model, reference)


def test_classifier_no_dropout_bitwise(case):
    x, a_norm, y, _, train_mask, val_mask = case
    model = build_gcn_stack(x.shape[1], 2, a_norm, dropout=0.0)
    reference = ref_stack(x.shape[1], 2, a_norm, dropout=0.0)
    history = train_classifier(model, x, y, train_mask, val_mask,
                               TrainingConfig(epochs=100))
    ref_history = ref_train_classifier(reference, x, y, train_mask,
                                       val_mask, RefConfig(epochs=100))
    assert_identical_runs(history, ref_history, model, reference)


def test_regressor_bitwise(case):
    x, a_norm, _, y_reg, train_mask, val_mask = case
    model = build_gcn_stack(x.shape[1], 1, a_norm, log_softmax=False)
    reference = ref_stack(x.shape[1], 1, a_norm, log_softmax=False)
    history = train_regressor(model, x, y_reg, train_mask, val_mask,
                              TrainingConfig(epochs=150))
    ref_history = ref_train_regressor(reference, x, y_reg, train_mask,
                                      val_mask, RefConfig(epochs=150))
    assert_identical_runs(history, ref_history, model, reference)


def test_module_engine_forced_path_bitwise(case):
    """engine="module" (the fallback path) must equal the reference
    too — it is the same algorithm, run through the live modules."""
    x, a_norm, y, _, train_mask, val_mask = case
    model = build_gcn_stack(x.shape[1], 2, a_norm)
    reference = ref_stack(x.shape[1], 2, a_norm)
    history = train_classifier(
        model, x, y, train_mask, val_mask,
        TrainingConfig(epochs=80, engine="module"))
    ref_history = ref_train_classifier(
        reference, x, y, train_mask, val_mask, RefConfig(epochs=80))
    assert_identical_runs(history, ref_history, model, reference)


# ----------------------------------------------------------------------
# grid search
# ----------------------------------------------------------------------
GRID_OPTIONS = dict(hidden_dim_options=((16,), (16, 32)),
                    dropout_options=(0.0, 0.3), epochs=60)


def _grid_pair(case, jobs):
    x, a_norm, y, _, train_mask, val_mask = case

    def builder(hidden_dims, dropout, seed):
        return build_gcn_stack(x.shape[1], 2, a_norm,
                               hidden_dims=hidden_dims,
                               dropout=dropout, seed=seed)

    def ref_builder(hidden_dims, dropout, seed):
        return ref_stack(x.shape[1], 2, a_norm,
                         hidden_dims=hidden_dims, dropout=dropout,
                         seed=seed)

    result = grid_search(builder, x, y, train_mask, val_mask,
                         jobs=jobs, **GRID_OPTIONS)
    reference = ref_grid_search(ref_builder, x, y, train_mask,
                                val_mask, **GRID_OPTIONS)
    return result, reference


@pytest.mark.parametrize("jobs", [1, 2])
def test_grid_search_bitwise(case, jobs):
    """Serial and pooled grid search must rank candidates identically
    to the frozen reference — same order, same accuracies, same best
    epochs, bit for bit."""
    result, reference = _grid_pair(case, jobs)
    assert len(result.points) == len(reference.points)
    for point, ref_point in zip(result.points, reference.points):
        assert point.hidden_dims == ref_point.hidden_dims
        assert point.dropout == ref_point.dropout
        assert point.lr == ref_point.lr
        assert point.val_accuracy == ref_point.val_accuracy
        assert point.best_epoch == ref_point.best_epoch
