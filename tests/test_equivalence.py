"""Tests for the simulation-based equivalence checker."""

import pytest

from repro.circuits import CircuitBuilder
from repro.netlist import harden_nodes
from repro.netlist.equivalence import check_equivalence
from repro.netlist.verilog import from_verilog, to_verilog
from repro.utils.errors import NetlistError


def make_adder(name, broken=False):
    builder = CircuitBuilder(name)
    reset = builder.input("reset")
    a = builder.input_bus("a", 4)
    b = builder.input_bus("b", 4)
    total, carry = builder.add(a, b)
    registered = builder.register(total, reset=reset)
    builder.output_bus(registered, "s")
    if broken:
        # Subtle bug: carry-out computed from the wrong operand bit.
        carry = builder.and_(a[3], a[2])
    builder.output(carry, "c")
    return builder.netlist


def test_identical_designs_equivalent():
    result = check_equivalence(make_adder("x"), make_adder("y"),
                               workloads=4, cycles=40)
    assert result.equivalent
    assert result.workloads_run == 4


def test_verilog_roundtrip_equivalent(icfsm):
    parsed = from_verilog(to_verilog(icfsm))
    result = check_equivalence(icfsm, parsed, workloads=3, cycles=60)
    assert result.equivalent


def test_hardened_design_equivalent(icfsm):
    protected = harden_nodes(icfsm, icfsm.node_names()[:5])
    result = check_equivalence(icfsm, protected, workloads=3, cycles=60)
    assert result.equivalent


def test_broken_design_detected_with_counterexample():
    result = check_equivalence(make_adder("good"),
                               make_adder("bad", broken=True),
                               workloads=6, cycles=40)
    assert not result.equivalent
    cex = result.counterexample
    assert cex.output == "c"
    assert cex.value_a != cex.value_b
    assert "differs at cycle" in cex.describe()


def test_interface_mismatch_rejected(tiny_netlist, icfsm):
    with pytest.raises(NetlistError, match="inputs"):
        check_equivalence(tiny_netlist, icfsm)


def test_output_mismatch_rejected():
    a = make_adder("a")
    builder = CircuitBuilder("b")
    reset = builder.input("reset")
    x = builder.input_bus("a", 4)
    y = builder.input_bus("b", 4)
    total, carry = builder.add(x, y)
    builder.output_bus(builder.register(total, reset=reset), "sum")
    builder.output(carry, "c")
    with pytest.raises(NetlistError, match="outputs"):
        check_equivalence(a, builder.netlist)


def test_input_order_independence():
    """Designs with the same inputs declared in different orders
    compare correctly (columns are remapped by name)."""
    def build(order_swapped):
        builder = CircuitBuilder("o")
        if order_swapped:
            b = builder.input("b")
            a = builder.input("a")
            reset = builder.input("reset")
        else:
            reset = builder.input("reset")
            a = builder.input("a")
            b = builder.input("b")
        flop = builder.dffr(builder.and_(a, b), reset)
        builder.output(flop, "y")
        return builder.netlist

    result = check_equivalence(build(False), build(True),
                               workloads=4, cycles=30)
    assert result.equivalent
