"""Tests for the FSM synthesizer and its guard-expression language."""

import pytest

from repro.circuits import CircuitBuilder, FsmSpec, parse_guard, synthesize_fsm
from repro.netlist import validate
from repro.sim import Simulator
from repro.utils.errors import NetlistError


def make_traffic_fsm(encoding):
    """A 3-state rotary FSM with guarded and default transitions."""
    builder = CircuitBuilder(f"traffic_{encoding}")
    reset = builder.input("rst")
    go = builder.input("go")
    halt = builder.input("halt")
    spec = FsmSpec("traffic", states=["RED", "GREEN", "YELLOW"],
                   reset_state="RED")
    spec.transition("RED", "GREEN", when="go & ~halt")
    spec.transition("GREEN", "YELLOW", when="halt")
    spec.transition("YELLOW", "RED")  # unconditional default
    spec.moore_output("stop", states=["RED", "YELLOW"])
    spec.mealy_output("launch", [("RED", "go & ~halt")])
    fsm = synthesize_fsm(spec, builder,
                         inputs={"go": go, "halt": halt},
                         reset=reset, encoding=encoding)
    for state, net in fsm.state_bits.items():
        builder.output(net, f"in_{state}")
    builder.output(fsm.outputs["stop"], "stop")
    builder.output(fsm.outputs["launch"], "launch")
    validate(builder.netlist)
    return builder.netlist


@pytest.mark.parametrize("encoding", ["one-hot", "binary"])
def test_fsm_walkthrough(encoding):
    netlist = make_traffic_fsm(encoding)
    sim = Simulator(netlist)
    out = sim.step({"rst": 1})
    out = sim.step({"rst": 0})
    assert out["in_RED"] == 1 and out["stop"] == 1
    # go & halt -> stays RED (guard requires ~halt)
    out = sim.step({"go": 1, "halt": 1})
    assert out["in_RED"] == 1
    # launch is a Mealy pulse on the transition condition
    out = sim.step({"go": 1, "halt": 0})
    assert out["in_RED"] == 1 and out["launch"] == 1
    out = sim.step({"go": 0, "halt": 0})
    assert out["in_GREEN"] == 1 and out["stop"] == 0
    # GREEN holds until halt
    out = sim.step({"go": 0, "halt": 0})
    assert out["in_GREEN"] == 1
    out = sim.step({"halt": 1})
    assert out["in_GREEN"] == 1
    out = sim.step({"halt": 0})
    assert out["in_YELLOW"] == 1 and out["stop"] == 1
    # YELLOW -> RED unconditionally on the next cycle
    out = sim.step({})
    assert out["in_RED"] == 1


@pytest.mark.parametrize("encoding", ["one-hot", "binary"])
def test_fsm_exactly_one_state_active(encoding):
    netlist = make_traffic_fsm(encoding)
    sim = Simulator(netlist)
    sim.step({"rst": 1})
    import numpy as np

    rng = np.random.default_rng(3)
    for _ in range(50):
        out = sim.step({"go": int(rng.integers(2)),
                        "halt": int(rng.integers(2)), "rst": 0})
        active = out["in_RED"] + out["in_GREEN"] + out["in_YELLOW"]
        assert active == 1


def test_fsm_encodings_equivalent():
    a = make_traffic_fsm("one-hot")
    b = make_traffic_fsm("binary")
    import numpy as np

    sim_a, sim_b = Simulator(a), Simulator(b)
    sim_a.step({"rst": 1}); sim_b.step({"rst": 1})
    rng = np.random.default_rng(9)
    for _ in range(80):
        row = {"go": int(rng.integers(2)), "halt": int(rng.integers(2)),
               "rst": int(rng.random() < 0.05)}
        out_a, out_b = sim_a.step(row), sim_b.step(row)
        assert out_a == out_b


def test_guard_priority_is_declaration_order():
    """Overlapping guards resolve like an if/else-if chain."""
    builder = CircuitBuilder("prio")
    reset = builder.input("rst")
    x = builder.input("x")
    spec = FsmSpec("p", states=["A", "B", "C"], reset_state="A")
    spec.transition("A", "B", when="x")
    spec.transition("A", "C", when="x")  # shadowed by the first guard
    fsm = synthesize_fsm(spec, builder, inputs={"x": x}, reset=reset)
    for state, net in fsm.state_bits.items():
        builder.output(net, f"in_{state}")
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    sim.step({"rst": 0})
    out = sim.step({"x": 1})
    out = sim.step({"x": 0})
    assert out["in_B"] == 1 and out["in_C"] == 0


def test_guard_parser_expressions():
    builder = CircuitBuilder("expr")
    signals = {name: builder.input(name) for name in ("p", "q", "r")}
    net = parse_guard("~(p & q) | r", builder, signals)
    builder.output(net, "y")
    sim = Simulator(builder.netlist)
    for bits in range(8):
        p, q, r = (bits >> 0) & 1, (bits >> 1) & 1, (bits >> 2) & 1
        observed = sim.step({"p": p, "q": q, "r": r})
        assert observed["y"] == int((not (p and q)) or r)


def test_guard_parser_errors():
    builder = CircuitBuilder("bad")
    signals = {"a": builder.input("a")}
    with pytest.raises(NetlistError, match="unknown signal"):
        parse_guard("a & zz", builder, signals)
    with pytest.raises(NetlistError, match="unexpected end"):
        parse_guard("(a", builder, signals)
    with pytest.raises(NetlistError, match="missing '\\)'"):
        parse_guard("(a b", builder, signals)
    with pytest.raises(NetlistError, match="unexpected end"):
        parse_guard("a &", builder, signals)
    with pytest.raises(NetlistError, match="trailing"):
        parse_guard("a )", builder, signals)


def test_spec_validation():
    with pytest.raises(NetlistError, match="duplicate state"):
        FsmSpec("d", states=["A", "A"], reset_state="A")
    with pytest.raises(NetlistError, match="reset state"):
        FsmSpec("d", states=["A"], reset_state="B")
    spec = FsmSpec("d", states=["A", "B"], reset_state="A")
    with pytest.raises(NetlistError, match="unknown state"):
        spec.transition("A", "Z")
    spec.transition("A", "B")
    with pytest.raises(NetlistError, match="default"):
        spec.transition("A", "B")  # second default


def test_unknown_encoding_rejected():
    builder = CircuitBuilder("enc")
    reset = builder.input("rst")
    spec = FsmSpec("e", states=["A", "B"], reset_state="A")
    spec.transition("A", "B", when="x")
    with pytest.raises(NetlistError, match="encoding"):
        synthesize_fsm(spec, builder, inputs={"x": builder.input("x")},
                       reset=reset, encoding="gray")


def test_unreachable_state_synthesizes():
    """A state no transition targets is legal: its flop pins to 0 and
    its indicator goes (and stays) inactive after reset."""
    builder = CircuitBuilder("unreach")
    reset = builder.input("rst")
    go = builder.input("go")
    spec = FsmSpec("u", states=["A", "B", "ORPHAN"], reset_state="A")
    spec.transition("A", "B", when="go")
    spec.transition("B", "A", when="~go")
    # ORPHAN is never a destination.
    fsm = synthesize_fsm(spec, builder, inputs={"go": go}, reset=reset)
    for state, net in fsm.state_bits.items():
        builder.output(net, f"in_{state}")
    validate(builder.netlist)
    sim = Simulator(builder.netlist)
    sim.step({"rst": 1})
    for value in (0, 1, 1, 0, 1):
        out = sim.step({"rst": 0, "go": value})
        assert out["in_ORPHAN"] == 0
        assert out["in_A"] + out["in_B"] == 1
