"""Tests for selective TMR hardening."""

import numpy as np
import pytest

from repro.fi import dataset_from_campaign, faults_for_nodes, run_campaign
from repro.netlist import validate
from repro.netlist.transform import harden_nodes, hardened_node_names
from repro.sim import BitParallelSimulator, Simulator, random_workload


def test_hardening_preserves_behaviour(icfsm):
    targets = [icfsm.node_names()[i] for i in (5, 20, 40)]
    hardened = harden_nodes(icfsm, targets)
    validate(hardened)
    assert hardened.n_gates == icfsm.n_gates + 3 * 6  # 2 replicas + 4 voter gates per node
    workload = random_workload(icfsm, cycles=60, seed=3)
    original = Simulator(icfsm).run(workload).outputs
    protected = Simulator(hardened).run(workload).outputs
    assert np.array_equal(original, protected)


def test_hardening_is_non_destructive(icfsm):
    before = icfsm.n_gates
    harden_nodes(icfsm, [icfsm.node_names()[0]])
    assert icfsm.n_gates == before


def test_single_fault_on_replica_is_masked(icfsm):
    """A stuck-at on the hardened gate's own output is outvoted."""
    workload = random_workload(icfsm, cycles=80, seed=1)

    # Pick a node whose faults are actually observed under this
    # workload, so masking is demonstrable.
    plain_engine = BitParallelSimulator(icfsm)
    target = None
    for candidate in icfsm.node_names()[5:60]:
        plain_faults = faults_for_nodes(icfsm, [candidate])
        plain_errors, _, _ = plain_engine.run_fault_pass(
            workload,
            np.array([fault.net_index for fault in plain_faults]),
            np.array([fault.stuck_at for fault in plain_faults]),
        )
        if plain_errors.min() > 0:  # both polarities observable
            target = candidate
            break
    assert target is not None, "no observable node found"

    hardened = harden_nodes(icfsm, [target])
    faults = faults_for_nodes(hardened, [target])
    engine = BitParallelSimulator(hardened)
    error_cycles, detection, latent = engine.run_fault_pass(
        workload,
        np.array([fault.net_index for fault in faults]),
        np.array([fault.stuck_at for fault in faults]),
    )
    assert (error_cycles == 0).all()


def test_hardening_flops_preserves_behaviour(icfsm):
    flop_nodes = [gate.node_name
                  for gate in icfsm.sequential_gates()[:4]]
    hardened = harden_nodes(icfsm, flop_nodes)
    validate(hardened)
    workload = random_workload(icfsm, cycles=60, seed=7)
    original = Simulator(icfsm).run(workload).outputs
    protected = Simulator(hardened).run(workload).outputs
    assert np.array_equal(original, protected)


def test_hardened_node_names_reported(icfsm):
    target = icfsm.node_names()[3]
    hardened = harden_nodes(icfsm, [target])
    added = hardened_node_names(icfsm, hardened)
    assert len(added) == 6
    assert all("tmr_" in name for name in added)


def test_hardening_reduces_design_failure_probability(icfsm):
    """Closing the loop: hardening the measured-most-critical nodes
    lowers the design's expected failure rate under a random fault."""
    from repro.sim import design_workloads

    workloads = design_workloads(icfsm.name, icfsm, count=6,
                                 cycles=120, seed=0)
    baseline = run_campaign(icfsm, workloads)
    baseline_dataset = dataset_from_campaign(baseline)
    order = np.argsort(-baseline_dataset.scores)
    worst = [baseline_dataset.node_names[i] for i in order[:12]]

    hardened = harden_nodes(icfsm, worst)
    protected = run_campaign(hardened, workloads)
    protected_dataset = dataset_from_campaign(protected)

    # Expected failures per uniformly-random single fault.
    assert protected_dataset.scores.mean() < (
        baseline_dataset.scores.mean()
    )
    # The hardened nodes themselves became benign.
    for name in worst:
        assert protected_dataset.score_of(name) <= (
            baseline_dataset.score_of(name)
        )
