"""Additional property-based tests: cell probability semantics, SCOAP
bounds, workload generators, collapsing, and persistence."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import random_netlist
from repro.features import compute_scoap
from repro.features.scoap import INFINITE
from repro.fi import collapse_faults, full_fault_universe
from repro.netlist.cells import LIBRARY
from repro.sim import random_workload

SLOW = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

COMBINATIONAL = sorted(
    name for name, cell in LIBRARY.items()
    if not cell.sequential and cell.n_inputs >= 1
)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(COMBINATIONAL),
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4,
             max_size=4),
)
def test_output_probability_matches_monte_carlo(cell_name, probabilities):
    """Exact truth-table probability == empirical frequency."""
    cell = LIBRARY[cell_name]
    input_probabilities = probabilities[:cell.n_inputs]
    exact = cell.output_probability(input_probabilities)
    assert 0.0 <= exact <= 1.0

    rng = np.random.default_rng(1234)
    samples = 20_000
    draws = rng.random((samples, cell.n_inputs)) < np.array(
        input_probabilities
    )
    outputs = np.fromiter(
        (cell.function(tuple(int(b) for b in row), 1) & 1
         for row in draws),
        dtype=np.int64, count=samples,
    )
    assert exact == pytest.approx(outputs.mean(), abs=0.02)


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(COMBINATIONAL))
def test_probability_endpoints(cell_name):
    """With deterministic inputs, the probability is the truth table."""
    cell = LIBRARY[cell_name]
    for bits, out in cell.truth_table():
        probability = cell.output_probability([float(b) for b in bits])
        assert probability == pytest.approx(float(out))


@SLOW
@given(st.integers(0, 5000))
def test_scoap_bounds_on_random_netlists(seed):
    netlist = random_netlist(n_inputs=5, n_gates=40, n_flops=4,
                             n_outputs=4, seed=seed)
    measures = compute_scoap(netlist)
    finite_cc0 = measures.net_cc0[measures.net_cc0 < INFINITE]
    finite_cc1 = measures.net_cc1[measures.net_cc1 < INFINITE]
    assert (finite_cc0 >= 1).all()
    assert (finite_cc1 >= 1).all()
    # Observability is zero exactly at observation points.
    po_nets = {net for net, _ in netlist.primary_outputs}
    for net in po_nets:
        assert measures.net_co[net] == 0


@SLOW
@given(st.integers(0, 5000))
def test_collapse_classes_partition(seed):
    netlist = random_netlist(n_inputs=5, n_gates=35, n_flops=3,
                             n_outputs=3, seed=seed)
    faults = full_fault_universe(netlist)
    universe = collapse_faults(netlist, faults)
    assert len(universe.class_of) == len(faults)
    assert universe.class_of.max() == len(universe.representatives) - 1
    # Every representative maps to its own class.
    for position, representative in enumerate(universe.representatives):
        original_index = faults.index(representative)
        assert universe.class_of[original_index] == position


@settings(max_examples=20, deadline=None)
@given(st.integers(10, 80), st.integers(0, 1000),
       st.floats(min_value=0.1, max_value=0.9))
def test_random_workload_bias(cycles, seed, bias):
    netlist = random_netlist(n_inputs=12, n_gates=10, n_flops=0,
                             n_outputs=2, seed=0)
    workload = random_workload(netlist, cycles=cycles, seed=seed,
                               bias=bias, reset_input="in_0")
    assert workload.vectors.shape == (cycles, 12)
    body = workload.vectors[2:, 1:]  # past reset, excluding reset column
    if body.size >= 200:
        assert body.mean() == pytest.approx(bias, abs=0.2)


def test_workload_generators_deterministic(all_designs):
    from repro.sim import design_workloads

    for design in all_designs:
        first = design_workloads(design.name, design, count=3,
                                 cycles=50, seed=5)
        second = design_workloads(design.name, design, count=3,
                                  cycles=50, seed=5)
        for a, b in zip(first, second):
            assert a.name == b.name
            assert np.array_equal(a.vectors, b.vectors)
        different = design_workloads(design.name, design, count=3,
                                     cycles=50, seed=6)
        assert any(
            not np.array_equal(a.vectors, b.vectors)
            for a, b in zip(first, different)
        )
