"""Behavioural and pipeline tests for the UART design."""

import numpy as np
import pytest

from repro.circuits import build_uart
from repro.circuits.uart import BAUD_DIVISOR, DATA_BITS, FRAME_CYCLES
from repro.netlist import validate
from repro.sim import Simulator, design_workloads, uart_workload


@pytest.fixture(scope="module")
def uart():
    return build_uart()


def loopback(sim, byte, corrupt_at=None, break_stop=False):
    """Drive one frame with txd looped into rxd; returns the outcome."""
    row = {"tx_start": 1, "rxd": 1, "reset": 0}
    row.update({f"tx_data_{i}": (byte >> i) & 1 for i in range(DATA_BITS)})
    out = sim.step(row)
    row["tx_start"] = 0
    for cycle in range(FRAME_CYCLES + 20):
        line = out["txd"]
        if corrupt_at is not None and cycle == corrupt_at:
            line ^= 1
        if break_stop and out["tx_busy"] and cycle > FRAME_CYCLES - 6:
            line = 0  # stomp the stop bit
        row["rxd"] = line
        out = sim.step(row)
        if out["rx_valid"]:
            return ("ok", sum(out[f"rx_data_{i}"] << i
                              for i in range(DATA_BITS)))
        if out["rx_parity_err"]:
            return ("parity", None)
        if out["rx_frame_err"]:
            return ("frame", None)
    return ("timeout", None)


class TestUartBehaviour:
    def test_validates(self, uart):
        validate(uart)
        assert uart.n_gates > 150

    def test_loopback_all_walking_patterns(self, uart):
        sim = Simulator(uart)
        sim.step({"reset": 1, "rxd": 1})
        sim.step({"reset": 0, "rxd": 1})
        for byte in [0x00, 0xFF] + [1 << i for i in range(8)] + [0xA5]:
            status, received = loopback(sim, byte)
            assert status == "ok" and received == byte, hex(byte)

    def test_tx_busy_covers_frame(self, uart):
        sim = Simulator(uart)
        sim.step({"reset": 1, "rxd": 1})
        sim.step({"reset": 0, "rxd": 1})
        row = {"tx_start": 1, "rxd": 1}
        row.update({f"tx_data_{i}": 1 for i in range(DATA_BITS)})
        out = sim.step(row)
        busy_cycles = 0
        row["tx_start"] = 0
        done_seen = False
        for _ in range(FRAME_CYCLES + 10):
            row["rxd"] = out["txd"]
            out = sim.step(row)
            busy_cycles += out["tx_busy"]
            done_seen |= bool(out["tx_done"])
        assert done_seen
        # start + 8 data + parity + stop bit periods
        assert busy_cycles == BAUD_DIVISOR * (DATA_BITS + 3)

    def test_corrupted_data_bit_raises_parity_error(self, uart):
        sim = Simulator(uart)
        sim.step({"reset": 1, "rxd": 1})
        sim.step({"reset": 0, "rxd": 1})
        # Flip the line exactly at a receiver sampling instant (the
        # mid-bit sample lands every BAUD_DIVISOR cycles at offset 3);
        # glitches between sampling points are correctly ignored.
        corrupt = BAUD_DIVISOR * 3 + 3  # a data-bit sample point
        status, _ = loopback(sim, 0x5A, corrupt_at=corrupt)
        assert status in ("parity", "frame")
        # The receiver recovers: a following clean frame succeeds.
        for _ in range(FRAME_CYCLES):
            sim.step({"rxd": 1, "tx_start": 0})
        status, received = loopback(sim, 0x3C)
        assert status == "ok" and received == 0x3C

    def test_line_idle_high(self, uart):
        sim = Simulator(uart)
        sim.step({"reset": 1, "rxd": 1})
        for _ in range(10):
            out = sim.step({"reset": 0, "rxd": 1, "tx_start": 0})
            assert out["txd"] == 1
            assert out["rx_valid"] == 0


class TestUartWorkloads:
    def test_loopback_workload_delivers_bytes(self, uart):
        workload = uart_workload(uart, cycles=300, seed=1,
                                 send_rate=0.8)
        trace = Simulator(uart).run(workload)
        assert trace.output("rx_valid").sum() >= 3
        assert trace.output("rx_parity_err").sum() == 0

    def test_noisy_workload_raises_errors(self, uart):
        workload = uart_workload(uart, cycles=400, seed=2,
                                 send_rate=0.9, noise_rate=0.05)
        trace = Simulator(uart).run(workload)
        errors = (trace.output("rx_parity_err").sum()
                  + trace.output("rx_frame_err").sum())
        assert errors >= 1

    def test_suite_registered(self, uart):
        suite = design_workloads("uart", uart, count=6, cycles=120,
                                 seed=0)
        assert len(suite) == 6
        assert all(w.name.startswith("uart[") for w in suite)


class TestUartPipeline:
    def test_full_analysis(self, uart):
        from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer

        analyzer = FaultCriticalityAnalyzer(
            uart, AnalyzerConfig(n_workloads=10, workload_cycles=250,
                                 seed=0),
        )
        dataset = analyzer.dataset
        assert 0.05 < dataset.critical_fraction < 0.95
        accuracy = analyzer.validation_accuracy()
        majority = max(dataset.critical_fraction,
                       1 - dataset.critical_fraction)
        assert accuracy >= majority - 0.1
