"""Optimizers.

Both steppers run fully in place: every per-parameter temporary the
textbook update would allocate (weight-decayed gradient, moment
updates, ``m_hat``/``v_hat``, the scaled step) lands in scratch
buffers allocated once at construction and reused via ``out=``
kernels.  The operation order replicates the allocating formulation
exactly, so the parameter trajectories are bitwise identical — only
the per-step allocations are gone.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.modules import Parameter
from repro.utils.errors import ModelError


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ModelError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[np.ndarray] = [
            np.zeros_like(parameter.value) for parameter in self.parameters
        ]
        self._scratch: List[np.ndarray] = [
            np.empty_like(parameter.value) for parameter in self.parameters
        ]

    def step(self) -> None:
        for parameter, velocity, scratch in zip(
            self.parameters, self._velocity, self._scratch
        ):
            grad = parameter.grad
            if self.weight_decay:
                # grad + wd * value (addition commutes bitwise)
                np.multiply(parameter.value, self.weight_decay,
                            out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            if grad is scratch:
                scratch *= self.lr
            else:
                np.multiply(grad, self.lr, out=scratch)
            parameter.value -= scratch


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with *coupled* L2 weight decay.

    ``weight_decay`` adds ``wd * value`` to the raw gradient before the
    moment updates — the original Adam-with-L2 formulation, so the
    decay term flows through the adaptive second-moment scaling.  This
    is *not* AdamW's decoupled decay (Loshchilov & Hutter, 2019),
    which subtracts ``lr * wd * value`` from the weights directly,
    bypassing the moments.
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._scratch = [np.empty_like(p.value) for p in self.parameters]
        self._scratch2 = [np.empty_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v, scratch, scratch2 in zip(
            self.parameters, self._m, self._v,
            self._scratch, self._scratch2
        ):
            grad = parameter.grad
            if self.weight_decay:
                np.multiply(parameter.value, self.weight_decay,
                            out=scratch)
                scratch += grad
                grad = scratch
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch2)
            m += scratch2
            v *= self.beta2
            # (1 - b2) * grad * grad evaluates left to right; keep that
            # association or the bits drift from the reference update.
            np.multiply(grad, 1.0 - self.beta2, out=scratch2)
            scratch2 *= grad
            v += scratch2
            # value -= lr * (m / c1) / (sqrt(v / c2) + eps)
            np.divide(v, correction2, out=scratch2)
            np.sqrt(scratch2, out=scratch2)
            scratch2 += self.eps
            np.divide(m, correction1, out=scratch)
            scratch *= self.lr
            scratch /= scratch2
            parameter.value -= scratch
