"""From-scratch neural-network engine (numpy): modules with explicit
backward passes, losses, optimizers, training loops, and grid search."""

from repro.nn.engine import (
    PropagationCache,
    TrainingWorkspace,
    compile_workspace,
)
from repro.nn.gridsearch import GridPoint, GridSearchResult, grid_search
from repro.nn.init import glorot_uniform
from repro.nn.losses import bce_with_logits, mse_loss, nll_loss
from repro.nn.modules import (
    Dropout,
    GCNConv,
    Linear,
    LogSoftmax,
    Module,
    Parameter,
    ReLU,
    SAGEConv,
    Sequential,
    Sigmoid,
    Tanh,
    functional_plan,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.training import (
    TrainingConfig,
    TrainingHistory,
    train_classifier,
    train_regressor,
)

__all__ = [
    "PropagationCache",
    "TrainingWorkspace",
    "compile_workspace",
    "GridPoint",
    "GridSearchResult",
    "grid_search",
    "glorot_uniform",
    "bce_with_logits",
    "mse_loss",
    "nll_loss",
    "Dropout",
    "GCNConv",
    "Linear",
    "LogSoftmax",
    "Module",
    "Parameter",
    "ReLU",
    "SAGEConv",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "functional_plan",
    "SGD",
    "Adam",
    "Optimizer",
    "TrainingConfig",
    "TrainingHistory",
    "train_classifier",
    "train_regressor",
]
