"""Loss functions with masked (transductive) evaluation.

Node classification is transductive: the full graph passes through the
network every step, but the loss (and its gradient) only covers the
training-fold nodes.  Every loss therefore takes a boolean node mask.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.errors import ModelError


def _resolve_mask(n: int, mask: Optional[np.ndarray]) -> np.ndarray:
    if mask is None:
        return np.ones(n, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (n,):
        raise ModelError(f"mask shape {mask.shape} != ({n},)")
    if not mask.any():
        raise ModelError("loss mask selects no nodes")
    return mask


def nll_loss(
    log_probs: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    class_weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Negative log-likelihood over masked nodes.

    Args:
        log_probs: ``(N, C)`` log-probabilities (LogSoftmax output).
        targets: ``(N,)`` integer class labels.
        mask: Boolean node mask (all nodes when ``None``).
        class_weights: Optional ``(C,)`` per-class weights (for class
            imbalance).

    Returns:
        ``(loss, grad)`` with ``grad`` shaped like ``log_probs``.
    """
    n, n_classes = log_probs.shape
    mask = _resolve_mask(n, mask)
    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape != (n,):
        raise ModelError("targets misaligned with predictions")

    weights = np.ones(n)
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=np.float64)
        if class_weights.shape != (n_classes,):
            raise ModelError("class_weights shape mismatch")
        weights = class_weights[targets]
    weights = weights * mask
    normalizer = weights.sum()

    picked = log_probs[np.arange(n), targets]
    loss = float(-(weights * picked).sum() / normalizer)

    grad = np.zeros_like(log_probs)
    grad[np.arange(n), targets] = -weights / normalizer
    return loss, grad


def mse_loss(
    predictions: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Mean squared error over masked nodes.

    ``predictions`` may be ``(N,)`` or ``(N, 1)``; the gradient matches
    the prediction shape.
    """
    squeezed = predictions.reshape(len(predictions))
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != squeezed.shape:
        raise ModelError("targets misaligned with predictions")
    mask = _resolve_mask(len(squeezed), mask)
    count = int(mask.sum())

    residual = (squeezed - targets) * mask
    loss = float((residual ** 2).sum() / count)
    grad = (2.0 * residual / count).reshape(predictions.shape)
    return loss, grad


def bce_with_logits(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy on raw logits (numerically stable)."""
    squeezed = logits.reshape(len(logits))
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != squeezed.shape:
        raise ModelError("targets misaligned with predictions")
    mask = _resolve_mask(len(squeezed), mask)
    count = int(mask.sum())

    # log(1 + exp(-|z|)) formulation
    absolute = np.abs(squeezed)
    losses = np.maximum(squeezed, 0.0) - squeezed * targets + np.log1p(
        np.exp(-absolute)
    )
    loss = float((losses * mask).sum() / count)

    probability = 1.0 / (1.0 + np.exp(-np.clip(squeezed, -60.0, 60.0)))
    grad = ((probability - targets) * mask / count).reshape(logits.shape)
    return loss, grad
