"""Zero-allocation training workspace for Sequential stacks.

:func:`repro.nn.functional_plan` (PR 5) turned a trained GCN stack into
a reusable functional description for the explainer; this module
extends the same idea to *training*.  :func:`compile_workspace` walks a
:class:`~repro.nn.modules.Sequential` once, preallocates every
activation, mask, and gradient buffer the stack will ever need, and
binds each layer to direct scipy sparse kernels
(``csr_matvecs``/``csc_matvecs``) writing into that reused memory — so
a full training run performs no per-epoch allocation and no scipy
``__matmul__`` dispatch.  The compiled forward/backward replicates the
module implementations operation for operation: with the default
*exact* semantics the per-epoch losses, metrics, and final weights are
bitwise identical to :meth:`Sequential.forward`/``backward``
(``tests/test_training_bitwise.py`` locks this against frozen
pre-rewrite copies of the module code).

Two opt-in accelerations trade that bitwise guarantee for speed
(``TrainingConfig(fast_math=True)``):

* **Operand-order selection** — ``A @ (X W)`` and ``(A X) @ W`` cost
  ``nnz * f_out`` vs ``nnz * f_in`` sparse flops (the dense product is
  order-invariant), so each :class:`GCNConv` propagates whichever side
  is narrower.
* **First-layer propagation caching** — the first convolution's
  ``A* @ X`` involves only constants, so it is computed once per
  ``(A*, X)`` pair in a shared :class:`PropagationCache` and reused
  across every epoch, every grid-search candidate, and every seed on
  the same design (SGC's ``A*^K X`` smoothing shares the same cache).

Both reorderings are algebraically exact; they differ from the default
only in floating-point rounding (IEEE addition is not associative).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse import _sparsetools

from repro.nn.modules import (
    Dropout,
    GCNConv,
    Linear,
    LogSoftmax,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.utils.errors import ModelError


class PropagationCache:
    """Cache of constant propagation products ``A @ X``.

    Keyed by operand *identity*: the product is recomputed only when a
    genuinely different matrix pair is presented, so one cache instance
    (typically owned by a :class:`~repro.graph.data.GraphData`) serves
    every training run, grid-search candidate, and SGC propagation on
    the same design.  Strong references to the operands are kept so a
    key's ``id`` can never be recycled.  Cached products are shared —
    callers must treat them as read-only.
    """

    def __init__(self) -> None:
        self._products: Dict[Tuple[int, int], tuple] = {}

    def __len__(self) -> int:
        return len(self._products)

    def get(self, a_norm: sp.spmatrix, x: np.ndarray) -> np.ndarray:
        """``a_norm @ x``, computed at most once per operand pair."""
        key = (id(a_norm), id(x))
        entry = self._products.get(key)
        if entry is None:
            entry = (a_norm @ x, a_norm, x)
            self._products[key] = entry
        return entry[0]


class _PackedModel:
    """Duck-typed model exposing one packed parameter to an optimizer."""

    def __init__(self, packed: "Parameter"):
        self._parameters = [packed]

    def parameters(self) -> List["Parameter"]:
        return self._parameters


def pack_parameters(model: Module) -> _PackedModel:
    """Rebind the model's parameters to views of one flat value/grad pair.

    Every optimizer update is elementwise with hyperparameters shared
    across parameters, so one fused pass over the packed pair is
    bitwise identical to the reference per-parameter loop — at 1/P the
    per-call dispatch overhead.  Mutations flow both ways: the modules'
    ``weight.value`` views alias the packed buffer the optimizer steps,
    and gradient accumulation into the views lands in the packed grad.
    """
    parameters = model.parameters()
    total = sum(parameter.value.size for parameter in parameters)
    flat_value = np.empty(total)
    flat_grad = np.zeros(total)
    offset = 0
    for parameter in parameters:
        size, shape = parameter.value.size, parameter.value.shape
        chunk = slice(offset, offset + size)
        flat_value[chunk] = parameter.value.ravel()
        parameter.value = flat_value[chunk].reshape(shape)
        parameter.grad = flat_grad[chunk].reshape(shape)
        offset += size
    packed = Parameter(flat_value)
    packed.grad = flat_grad
    return _PackedModel(packed)


def _spmm_args(matrix: sp.spmatrix, n_cols: int, x: Optional[np.ndarray],
               out: np.ndarray) -> tuple:
    """Frozen argument tuple for a ``sparsetools`` matvecs kernel.

    The kernel accumulates ``matrix @ x`` into ``out`` (callers zero
    ``out`` first) — bitwise identical to scipy's ``__matmul__``, minus
    the per-call dispatch, shape introspection, and result allocation.
    ``x`` may be ``None`` when the input operand is only known at call
    time (the caller appends ``x.ravel()`` then).
    """
    head = (matrix.shape[0], matrix.shape[1], n_cols,
            matrix.indptr, matrix.indices, matrix.data)
    return head + (x.ravel(), out.ravel()) if x is not None else head


class _Layer:
    """One compiled layer: preallocated buffers + in-place kernels.

    ``src`` is the layer's input array (the previous layer's ``out``
    buffer, or the root feature matrix), fixed at compile time; ``out``
    is the preallocated output buffer.  ``backward`` consumes the
    incoming gradient (and may overwrite it — the caller never reads it
    again) and returns the gradient w.r.t. ``src``, or ``None`` when
    ``need_input_grad`` is false (the first layer's input gradient is
    never used, so its computation is skipped).
    """

    def __init__(self, src: np.ndarray, out_width: int):
        self.src = src
        self.out = np.empty((src.shape[0], out_width))
        self.need_input_grad = True

    def forward(self, training: bool) -> None:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        raise NotImplementedError


class _GCNLayer(_Layer):
    """``H' = A* (H W) + b`` with the reference operand order.

    Forward: dense ``src @ W`` into a scratch, then one csr kernel into
    ``out``.  Backward: one csc kernel (against a transpose built once
    at compile time — the module path re-derives ``A.T`` every call)
    into the same scratch, then two dense products into parameter-shaped
    scratch buffers accumulated onto the grads.
    """

    def __init__(self, module: GCNConv, src: np.ndarray):
        super().__init__(src, module.weight.shape[1])
        self.module = module
        a = module.a_norm
        width = self.out.shape[1]
        # Holds X W during forward, A^T G during backward (the forward
        # product is dead by then).
        self._scratch = np.empty_like(self.out)
        self._fwd_args = _spmm_args(a, width, self._scratch, self.out)
        # Backward's spmm input is the incoming gradient, only known at
        # call time; the frozen head carries everything else.
        self._bwd_head = _spmm_args(a.T, width, None, self._scratch)
        self._scratch_flat = self._scratch.ravel()
        self._w_scratch = np.empty_like(module.weight.value)
        if module.bias is not None:
            self._b_scratch = np.empty_like(module.bias.value)
        self._grad_in = np.empty_like(src)

    def forward(self, training: bool) -> None:
        module = self.module
        np.matmul(self.src, module.weight.value, out=self._scratch)
        self.out.fill(0.0)
        _sparsetools.csr_matvecs(*self._fwd_args)
        if module.bias is not None:
            self.out += module.bias.value

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        module = self.module
        propagated = self._scratch
        propagated.fill(0.0)
        _sparsetools.csc_matvecs(*self._bwd_head, grad.ravel(),
                                 self._scratch_flat)
        np.matmul(self.src.T, propagated, out=self._w_scratch)
        module.weight.grad += self._w_scratch
        if module.bias is not None:
            np.add.reduce(grad, axis=0, out=self._b_scratch)
            module.bias.grad += self._b_scratch
        if not self.need_input_grad:
            return None
        np.matmul(propagated, module.weight.value.T, out=self._grad_in)
        return self._grad_in


class _GCNLayerAX(_Layer):
    """``H' = (A* H) W + b`` — the reordered form (fast math).

    Used when ``f_in < f_out``: the sparse product then runs over the
    narrower side in both directions (``nnz * f_in`` instead of
    ``nnz * f_out`` flops).  The propagated input ``A* H`` is kept for
    the weight gradient (``(A* H)^T G``), which the reference order
    would have to re-derive with a second sparse product.
    """

    def __init__(self, module: GCNConv, src: np.ndarray):
        super().__init__(src, module.weight.shape[1])
        self.module = module
        a = module.a_norm
        f_in = src.shape[1]
        self._ax = np.empty_like(src)
        self._grad_in = np.empty_like(src)
        self._fwd_args = _spmm_args(a, f_in, src, self._ax)
        self._bwd_args = _spmm_args(a.T, f_in, self._ax, self._grad_in)
        self._w_scratch = np.empty_like(module.weight.value)
        if module.bias is not None:
            self._b_scratch = np.empty_like(module.bias.value)
            self._ones = np.ones(src.shape[0])

    def forward(self, training: bool) -> None:
        module = self.module
        self._ax.fill(0.0)
        _sparsetools.csr_matvecs(*self._fwd_args)
        np.matmul(self._ax, module.weight.value, out=self.out)
        if module.bias is not None:
            self.out += module.bias.value

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        module = self.module
        np.matmul(self._ax.T, grad, out=self._w_scratch)
        module.weight.grad += self._w_scratch
        if module.bias is not None:
            # ones @ grad: the column sums as one BLAS matvec (this is
            # a fast-math layer, so the pairwise-reduce bits need not
            # be replicated).
            np.matmul(self._ones, grad, out=self._b_scratch)
            module.bias.grad += self._b_scratch
        if not self.need_input_grad:
            return None
        # d/dH of (A H) W = A^T (G W^T); _ax is dead, reuse it.
        np.matmul(grad, module.weight.value.T, out=self._ax)
        self._grad_in.fill(0.0)
        _sparsetools.csc_matvecs(*self._bwd_args)
        return self._grad_in


class _GCNLayerCached(_Layer):
    """First-layer convolution over a cached constant propagation.

    ``A* @ X`` involves no trainable state, so the product comes from a
    shared :class:`PropagationCache` and the layer degenerates to a
    dense affine map — no sparse work at all, in either direction.
    """

    def __init__(self, module: GCNConv, src: np.ndarray,
                 propagated: np.ndarray):
        super().__init__(src, module.weight.shape[1])
        self.module = module
        self._propagated = propagated
        self._w_scratch = np.empty_like(module.weight.value)
        if module.bias is not None:
            self._b_scratch = np.empty_like(module.bias.value)
            self._ones = np.ones(src.shape[0])
        self.need_input_grad = False

    def forward(self, training: bool) -> None:
        module = self.module
        np.matmul(self._propagated, module.weight.value, out=self.out)
        if module.bias is not None:
            self.out += module.bias.value

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        module = self.module
        np.matmul(self._propagated.T, grad, out=self._w_scratch)
        module.weight.grad += self._w_scratch
        if module.bias is not None:
            np.matmul(self._ones, grad, out=self._b_scratch)
            module.bias.grad += self._b_scratch
        return None


class _LinearLayer(_Layer):
    def __init__(self, module: Linear, src: np.ndarray):
        super().__init__(src, module.weight.shape[1])
        self.module = module
        self._w_scratch = np.empty_like(module.weight.value)
        if module.bias is not None:
            self._b_scratch = np.empty_like(module.bias.value)
        self._grad_in = np.empty_like(src)

    def forward(self, training: bool) -> None:
        module = self.module
        np.matmul(self.src, module.weight.value, out=self.out)
        if module.bias is not None:
            self.out += module.bias.value

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        module = self.module
        np.matmul(self.src.T, grad, out=self._w_scratch)
        module.weight.grad += self._w_scratch
        if module.bias is not None:
            np.add.reduce(grad, axis=0, out=self._b_scratch)
            module.bias.grad += self._b_scratch
        if not self.need_input_grad:
            return None
        np.matmul(grad, module.weight.value.T, out=self._grad_in)
        return self._grad_in


class _ReLULayer(_Layer):
    def __init__(self, module: ReLU, src: np.ndarray):
        super().__init__(src, src.shape[1])
        self._mask = np.empty(src.shape, dtype=bool)

    def forward(self, training: bool) -> None:
        np.greater(self.src, 0.0, out=self._mask)
        np.multiply(self.src, self._mask, out=self.out)

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        grad *= self._mask
        return grad


class _ReLULayerFast(_Layer):
    """Single-pass ReLU (fast math).

    ``maximum(x, 0)`` instead of the reference ``x * (x > 0)`` — equal
    values (only the sign of zero can differ), one elementwise pass
    instead of two on the forward, which runs twice per epoch.  The
    backward mask is rebuilt from the activation (``out > 0`` iff
    ``src > 0``).
    """

    def __init__(self, module: ReLU, src: np.ndarray):
        super().__init__(src, src.shape[1])
        self._mask = np.empty(src.shape, dtype=bool)

    def forward(self, training: bool) -> None:
        np.maximum(self.src, 0.0, out=self.out)

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        np.greater(self.out, 0.0, out=self._mask)
        grad *= self._mask
        return grad


class _SigmoidLayer(_Layer):
    def __init__(self, module: Sigmoid, src: np.ndarray):
        super().__init__(src, src.shape[1])
        self._scratch = np.empty_like(self.out)

    def forward(self, training: bool) -> None:
        out = self.out
        np.clip(self.src, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        grad *= self.out
        np.subtract(1.0, self.out, out=self._scratch)
        grad *= self._scratch
        return grad


class _TanhLayer(_Layer):
    def __init__(self, module: Tanh, src: np.ndarray):
        super().__init__(src, src.shape[1])
        self._scratch = np.empty_like(self.out)

    def forward(self, training: bool) -> None:
        np.tanh(self.src, out=self.out)

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        np.power(self.out, 2, out=self._scratch)
        np.subtract(1.0, self._scratch, out=self._scratch)
        grad *= self._scratch
        return grad


class _DropoutLayer(_Layer):
    """Inverted dropout drawing from the module's own RNG stream.

    ``Generator.random(out=...)`` consumes exactly the bits
    ``Generator.random(shape)`` would, so the engine's mask sequence is
    identical to the module path's.
    """

    def __init__(self, module: Dropout, src: np.ndarray):
        super().__init__(src, src.shape[1])
        self.module = module
        self.stochastic = module.p > 0.0
        self._uniform = np.empty(src.shape)
        self._keep_bool = np.empty(src.shape, dtype=bool)
        self._mask = np.empty(src.shape)
        self._active = False

    def make_inplace(self) -> None:
        """Alias ``out`` to ``src``: eval becomes a no-op and the train
        mask multiplies in place (identical bits).  Safe because every
        eval forward recomputes ``src`` before the next train forward
        reads it — applied by the compiler whenever ``src`` is an
        internal buffer (never the workspace input)."""
        self.out = self.src

    def forward(self, training: bool) -> None:
        if not training or not self.stochastic:
            self._active = False
            if self.out is not self.src:
                np.copyto(self.out, self.src)
            return
        keep = 1.0 - self.module.p
        self.module._rng.random(out=self._uniform)
        np.less(self._uniform, keep, out=self._keep_bool)
        np.divide(self._keep_bool, keep, out=self._mask)
        np.multiply(self.src, self._mask, out=self.out)
        self._active = True

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        if self._active:
            grad *= self._mask
        return grad


class _LogSoftmaxLayer(_Layer):
    """Row log-softmax.

    A two-element axis reduction is exactly one binary ufunc call per
    row, so for the (ubiquitous) two-class head the per-row reduce
    machinery is swapped for single elementwise calls over the column
    views — identical bits, a fraction of the reduce dispatch cost.
    """

    def __init__(self, module: LogSoftmax, src: np.ndarray):
        super().__init__(src, src.shape[1])
        n = src.shape[0]
        self._rows = np.empty(n)
        self._rows_col = self._rows.reshape(n, 1)
        self._exp = np.empty_like(self.out)
        self._two_class = src.shape[1] == 2

    def _row_reduce(self, ufunc, matrix: np.ndarray) -> None:
        if self._two_class:
            ufunc(matrix[:, 0], matrix[:, 1], out=self._rows)
        else:
            ufunc.reduce(matrix, axis=1, out=self._rows)

    def forward(self, training: bool) -> None:
        out = self.out
        self._row_reduce(np.maximum, self.src)
        np.subtract(self.src, self._rows_col, out=out)
        np.exp(out, out=self._exp)
        self._row_reduce(np.add, self._exp)
        np.log(self._rows, out=self._rows)
        out -= self._rows_col

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        np.exp(self.out, out=self._exp)
        self._row_reduce(np.add, grad)
        self._exp *= self._rows_col
        grad -= self._exp
        return grad


_COMPILERS = {
    GCNConv: _GCNLayer,
    Linear: _LinearLayer,
    ReLU: _ReLULayer,
    Sigmoid: _SigmoidLayer,
    Tanh: _TanhLayer,
    Dropout: _DropoutLayer,
    LogSoftmax: _LogSoftmaxLayer,
}


class TrainingWorkspace:
    """Compiled forward/backward plan over preallocated buffers.

    The training loop alternates one train-mode forward (+ backward +
    step) with one eval-mode monitor forward per epoch.  Because no
    weight changes between the monitor forward and the *next* epoch's
    train forward, and every layer before the first stochastic
    (dropout) layer behaves identically in both modes, that prefix of
    the next train forward would recompute exactly the values already
    sitting in the buffers — so :meth:`forward_train` skips it.  The
    skipped layers' buffers still feed the backward pass, which is what
    makes the shortcut bitwise-safe rather than approximate.
    """

    def __init__(self, model: Sequential, x: np.ndarray,
                 layers: List[_Layer]):
        self.model = model
        self.x = x
        self.layers = layers
        self.output = layers[-1].out
        self._resume_at = next(
            (i for i, layer in enumerate(layers)
             if isinstance(layer, _DropoutLayer) and layer.stochastic),
            len(layers),
        )
        self._eval_fresh = False

    def forward_train(self) -> np.ndarray:
        start = self._resume_at if self._eval_fresh else 0
        for layer in self.layers[start:]:
            layer.forward(training=True)
        self._eval_fresh = False
        return self.output

    def forward_eval(self) -> np.ndarray:
        for layer in self.layers:
            layer.forward(training=False)
        self._eval_fresh = True
        return self.output

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
            if grad is None:
                break


def _dense_matrix(x) -> Optional[np.ndarray]:
    if (isinstance(x, np.ndarray) and x.ndim == 2
            and x.dtype == np.float64 and x.flags.c_contiguous):
        return x
    return None


def _usable_adjacency(a, n_nodes: int) -> bool:
    return (sp.issparse(a) and a.format == "csr"
            and a.shape == (n_nodes, n_nodes)
            and a.dtype == np.float64)


def compile_workspace(
    model: Module,
    x: np.ndarray,
    fast_math: bool = False,
    cache: Optional[PropagationCache] = None,
) -> Optional[TrainingWorkspace]:
    """Compile ``model`` into a :class:`TrainingWorkspace`.

    Returns ``None`` when the model is not a compilable stack (not a
    :class:`Sequential`, contains an unsupported layer such as
    ``SAGEConv``, or the input/adjacency types don't match the kernel
    contracts) — the caller then falls back to the generic module
    implementation, which handles everything.
    """
    if not isinstance(model, Sequential) or not model.modules:
        return None
    if _dense_matrix(x) is None:
        return None
    layers: List[_Layer] = []
    src = x
    for position, module in enumerate(model.modules):
        compiler = _COMPILERS.get(type(module))
        if compiler is None:
            return None
        if isinstance(module, (GCNConv, Linear)):
            if module.weight.shape[0] != src.shape[1]:
                return None
            if isinstance(module, GCNConv):
                if not _usable_adjacency(module.a_norm, src.shape[0]):
                    return None
                f_in, f_out = module.weight.shape
                if fast_math and src is x and cache is not None:
                    propagated = _dense_matrix(
                        cache.get(module.a_norm, x)
                    )
                    if propagated is not None:
                        layer = _GCNLayerCached(module, src, propagated)
                        layers.append(layer)
                        src = layer.out
                        continue
                if fast_math and f_in < f_out:
                    compiler = _GCNLayerAX
        if fast_math and compiler is _ReLULayer:
            compiler = _ReLULayerFast
        layer = compiler(module, src)
        if isinstance(layer, _DropoutLayer) and src is not x:
            layer.make_inplace()
        layers.append(layer)
        src = layer.out
    layers[0].need_input_grad = False
    return TrainingWorkspace(model, x, layers)


class ClassifierObjective:
    """Masked NLL + accuracy over a workspace's shared output buffer.

    Targets, masks, class weights, and the loss normalizers are
    constant for a whole training run, so the flat gather indices, the
    per-node weights, and the gradient scatter values are computed once
    here; per epoch the train loss, the monitor loss, and the monitor
    accuracy each cost one ``take`` + one reduction over buffers.  The
    arithmetic matches :func:`repro.nn.losses.nll_loss` operation for
    operation (bitwise).
    """

    def __init__(self, output: np.ndarray, targets: np.ndarray,
                 train_mask: np.ndarray, monitor_mask: np.ndarray,
                 class_weights: Optional[np.ndarray],
                 fast: bool = False):
        n, n_classes = output.shape
        self._output = output
        self._output_flat = output.reshape(-1)
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape != (n,):
            raise ModelError("targets misaligned with predictions")
        self._flat = np.arange(n, dtype=np.int64) * n_classes + targets

        self._train_weights, self._train_norm = self._weigh(
            n, n_classes, targets, train_mask, class_weights
        )
        self._monitor_weights, self._monitor_norm = self._weigh(
            n, n_classes, targets, monitor_mask, None
        )
        self._scatter = -self._train_weights / self._train_norm

        self.grad = np.zeros_like(output)
        self._grad_flat = self.grad.reshape(-1)
        self._picked = np.empty(n)
        self._weighted = np.empty(n)

        monitor_index = np.flatnonzero(
            np.asarray(monitor_mask, dtype=bool)
        )
        self._monitor_index = monitor_index
        self._monitor_targets = targets[monitor_index]
        self._argmax = np.empty(n, dtype=np.intp)
        self._argmax_sel = np.empty(len(monitor_index), dtype=np.intp)
        self._hits = np.empty(len(monitor_index), dtype=bool)
        # Fast-math only: for two classes argmax reduces to a single
        # column comparison.  It disagrees with argmax when column 1 is
        # NaN (argmax returns the NaN index, ``greater`` returns 0), so
        # the exact path keeps the per-row argmax.
        self._fast_two_class = bool(fast) and n_classes == 2
        if self._fast_two_class:
            self._greater = np.empty(n, dtype=bool)
            self._greater_sel = np.empty(len(monitor_index), dtype=bool)

    @staticmethod
    def _weigh(n, n_classes, targets, mask, class_weights):
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (n,):
            raise ModelError(f"mask shape {mask.shape} != ({n},)")
        if not mask.any():
            raise ModelError("loss mask selects no nodes")
        weights = np.ones(n)
        if class_weights is not None:
            class_weights = np.asarray(class_weights, dtype=np.float64)
            if class_weights.shape != (n_classes,):
                raise ModelError("class_weights shape mismatch")
            weights = class_weights[targets]
        weights = weights * mask
        return weights, weights.sum()

    def _masked_nll(self, weights: np.ndarray, norm: float) -> float:
        self._output_flat.take(self._flat, out=self._picked)
        np.multiply(weights, self._picked, out=self._weighted)
        return float(-np.add.reduce(self._weighted) / norm)

    def train_loss(self) -> float:
        """Training-fold NLL; also refreshes :attr:`grad` in place."""
        self.grad.fill(0.0)
        self._grad_flat[self._flat] = self._scatter
        return self._masked_nll(self._train_weights, self._train_norm)

    def monitor_loss(self) -> float:
        return self._masked_nll(self._monitor_weights,
                                self._monitor_norm)

    def monitor_accuracy(self) -> float:
        if self._fast_two_class:
            np.greater(self._output[:, 1], self._output[:, 0],
                       out=self._greater)
            self._greater.take(self._monitor_index,
                               out=self._greater_sel)
            np.equal(self._greater_sel, self._monitor_targets,
                     out=self._hits)
        else:
            np.argmax(self._output, axis=1, out=self._argmax)
            self._argmax.take(self._monitor_index,
                              out=self._argmax_sel)
            np.equal(self._argmax_sel, self._monitor_targets,
                     out=self._hits)
        # count_nonzero/size divides the same exact integers as
        # ``mean`` would — identical bits, no fromnumeric dispatch.
        return np.count_nonzero(self._hits) / self._hits.size


class RegressorObjective:
    """Masked MSE over a workspace's shared output buffer; same
    precomputation contract as :class:`ClassifierObjective`, matching
    :func:`repro.nn.losses.mse_loss` bitwise."""

    def __init__(self, output: np.ndarray, targets: np.ndarray,
                 train_mask: np.ndarray, monitor_mask: np.ndarray):
        n = output.shape[0]
        self._output_flat = output.reshape(n)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != (n,):
            raise ModelError("targets misaligned with predictions")
        self._targets = targets
        self._train_mask = self._check_mask(n, train_mask)
        self._monitor_mask = self._check_mask(n, monitor_mask)
        self._train_count = int(self._train_mask.sum())
        self._monitor_count = int(self._monitor_mask.sum())
        self.grad = np.zeros_like(output)
        self._grad_flat = self.grad.reshape(n)
        self._residual = np.empty(n)
        self._squared = np.empty(n)

    @staticmethod
    def _check_mask(n, mask):
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (n,):
            raise ModelError(f"mask shape {mask.shape} != ({n},)")
        if not mask.any():
            raise ModelError("loss mask selects no nodes")
        return mask

    def _masked_mse(self, mask: np.ndarray, count: int) -> float:
        np.subtract(self._output_flat, self._targets,
                    out=self._residual)
        self._residual *= mask
        np.power(self._residual, 2, out=self._squared)
        return float(np.add.reduce(self._squared) / count)

    def train_loss(self) -> float:
        """Training-fold MSE; also refreshes :attr:`grad` in place."""
        loss = self._masked_mse(self._train_mask, self._train_count)
        np.multiply(self._residual, 2.0, out=self._grad_flat)
        self._grad_flat /= self._train_count
        return loss

    def monitor_loss(self) -> float:
        return self._masked_mse(self._monitor_mask,
                                self._monitor_count)
