"""Hyperparameter grid search (§3.3.2 of the paper).

Sweeps layer counts, hidden widths, dropout and learning rate for a
model-builder callback, training each candidate and ranking by
validation accuracy.  Used by the Table 1 benchmark to confirm the
published architecture is the grid's winner.

Candidates are independent deterministic trainings, so ``jobs > 1``
fans them out over the supervised fork :class:`WorkerPool` (PR 6);
results are reassembled in grid-product order before the (stable)
ranking sort, so the pooled ranking is bitwise identical to serial.
Each candidate's validation accuracy comes from the training history's
recorded best-epoch accuracy — the restored best weights would
reproduce it exactly, so the old extra post-training forward per
candidate is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.engine import PropagationCache
from repro.nn.modules import GCNConv, Module, Sequential
from repro.nn.training import TrainingConfig, train_classifier
from repro.utils.errors import ModelError
from repro.utils.workerpool import PoolPolicy, run_supervised

#: builder(hidden_dims, dropout, seed) -> Module
ModelBuilder = Callable[[Sequence[int], float, int], Module]


@dataclass
class GridPoint:
    """One evaluated hyperparameter combination."""

    hidden_dims: tuple
    dropout: float
    lr: float
    val_accuracy: float
    best_epoch: int

    def describe(self) -> str:
        dims = "-".join(str(d) for d in self.hidden_dims)
        return (
            f"layers={len(self.hidden_dims) + 1} dims={dims} "
            f"dropout={self.dropout} lr={self.lr}"
        )


@dataclass
class GridSearchResult:
    """All evaluated points, best first."""

    points: List[GridPoint] = field(default_factory=list)

    @property
    def best(self) -> GridPoint:
        if not self.points:
            raise ModelError("empty grid search")
        return self.points[0]

    def table(self) -> List[Dict[str, object]]:
        """Rows for report rendering."""
        return [
            {
                "hidden dims": "-".join(str(d) for d in p.hidden_dims),
                "dropout": p.dropout,
                "lr": p.lr,
                "val accuracy": round(p.val_accuracy, 4),
            }
            for p in self.points
        ]


def _warm_propagation(model: Module, x: np.ndarray,
                      cache: PropagationCache) -> None:
    """Precompute the first convolution's ``A* @ X`` into ``cache``.

    Called before forking pool workers, so every worker inherits the
    shared product copy-on-write instead of each recomputing it."""
    if not isinstance(model, Sequential):
        return
    for module in model.modules:
        if isinstance(module, GCNConv):
            cache.get(module.a_norm, x)
        break


def grid_search(
    builder: ModelBuilder,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    hidden_dim_options: Sequence[Sequence[int]] = (
        (16,), (16, 32), (16, 32, 64), (32, 64),
    ),
    dropout_options: Sequence[float] = (0.0, 0.3, 0.5),
    lr_options: Sequence[float] = (0.01,),
    epochs: int = 200,
    seed: int = 0,
    jobs: int = 1,
    fast_math: bool = False,
    cache: Optional[PropagationCache] = None,
    max_worker_restarts: int = 8,
    heartbeat_interval: float = 5.0,
) -> GridSearchResult:
    """Evaluate every combination and rank by validation accuracy.

    ``jobs`` trains candidates in parallel pool workers (``0`` = all
    cores, ``1`` = serial; the ranking is identical either way).
    ``fast_math`` opts candidate trainings into the engine's reordered
    kernels and shared first-layer propagation ``cache`` — one product
    amortized across the whole grid.
    """
    combos = list(product(hidden_dim_options, dropout_options, lr_options))
    if cache is None:
        cache = PropagationCache()

    def evaluate(combo) -> GridPoint:
        hidden_dims, dropout, lr = combo
        model = builder(tuple(hidden_dims), dropout, seed)
        config = TrainingConfig(epochs=epochs, lr=lr, patience=40,
                                fast_math=fast_math)
        history = train_classifier(
            model, x, targets, train_mask, val_mask, config,
            cache=cache,
        )
        if history.best_epoch >= 0:
            accuracy = history.best_val_accuracy
        else:  # zero-epoch run: score the untrained weights
            model.eval()
            predictions = model.forward(x).argmax(axis=1)
            accuracy = float(
                (predictions[val_mask] == targets[val_mask]).mean()
            )
        return GridPoint(
            hidden_dims=tuple(hidden_dims),
            dropout=dropout,
            lr=lr,
            val_accuracy=accuracy,
            best_epoch=history.best_epoch,
        )

    if jobs == 1 or len(combos) < 2:
        points = [evaluate(combo) for combo in combos]
    else:
        if fast_math and combos:
            _warm_propagation(
                builder(tuple(combos[0][0]), combos[0][1], seed),
                x, cache,
            )
        policy = PoolPolicy(
            jobs=jobs,
            max_worker_restarts=max_worker_restarts,
            heartbeat_interval=heartbeat_interval,
        )
        points = []
        for combo, outcome in zip(
            combos, run_supervised(evaluate, combos, policy)
        ):
            if not outcome.ok:
                hidden_dims, dropout, lr = combo
                cause = outcome.error or outcome.crash.describe()
                raise ModelError(
                    f"grid candidate dims={tuple(hidden_dims)} "
                    f"dropout={dropout} lr={lr} failed: {cause}"
                )
            points.append(outcome.value)

    points.sort(key=lambda p: p.val_accuracy, reverse=True)
    return GridSearchResult(points=points)
