"""Training loops for transductive node models.

Full-batch training (the whole graph per step, masked loss), Adam by
default, early stopping on the validation metric with best-weights
restore — the standard recipe for small-graph GCN training.

Compilable :class:`~repro.nn.modules.Sequential` stacks run on the
zero-allocation :mod:`repro.nn.engine` workspace (preallocated
buffers, direct sparse kernels, monitor-forward prefix reuse); the
results are bitwise identical to the generic module path, which
remains the fallback for everything the workspace can't compile
(e.g. ``SAGEConv`` stacks) and can be forced with
``TrainingConfig(engine="module")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.engine import (
    ClassifierObjective,
    PropagationCache,
    RegressorObjective,
    compile_workspace,
    pack_parameters,
)
from repro.nn.losses import mse_loss, nll_loss
from repro.nn.modules import Module
from repro.nn.optim import Adam, Optimizer, SGD
from repro.utils.errors import ModelError


@dataclass
class TrainingConfig:
    """Hyperparameters for one training run."""

    epochs: int = 300
    lr: float = 0.01
    weight_decay: float = 5e-4
    optimizer: str = "adam"
    patience: int = 60          # early-stopping patience (0 disables)
    class_weights: bool = True  # balance NLL by inverse class frequency
    verbose: bool = False
    #: "auto" compiles supported stacks onto the zero-allocation
    #: engine workspace; "module" forces the generic module path.
    #: Both produce bitwise-identical histories and weights.
    engine: str = "auto"
    #: Opt in to operand-order selection and first-layer propagation
    #: caching in GCN layers.  Algebraically exact but *not* bitwise
    #: identical to the default (float addition is not associative).
    fast_math: bool = False

    def build_optimizer(self, model: Module) -> Optimizer:
        if self.optimizer == "adam":
            return Adam(model.parameters(), lr=self.lr,
                        weight_decay=self.weight_decay)
        if self.optimizer == "sgd":
            return SGD(model.parameters(), lr=self.lr, momentum=0.9,
                       weight_decay=self.weight_decay)
        raise ModelError(f"unknown optimizer {self.optimizer!r}")


@dataclass
class TrainingHistory:
    """Per-epoch metrics from one run."""

    train_loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_metric: float = -np.inf
    #: Raw monitor accuracy at ``best_epoch`` (classifier runs only).
    #: Because the best-epoch weights are restored on completion and
    #: the eval forward is deterministic, this equals — bitwise — the
    #: accuracy a fresh post-training forward would recompute, which is
    #: how ``grid_search`` avoids a third forward per candidate.
    best_val_accuracy: float = float("nan")


class _BestWeights:
    """Lazy best-epoch weight snapshot for early stopping.

    Copying every improving epoch is wasted work: the weights only
    need preserving if a *later* step is about to overwrite them while
    they are still the restore candidate.  So an improvement merely
    flags the live weights as best, and the actual copy happens at the
    start of the next optimizer step — into reused buffers, so a long
    improvement streak costs ``copyto`` traffic but zero allocation.
    If training ends while the flag is set, the live weights already
    ARE the best and the restore is a no-op.
    """

    def __init__(self, model: Module):
        self._model = model
        self._snapshot: Optional[List[np.ndarray]] = None
        self._pending = False

    def mark_improved(self) -> None:
        """The weights currently in the model are the new best."""
        self._pending = True

    def before_step(self) -> None:
        """Capture the pending best before the optimizer mutates it."""
        if self._pending:
            if self._snapshot is None:
                self._snapshot = [
                    parameter.value.copy()
                    for parameter in self._model.parameters()
                ]
            else:
                for buffer, parameter in zip(
                    self._snapshot, self._model.parameters()
                ):
                    np.copyto(buffer, parameter.value)
            self._pending = False

    def restore(self) -> None:
        """Put the best-epoch weights back into the model."""
        if self._pending or self._snapshot is None:
            return  # live weights are already the best (or no epochs ran)
        for parameter, value in zip(
            self._model.parameters(), self._snapshot
        ):
            parameter.value[:] = value


def _run_epochs(
    model: Module,
    optimizer: Optimizer,
    config: TrainingConfig,
    history: TrainingHistory,
    train_step: Callable[[], float],
    monitor_step: Callable[[], tuple],
    verbose_line: Callable[[int, float, float], str],
) -> TrainingHistory:
    """The shared epoch skeleton: step, monitor, early-stop, restore.

    ``train_step`` runs one forward/backward and returns the training
    loss; ``monitor_step`` returns ``(metric, accuracy_or_nan)``.  The
    engine and module paths differ only in those two callables.
    """
    best = _BestWeights(model)
    stale = 0
    for epoch in range(config.epochs):
        loss = train_step()
        best.before_step()
        optimizer.step()

        metric, accuracy = monitor_step()
        history.train_loss.append(loss)
        history.val_metric.append(metric)
        if config.verbose and epoch % 20 == 0:
            print(verbose_line(epoch, loss, metric))

        if metric > history.best_val_metric:
            history.best_val_metric = metric
            history.best_epoch = epoch
            history.best_val_accuracy = accuracy
            best.mark_improved()
            stale = 0
        else:
            stale += 1
            if config.patience and stale >= config.patience:
                break

    best.restore()
    model.eval()
    return history


def _compile(model: Module, x: np.ndarray, config: TrainingConfig,
             cache: Optional[PropagationCache]):
    if config.engine == "module":
        return None
    if config.engine != "auto":
        raise ModelError(f"unknown engine {config.engine!r}")
    return compile_workspace(model, x, fast_math=config.fast_math,
                             cache=cache)


def train_classifier(
    model: Module,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    config: Optional[TrainingConfig] = None,
    cache: Optional[PropagationCache] = None,
) -> TrainingHistory:
    """Train a log-softmax classifier on masked nodes.

    The validation metric is accuracy on ``val_mask`` (training-fold
    accuracy when no validation mask is given).  On completion the
    model holds the best-validation weights.  ``cache`` is an optional
    shared :class:`~repro.nn.engine.PropagationCache` (used by the
    engine's fast-math first layer).
    """
    config = config or TrainingConfig()
    history = TrainingHistory()
    monitor_mask = val_mask if val_mask is not None else train_mask

    class_weights = None
    if config.class_weights:
        counts = np.bincount(targets[train_mask], minlength=2).astype(float)
        counts[counts == 0.0] = 1.0
        class_weights = counts.sum() / (len(counts) * counts)

    workspace = _compile(model, x, config, cache)
    # On the engine path the optimizer steps all parameters as one
    # packed flat pair (elementwise updates: bitwise identical, one
    # fused pass instead of a per-parameter loop).
    optimizer = config.build_optimizer(
        pack_parameters(model) if workspace is not None else model
    )
    if workspace is not None:
        objective = ClassifierObjective(
            workspace.output, targets, train_mask, monitor_mask,
            class_weights, fast=config.fast_math,
        )

        def train_step() -> float:
            optimizer.zero_grad()
            workspace.forward_train()
            loss = objective.train_loss()
            workspace.backward(objective.grad)
            return loss

        def monitor_step():
            workspace.forward_eval()
            accuracy = objective.monitor_accuracy()
            # Early-stopping metric: accuracy with an NLL tie-breaker,
            # so among equally-accurate epochs the best-calibrated one
            # wins (this keeps probability rankings — and hence
            # ROC/AUC — faithful, not just the argmax).
            return accuracy - 0.1 * objective.monitor_loss(), accuracy

    else:
        def train_step() -> float:
            model.train()
            optimizer.zero_grad()
            log_probs = model.forward(x)
            loss, grad = nll_loss(log_probs, targets, mask=train_mask,
                                  class_weights=class_weights)
            model.backward(grad)
            return loss

        def monitor_step():
            model.eval()
            monitored = model.forward(x)
            predictions = monitored.argmax(axis=1)
            accuracy = float(
                (predictions[monitor_mask] == targets[monitor_mask]).mean()
            )
            monitor_loss, _ = nll_loss(monitored, targets,
                                       mask=monitor_mask)
            return accuracy - 0.1 * monitor_loss, accuracy

    return _run_epochs(
        model, optimizer, config, history, train_step, monitor_step,
        lambda epoch, loss, metric:
            f"epoch {epoch:4d}  loss {loss:.4f}  val {metric:.4f}",
    )


def train_regressor(
    model: Module,
    x: np.ndarray,
    targets: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    config: Optional[TrainingConfig] = None,
    cache: Optional[PropagationCache] = None,
) -> TrainingHistory:
    """Train a scalar-output regressor on masked nodes.

    The validation metric is negative MSE (higher is better, so early
    stopping shares the classifier's logic).
    """
    config = config or TrainingConfig()
    history = TrainingHistory()
    monitor_mask = val_mask if val_mask is not None else train_mask

    workspace = _compile(model, x, config, cache)
    optimizer = config.build_optimizer(
        pack_parameters(model) if workspace is not None else model
    )
    if workspace is not None:
        objective = RegressorObjective(
            workspace.output, targets, train_mask, monitor_mask
        )

        def train_step() -> float:
            optimizer.zero_grad()
            workspace.forward_train()
            loss = objective.train_loss()
            workspace.backward(objective.grad)
            return loss

        def monitor_step():
            workspace.forward_eval()
            return -objective.monitor_loss(), float("nan")

    else:
        def train_step() -> float:
            model.train()
            optimizer.zero_grad()
            predictions = model.forward(x)
            loss, grad = mse_loss(predictions, targets, mask=train_mask)
            model.backward(grad)
            return loss

        def monitor_step():
            model.eval()
            predictions = model.forward(x).reshape(-1)
            val_loss, _ = mse_loss(predictions, targets,
                                   mask=monitor_mask)
            return -val_loss, float("nan")

    return _run_epochs(
        model, optimizer, config, history, train_step, monitor_step,
        lambda epoch, loss, metric:
            f"epoch {epoch:4d}  loss {loss:.5f}  val-mse {-metric:.5f}",
    )
