"""Weight initialization."""

from __future__ import annotations

import numpy as np


def glorot_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a 2-D weight."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)
