"""Fault models and fault-universe construction.

The paper's campaigns inject permanent stuck-at-0 and stuck-at-1 faults
on circuit nodes (gates).  A :class:`Fault` pins one gate's output net
to a constant for an entire simulation; the *node* ``ND2_U393`` has two
faults, ``ND2_U393/SA0`` and ``ND2_U393/SA1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.errors import SimulationError
from repro.utils.rng import SeedLike, rng_from_seed


@dataclass(frozen=True)
class Fault:
    """A permanent stuck-at fault on one gate's output."""

    gate_index: int
    net_index: int
    node_name: str
    stuck_at: int  # 0 or 1

    @property
    def name(self) -> str:
        return f"{self.node_name}/SA{self.stuck_at}"


def full_fault_universe(netlist: Netlist) -> List[Fault]:
    """Both stuck-at faults for every gate in the design."""
    faults: List[Fault] = []
    for gate in netlist.gates:
        for stuck_at in (0, 1):
            faults.append(Fault(
                gate_index=gate.index,
                net_index=gate.output,
                node_name=gate.node_name,
                stuck_at=stuck_at,
            ))
    return faults


def faults_for_nodes(netlist: Netlist,
                     node_names: Sequence[str]) -> List[Fault]:
    """Both stuck-at faults for the named nodes only."""
    faults: List[Fault] = []
    for node_name in node_names:
        gate = netlist.gate_by_node_name(node_name)
        for stuck_at in (0, 1):
            faults.append(Fault(
                gate_index=gate.index,
                net_index=gate.output,
                node_name=gate.node_name,
                stuck_at=stuck_at,
            ))
    return faults


def sample_faults(faults: Sequence[Fault], fraction: float,
                  seed: SeedLike = 0) -> List[Fault]:
    """Uniformly sample a fraction of a fault list (for quick sweeps).

    Sampling keeps a node's SA0/SA1 pair together so per-node
    criticality remains well-defined.
    """
    if not 0.0 < fraction <= 1.0:
        raise SimulationError(f"fraction {fraction} outside (0, 1]")
    nodes = sorted({fault.node_name for fault in faults})
    rng = rng_from_seed(seed)
    keep_count = max(1, int(round(fraction * len(nodes))))
    chosen = set(
        np.array(nodes)[rng.choice(len(nodes), keep_count, replace=False)]
    )
    return [fault for fault in faults if fault.node_name in chosen]
