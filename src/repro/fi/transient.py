"""Transient-fault (single-event upset) campaigns — extension.

The paper analyses permanent stuck-at faults; radiation-induced soft
errors are the other half of an ISO 26262 analysis.  This module adds
the standard SEU model on top of the same campaign machinery: a fault
is one state-bit flip in one flip-flop at one cycle, and a flop's
criticality is the fraction of injections (over flops' sampled cycles
and workloads) whose corruption becomes a functional failure — an
architectural-vulnerability-factor-style score the same GCN pipeline
can learn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.fi.campaign import DEFAULT_SEVERITY, CampaignResult
from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError
from repro.utils.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class TransientFault:
    """A single-event upset: one flip-flop bit flip at one cycle."""

    gate_index: int
    net_index: int
    node_name: str
    cycle: int

    @property
    def name(self) -> str:
        return f"{self.node_name}/SEU@{self.cycle}"


def transient_fault_universe(
    netlist: Netlist,
    cycles: int,
    injections_per_flop: int = 8,
    seed: SeedLike = 0,
    warmup: int = 4,
) -> List[TransientFault]:
    """Sample SEU injections: per flip-flop, ``injections_per_flop``
    distinct cycles uniformly over the first half of the run (past a
    reset warm-up).

    The warm-up skips the reset pulse, where a flipped state would be
    immediately cleared; restricting injections to the first half keeps
    the campaign's error-rate severity meaningful — every upset has at
    least half the workload in which to manifest functionally.
    """
    flops = netlist.sequential_gates()
    if not flops:
        raise SimulationError("design has no flip-flops to upset")
    window_end = max(cycles // 2, warmup + 1)
    if window_end - warmup < injections_per_flop:
        raise SimulationError(
            f"cannot place {injections_per_flop} distinct injections in "
            f"cycles [{warmup}, {window_end})"
        )
    rng = derive_rng(seed, "transient-universe", netlist.name)
    faults: List[TransientFault] = []
    for gate in flops:
        chosen = rng.choice(
            np.arange(warmup, window_end), injections_per_flop,
            replace=False,
        )
        for cycle in sorted(int(c) for c in chosen):
            faults.append(TransientFault(
                gate_index=gate.index,
                net_index=gate.output,
                node_name=gate.node_name,
                cycle=cycle,
            ))
    return faults


def run_transient_campaign(
    netlist: Netlist,
    workloads: Sequence[Workload],
    faults: Optional[Sequence[TransientFault]] = None,
    injections_per_flop: int = 8,
    seed: SeedLike = 0,
    observation="auto",
    severity="auto",
) -> CampaignResult:
    """Run an SEU campaign; returns the standard
    :class:`~repro.fi.campaign.CampaignResult` (faults are
    :class:`TransientFault` instances, so node criticality aggregates
    over each flop's sampled injection cycles).

    A transient is Dangerous when it corrupts at least the severity
    fraction of the workload's cycles — a flipped FSM state that
    derails the machine scores high, an upset that is overwritten
    before reaching an output scores zero (injections are placed in
    the first half of the run so this rate is attainable).
    """
    from repro.fi.observation import (
        ObservationSpec,
        observation_for,
        severity_for,
    )

    if not workloads:
        raise SimulationError("campaign needs at least one workload")
    min_cycles = min(workload.cycles for workload in workloads)
    fault_list = list(faults) if faults is not None else (
        transient_fault_universe(
            netlist, min_cycles, injections_per_flop, seed
        )
    )
    if not fault_list:
        raise SimulationError("campaign needs at least one fault")
    if severity == "auto":
        severity = severity_for(netlist, DEFAULT_SEVERITY)
    if observation == "auto":
        observation = observation_for(netlist)
    compiled = (
        observation.compile(netlist)
        if isinstance(observation, ObservationSpec) else None
    )

    engine = BitParallelSimulator(netlist)
    fault_nets = np.array([fault.net_index for fault in fault_list],
                          dtype=np.intp)
    fault_cycles = np.array([fault.cycle for fault in fault_list],
                            dtype=np.int64)

    n_workloads, n_faults = len(workloads), len(fault_list)
    error_cycles = np.zeros((n_workloads, n_faults), dtype=np.int64)
    detection = np.full((n_workloads, n_faults), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, n_faults), dtype=bool)

    started = time.perf_counter()
    for row, workload in enumerate(workloads):
        row_errors, row_detection, row_latent = (
            engine.run_transient_pass(
                workload, fault_nets, fault_cycles, observation=compiled
            )
        )
        error_cycles[row] = row_errors
        detection[row] = row_detection
        latent[row] = row_latent
    elapsed = time.perf_counter() - started

    return CampaignResult(
        netlist_name=netlist.name,
        faults=fault_list,
        workload_names=[workload.name for workload in workloads],
        workload_cycles=np.array(
            [workload.cycles for workload in workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=severity,
        simulation_seconds=elapsed,
    )
