"""Coverage-driven workload generation (ATPG-lite) — extension.

Campaign cost scales with the workload count, so a compact suite that
still *detects* every detectable fault is valuable.  This module greedily
assembles one: generate candidate constrained-random workloads, simulate
each against the still-undetected fault population (cheap — the machine
count shrinks every round), and keep a candidate only if it observes new
faults, until a target detection coverage or the candidate budget is
reached.

This is test-set compaction in the classic random-ATPG sense:
"detected" means the fault produces any output mismatch, the criterion
test engineers use, independent of the FuSa severity threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.fi.faults import Fault, full_fault_universe
from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator
from repro.sim.waveform import Workload
from repro.sim.workloads import random_workload
from repro.utils.errors import SimulationError
from repro.utils.rng import SeedLike

#: candidate_generator(index) -> Workload
CandidateGenerator = Callable[[int], Workload]


@dataclass
class CompactionResult:
    """Outcome of greedy coverage-driven workload selection."""

    workloads: List[Workload]
    #: detection coverage after each *accepted* workload
    coverage_history: List[float]
    undetected: List[Fault]
    candidates_tried: int

    @property
    def coverage(self) -> float:
        """Final detection coverage."""
        return self.coverage_history[-1] if self.coverage_history else 0.0


def generate_compact_workloads(
    netlist: Netlist,
    target_coverage: float = 0.95,
    candidate_budget: int = 40,
    cycles: int = 100,
    seed: SeedLike = 0,
    faults: Optional[Sequence[Fault]] = None,
    candidate_generator: Optional[CandidateGenerator] = None,
) -> CompactionResult:
    """Greedily select workloads until ``target_coverage`` of faults is
    detected (observed at an output) or the candidate budget runs out.

    Args:
        netlist: Design under test.
        target_coverage: Fraction of the fault universe to detect.
        candidate_budget: Maximum candidates to try.
        cycles: Length of generated candidates.
        seed: Root seed for candidate generation.
        faults: Fault universe (defaults to all stuck-ats).
        candidate_generator: Custom candidate source; defaults to
            constrained-random workloads with varied hold/bias.

    Returns:
        A :class:`CompactionResult` with the selected suite.
    """
    if not 0.0 < target_coverage <= 1.0:
        raise SimulationError(
            f"target coverage {target_coverage} outside (0, 1]"
        )
    fault_list = list(faults) if faults is not None else (
        full_fault_universe(netlist)
    )
    if not fault_list:
        raise SimulationError("empty fault universe")

    if candidate_generator is None:
        def candidate_generator(index: int) -> Workload:
            return random_workload(
                netlist, cycles=cycles, seed=(seed, "testgen", index),
                hold=1 + index % 3, bias=0.3 + 0.1 * (index % 5),
                name=f"compact[{index}]",
            )

    engine = BitParallelSimulator(netlist)
    n_faults = len(fault_list)
    detected = np.zeros(n_faults, dtype=bool)

    selected: List[Workload] = []
    history: List[float] = []
    tried = 0
    for index in range(candidate_budget):
        if detected.mean() >= target_coverage:
            break
        candidate = candidate_generator(index)
        tried += 1

        remaining = np.flatnonzero(~detected)
        fault_nets = np.array(
            [fault_list[i].net_index for i in remaining], dtype=np.intp
        )
        fault_values = np.array(
            [fault_list[i].stuck_at for i in remaining], dtype=np.uint8
        )
        error_cycles, _, _ = engine.run_fault_pass(
            candidate, fault_nets, fault_values
        )
        newly = remaining[error_cycles > 0]
        if len(newly) == 0:
            continue
        detected[newly] = True
        selected.append(candidate)
        history.append(float(detected.mean()))

    return CompactionResult(
        workloads=selected,
        coverage_history=history,
        undetected=[fault_list[i] for i in np.flatnonzero(~detected)],
        candidates_tried=tried,
    )
