"""Fault-injection reports.

The campaign's output mirrors what a commercial fault simulator emits
per workload: one classification per fault — *Dangerous* (a primary
output diverged from the golden run), *Latent* (internal state was
corrupted but no output ever diverged), or *Benign* — plus the
detection latency for dangerous faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List

from repro.fi.faults import Fault


class FaultClass(str, Enum):
    """Outcome of one (fault, workload) experiment."""

    DANGEROUS = "Dangerous"
    LATENT = "Latent"
    BENIGN = "Benign"


@dataclass
class FaultRecord:
    """One fault's outcome under one workload."""

    fault: Fault
    classification: FaultClass
    detection_cycle: int  # -1 when never detected

    @property
    def node_name(self) -> str:
        return self.fault.node_name


@dataclass
class WorkloadReport:
    """All fault outcomes for one workload — the unit Algorithm 1
    consumes (``Report <- FaultInjection(D, workload)``)."""

    workload: str
    records: List[FaultRecord]

    def node_classifications(self) -> Dict[str, FaultClass]:
        """Per-node outcome: a node is Dangerous under a workload when
        any of its stuck-at faults is, Latent when any is latent and
        none dangerous, else Benign."""
        by_node: Dict[str, FaultClass] = {}
        for record in self.records:
            node = record.node_name
            current = by_node.get(node, FaultClass.BENIGN)
            if record.classification is FaultClass.DANGEROUS:
                by_node[node] = FaultClass.DANGEROUS
            elif (record.classification is FaultClass.LATENT
                  and current is not FaultClass.DANGEROUS):
                by_node[node] = FaultClass.LATENT
            else:
                by_node.setdefault(node, current)
        return by_node

    def counts(self) -> Dict[str, int]:
        """Fault-level tallies per classification."""
        tallies = {cls.value: 0 for cls in FaultClass}
        for record in self.records:
            tallies[record.classification.value] += 1
        return tallies

    def coverage(self) -> float:
        """Fraction of faults observed at an output (detection
        coverage, as commercial fault reports define it)."""
        if not self.records:
            return 0.0
        dangerous = sum(
            1 for record in self.records
            if record.classification is FaultClass.DANGEROUS
        )
        return dangerous / len(self.records)


def format_report(report: WorkloadReport, limit: int = 20) -> str:
    """Human-readable summary of one workload report."""
    lines = [
        f"Fault report — workload {report.workload!r}",
        f"  faults: {len(report.records)}  "
        + "  ".join(
            f"{name}: {count}" for name, count in report.counts().items()
        ),
        f"  detection coverage: {report.coverage():.1%}",
    ]
    dangerous = [
        record for record in report.records
        if record.classification is FaultClass.DANGEROUS
    ]
    dangerous.sort(key=lambda record: record.detection_cycle)
    for record in dangerous[:limit]:
        lines.append(
            f"    {record.fault.name:<24} detected @ cycle "
            f"{record.detection_cycle}"
        )
    if len(dangerous) > limit:
        lines.append(f"    ... {len(dangerous) - limit} more")
    return "\n".join(lines)
