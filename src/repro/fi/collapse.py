"""Structural fault collapsing — extension.

Classic fault-simulation speedup: two stuck-at faults are *equivalent*
when no test can distinguish them, so only one representative per
equivalence class needs simulating.  With output-located faults the
exploitable structure is inverter/buffer chains: when a BUF or IV gate
is the **only** reader of its driver's net (and that net is not a
primary output), forcing the driver's output is indistinguishable from
forcing the BUF/IV output (with the polarity flipped through an IV).

:func:`collapse_faults` partitions a fault list into such classes;
:func:`expand_results` scatters per-representative campaign results
back onto the full universe, so collapsing is an internal optimization
with identical observable outcomes (a property the test suite checks
exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fi.faults import Fault
from repro.netlist.netlist import Netlist


@dataclass
class CollapsedUniverse:
    """A fault universe partitioned into equivalence classes."""

    representatives: List[Fault]
    #: index into ``representatives`` for every fault of the original list
    class_of: np.ndarray
    original: List[Fault]

    @property
    def collapse_ratio(self) -> float:
        """Fraction of simulations avoided."""
        if not self.original:
            return 0.0
        return 1.0 - len(self.representatives) / len(self.original)


def _equivalence_key(netlist: Netlist, fault: Fault) -> Tuple[int, int]:
    """Follow single-fanout BUF/IV chains downstream to the canonical
    (net, stuck value) this fault is equivalent to."""
    net_index = fault.net_index
    value = fault.stuck_at
    po_nets = {net for net, _ in netlist.primary_outputs}
    while True:
        net = netlist.nets[net_index]
        if net_index in po_nets or len(net.sinks) != 1:
            break
        sink_gate = netlist.gates[net.sinks[0][0]]
        if sink_gate.cell.name == "BUF":
            net_index = sink_gate.output
        elif sink_gate.cell.name == "IV":
            net_index = sink_gate.output
            value = 1 - value
        else:
            break
    return net_index, value


def collapse_faults(netlist: Netlist,
                    faults: Sequence[Fault]) -> CollapsedUniverse:
    """Partition ``faults`` into structural equivalence classes."""
    classes: Dict[Tuple[int, int], int] = {}
    representatives: List[Fault] = []
    class_of = np.zeros(len(faults), dtype=np.intp)
    for position, fault in enumerate(faults):
        key = _equivalence_key(netlist, fault)
        if key not in classes:
            classes[key] = len(representatives)
            representatives.append(fault)
        class_of[position] = classes[key]
    return CollapsedUniverse(
        representatives=representatives,
        class_of=class_of,
        original=list(faults),
    )


def expand_results(universe: CollapsedUniverse,
                   per_representative: np.ndarray,
                   out: np.ndarray = None) -> np.ndarray:
    """Scatter per-representative result columns onto the full list.

    ``per_representative`` has the representative axis last; the
    returned array has the original-fault axis last.  ``out`` reuses a
    preallocated destination (same leading shape, original-fault axis
    last).
    """
    if out is None:
        return per_representative[..., universe.class_of]
    np.take(per_representative, universe.class_of, axis=-1, out=out)
    return out


def expand_shard(universe: CollapsedUniverse,
                 bounds: Tuple[int, int],
                 per_representative: np.ndarray,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Expand ONE shard of representative columns onto the original
    fault axis.

    The sharded campaign engine simulates representatives
    ``bounds[0]:bounds[1]`` as one unit; this maps that unit's result
    columns directly to the original faults whose equivalence class
    falls inside the shard, so a runner can scatter each unit into the
    full-universe result matrices as it completes — no intermediate
    all-representative matrix, and checkpointed units stay
    representative-sized on disk.

    Returns ``(original_indices, expanded_columns)``: assign
    ``result[..., original_indices] = expanded_columns``.  Shards
    partition the representative axis, so over all shards every
    original fault is written exactly once and the merged result is
    bitwise identical to ``expand_results`` on the concatenated
    representative matrix.
    """
    lo, hi = bounds
    members = (universe.class_of >= lo) & (universe.class_of < hi)
    columns = per_representative[..., universe.class_of[members] - lo]
    return np.flatnonzero(members), columns
