"""Functional observation specifications.

A stuck-at fault is *Dangerous* only when it corrupts an
architecturally visible transaction, not when it wiggles a pin nobody
samples: an address-bus mismatch during a NOP command is invisible to
the SDRAM, and a wrong instruction word is harmless while ``if_valid``
is low.  Commercial FuSa fault classification (and the paper's
"functional errors") follows the same strobed-comparison principle.

An :class:`ObservationSpec` assigns each primary output a *strobe*: the
output participates in golden-vs-faulty comparison only on cycles where
the strobe output is at its active value **in the golden run** (the
golden machine defines when transactions happen).  Outputs without a
strobe are compared every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.errors import SimulationError


@dataclass
class ObservationSpec:
    """Per-output comparison strobes for one design.

    ``strobes`` maps an output name (or a bus prefix covering
    ``prefix_0..prefix_{w-1}``) to ``(strobe_output, active_value)``.
    """

    strobes: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def compile(self, netlist: Netlist) -> "CompiledObservation":
        """Resolve names against a netlist's output list."""
        output_names = netlist.output_names()
        position = {name: i for i, name in enumerate(output_names)}

        strobe_index = np.full(len(output_names), -1, dtype=np.int64)
        strobe_active = np.ones(len(output_names), dtype=np.uint8)
        for target, (strobe, active) in self.strobes.items():
            if strobe not in position:
                raise SimulationError(
                    f"strobe output {strobe!r} not found in design"
                )
            matched = [
                name for name in output_names
                if name == target or name.startswith(target + "_")
            ]
            if not matched:
                raise SimulationError(
                    f"observation target {target!r} matches no output"
                )
            for name in matched:
                strobe_index[position[name]] = position[strobe]
                strobe_active[position[name]] = 1 if active else 0
        return CompiledObservation(
            output_names=output_names,
            strobe_index=strobe_index,
            strobe_active=strobe_active,
        )


@dataclass
class CompiledObservation:
    """Numeric form of an :class:`ObservationSpec` for the engine."""

    output_names: List[str]
    strobe_index: np.ndarray   # per output: strobing output index or -1
    strobe_active: np.ndarray  # per output: strobe's active value

    def compare_mask(self, golden_bits: np.ndarray) -> np.ndarray:
        """Per-output compare-enable for one cycle.

        ``golden_bits`` is the golden machine's output vector (bool per
        output).  Outputs whose strobe is inactive this cycle are
        excluded from the mismatch comparison.
        """
        mask = np.ones(len(self.output_names), dtype=bool)
        gated = self.strobe_index >= 0
        strobe_values = golden_bits[self.strobe_index[gated]]
        mask[gated] = strobe_values == self.strobe_active[gated].astype(bool)
        return mask


#: Observation specs for the three evaluation designs.  Datapath buses
#: are strobed by their transaction-valid signals; control/handshake
#: outputs are always architecturally visible.
DESIGN_OBSERVATION: Dict[str, ObservationSpec] = {
    "sdram_controller": ObservationSpec(strobes={
        # The DRAM samples address/bank/mask pins only while a command
        # is driven (cs_n low); the host samples ba with commands too.
        "a": ("cs_n", 0),
        "ba": ("cs_n", 0),
        "dqm": ("cs_n", 0),
    }),
    "or1200_if": ObservationSpec(strobes={
        # Decode consumes instruction/PC only when the fetch is valid.
        "if_insn": ("if_valid", 1),
        "if_pc": ("if_valid", 1),
        "if_branch_op": ("if_valid", 1),
        "if_nop_op": ("if_valid", 1),
        # The cache samples the fetch address only while requested.
        "icpu_adr": ("icpu_req", 1),
    }),
    "uart": ObservationSpec(strobes={
        # The host consumes the received byte only on rx_valid.
        "rx_data": ("rx_valid", 1),
    }),
    "or1200_icfsm": ObservationSpec(strobes={
        # Memory samples the bus address only during a bus request.
        "biu_adr": ("biu_req", 1),
        "refill_word": ("data_we", 1),
        # The CPU consumes the hit indication only while strobing, and
        # the data array samples the way select only while written.
        "hit": ("ack", 1),
        "way_sel": ("data_we", 1),
    }),
}


def observation_for(netlist: Netlist) -> Optional[ObservationSpec]:
    """The standard observation spec for a known design, else None."""
    return DESIGN_OBSERVATION.get(netlist.name)


#: Per-design Dangerous severity thresholds (fraction of cycles with a
#: functional error).  The paper notes the criticality policy "is
#: contingent upon the unique application context"; these defaults
#: encode each design's tolerance: the fetch stage feeds a pipeline
#: that absorbs isolated wrong fetches (flushes/refetches), so only
#: sustained corruption is dangerous there, while the memory
#: controller's command stream has no such recovery.
DESIGN_SEVERITY: Dict[str, float] = {
    "sdram_controller": 0.20,
    "uart": 0.20,
    "or1200_if": 0.30,
    "or1200_icfsm": 0.20,
}


def severity_for(netlist: Netlist, default: float) -> float:
    """The design's registered severity threshold, else ``default``."""
    return DESIGN_SEVERITY.get(netlist.name, default)
