"""Durable per-workload checkpointing for fault-injection campaigns.

A checkpoint store is a directory holding one ``manifest.json``
describing the campaign configuration plus one ``workload_NNNN.npz``
per *completed* workload pass.  Completion is defined by the atomic
rename in :func:`repro.io.save_workload_checkpoint`: a workload file
either exists in full or not at all, so a campaign killed at any
instant — including mid-write — resumes cleanly from the last whole
workload.

The manifest and every workload file carry a *fingerprint* of the
campaign configuration (netlist, fault universe, workload stimulus
bytes, severity/observation policy, collapse flag).  Resuming against a
store written for any other configuration raises
:class:`~repro.utils.errors.CampaignError` — silently mixing rows from
two different campaigns would corrupt the ground-truth labels the whole
pipeline trains on.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.fi.faults import Fault
from repro.sim.waveform import Workload
from repro.utils.errors import CampaignError, SerializationError

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
#: Manifest format version (independent of the workload-file version).
MANIFEST_VERSION = 1


def campaign_fingerprint(
    netlist_name: str,
    workloads: Sequence[Workload],
    faults: Sequence[Fault],
    severity: float,
    collapse: bool,
    observation_key: str,
) -> str:
    """Deterministic digest of everything that shapes campaign output.

    Workloads hash their stimulus *bytes*, not just their names: two
    suites generated with different seeds share names but produce
    different ground truth, and resuming across them must be refused.
    """
    digest = hashlib.sha256()
    header = {
        "netlist": netlist_name,
        "severity": float(severity),
        "collapse": bool(collapse),
        "observation": observation_key,
        "faults": [
            (fault.node_name, int(fault.gate_index),
             int(fault.net_index),
             int(getattr(fault, "stuck_at", -1)),
             int(getattr(fault, "cycle", -1)))
            for fault in faults
        ],
        "workloads": [
            (workload.name, workload.cycles) for workload in workloads
        ],
    }
    digest.update(json.dumps(header, sort_keys=True).encode("utf-8"))
    for workload in workloads:
        digest.update(np.ascontiguousarray(workload.vectors).tobytes())
    return digest.hexdigest()


class CheckpointStore:
    """Directory-backed checkpoint store for one campaign run."""

    def __init__(self, directory: PathLike, *, fingerprint: str,
                 netlist_name: str, workload_names: Sequence[str],
                 n_faults: int) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.netlist_name = netlist_name
        self.workload_names = list(workload_names)
        self.n_faults = n_faults

    # -- paths ---------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def workload_path(self, index: int) -> Path:
        return self.directory / f"workload_{index:04d}.npz"

    # -- lifecycle -----------------------------------------------------
    def open(self, resume: bool) -> Dict[int, dict]:
        """Prepare the store; return already-completed rows.

        Fresh runs (``resume=False``) require the directory to hold no
        prior manifest — refusing to clobber an existing campaign's
        checkpoints is cheaper than diagnosing a half-mixed result.
        Resumed runs validate the manifest against the current campaign
        and load every intact workload file (a corrupt workload file
        fails loudly rather than being re-simulated behind the
        operator's back).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            if not resume:
                raise CampaignError(
                    f"checkpoint directory {self.directory} already "
                    "holds a campaign manifest — resume it, or point "
                    "at an empty directory"
                )
            self._validate_manifest()
            return self._load_completed()
        if resume:
            raise CampaignError(
                f"nothing to resume: {self.directory} has no "
                f"{MANIFEST_NAME}"
            )
        self._write_manifest()
        return {}

    def record(self, index: int, *, error_cycles: np.ndarray,
               detection_cycle: np.ndarray, latent: np.ndarray,
               elapsed_seconds: float) -> None:
        """Durably persist one completed workload pass."""
        from repro.io import save_workload_checkpoint

        save_workload_checkpoint(
            self.workload_path(index),
            fingerprint=self.fingerprint,
            workload_index=index,
            error_cycles=error_cycles,
            detection_cycle=detection_cycle,
            latent=latent,
            elapsed_seconds=elapsed_seconds,
        )

    # -- internals -----------------------------------------------------
    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "netlist_name": self.netlist_name,
            "workload_names": self.workload_names,
            "n_faults": self.n_faults,
        }
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(json.dumps(payload, indent=1),
                             encoding="utf-8")
        temporary.replace(self.manifest_path)

    def _validate_manifest(self) -> None:
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CampaignError(
                f"checkpoint manifest {self.manifest_path} is corrupt: "
                f"{error}"
            ) from error
        if manifest.get("version") != MANIFEST_VERSION:
            raise CampaignError(
                f"checkpoint manifest {self.manifest_path}: version "
                f"{manifest.get('version')} (this build reads "
                f"{MANIFEST_VERSION})"
            )
        if manifest.get("fingerprint") != self.fingerprint:
            raise CampaignError(
                f"checkpoint directory {self.directory} belongs to a "
                "different campaign (netlist, faults, workloads, or "
                "policy changed) — cannot resume"
            )

    def _load_completed(self) -> Dict[int, dict]:
        from repro.io import load_workload_checkpoint

        completed: Dict[int, dict] = {}
        for index in range(len(self.workload_names)):
            path = self.workload_path(index)
            if not path.exists():
                continue
            try:
                completed[index] = load_workload_checkpoint(
                    path,
                    fingerprint=self.fingerprint,
                    workload_index=index,
                    n_faults=self.n_faults,
                )
            except SerializationError as error:
                raise CampaignError(
                    f"cannot resume: workload checkpoint {path} failed "
                    f"validation ({error}); delete it to re-simulate "
                    "that workload"
                ) from error
        return completed

    def completed_indices(self) -> List[int]:
        """Indices with an intact checkpoint file on disk."""
        return sorted(
            index for index in range(len(self.workload_names))
            if self.workload_path(index).exists()
        )


def observation_key(observation: Optional[object]) -> str:
    """Stable fingerprint component for an observation policy."""
    if observation is None:
        return "all-outputs"
    strobes = getattr(observation, "strobes", None)
    if strobes is not None:
        return json.dumps(sorted(
            (target, list(strobe)) for target, strobe in strobes.items()
        ))
    return repr(observation)
