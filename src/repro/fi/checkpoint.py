"""Durable per-unit checkpointing for fault-injection campaigns.

A checkpoint store is a directory holding one ``manifest.json``
describing the campaign configuration plus one ``.npz`` per *completed*
unit of work.  The unit is ``(workload, fault shard)``: an unsharded
campaign writes the classic one-file-per-workload layout
(``workload_NNNN.npz``), a sharded one writes
``workload_NNNN_shard_SSS.npz`` per shard, so a killed multi-core
campaign resumes at shard granularity.  Completion is defined by the
atomic rename in :func:`repro.io.save_workload_checkpoint`: a unit file
either exists in full or not at all, so a campaign killed at any
instant — including mid-write — resumes cleanly from the last whole
unit.

The manifest and every workload file carry a *fingerprint* of the
campaign configuration (netlist, fault universe, workload stimulus
bytes, severity/observation policy, collapse flag).  Resuming against a
store written for any other configuration raises
:class:`~repro.utils.errors.CampaignError` — silently mixing rows from
two different campaigns would corrupt the ground-truth labels the whole
pipeline trains on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.errors import (
    CampaignError,
    CorruptArtifactError,
    SerializationError,
)
# Campaign identity lives in the repo-wide fingerprint scheme; it is
# re-exported here because checkpoint stores are its oldest consumer.
from repro.utils.fingerprint import campaign_fingerprint

__all__ = [
    "CheckpointStore",
    "campaign_fingerprint",
    "observation_key",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
]

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
#: Manifest format version (independent of the workload-file version).
MANIFEST_VERSION = 1


class CheckpointStore:
    """Directory-backed checkpoint store for one campaign run.

    ``shard_bounds`` is the campaign's fault-shard layout as contiguous
    ``(start, stop)`` pairs; ``None`` (or a single all-covering pair)
    selects the classic unsharded per-workload layout.  The layout is
    recorded in the manifest, and a resume under a *different* layout is
    refused — the unit files would carry incompatible column spans.
    """

    def __init__(self, directory: PathLike, *, fingerprint: str,
                 netlist_name: str, workload_names: Sequence[str],
                 n_faults: int,
                 shard_bounds: Optional[Sequence[Tuple[int, int]]] = None,
                 ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.netlist_name = netlist_name
        self.workload_names = list(workload_names)
        self.n_faults = n_faults
        self.shard_bounds = (
            [(int(lo), int(hi)) for lo, hi in shard_bounds]
            if shard_bounds is not None else [(0, n_faults)]
        )
        #: ``(workload, shard, reason)`` of unit files whose bytes were
        #: torn (truncated mid-kill) and will be re-simulated on resume.
        self.stale_units: List[Tuple[int, int, str]] = []

    @property
    def n_shards(self) -> int:
        return len(self.shard_bounds)

    # -- paths ---------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def unit_path(self, index: int, shard: int = 0) -> Path:
        """Checkpoint file for one (workload, shard) unit."""
        if self.n_shards == 1:
            return self.directory / f"workload_{index:04d}.npz"
        return self.directory / (
            f"workload_{index:04d}_shard_{shard:03d}.npz"
        )

    def workload_path(self, index: int) -> Path:
        """Unsharded-layout file for one workload (legacy name)."""
        return self.unit_path(index, 0)

    # -- lifecycle -----------------------------------------------------
    def open(self, resume: bool) -> Dict[Tuple[int, int], dict]:
        """Prepare the store; return already-completed units.

        The result maps ``(workload_index, shard_index)`` to the loaded
        checkpoint arrays.  Fresh runs (``resume=False``) require the
        directory to hold no prior manifest — refusing to clobber an
        existing campaign's checkpoints is cheaper than diagnosing a
        half-mixed result.  Resumed runs validate the manifest against
        the current campaign (including the shard layout) and load
        every intact unit file.  A unit file with *torn bytes* — the
        truncation signature of a writer killed mid-write — is skipped
        (recorded in :attr:`stale_units`) so the unit is re-simulated;
        a well-formed unit file belonging to a different campaign
        configuration still fails loudly, because silently
        re-simulating over a mismatch would mask an operator error.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            if not resume:
                raise CampaignError(
                    f"checkpoint directory {self.directory} already "
                    "holds a campaign manifest — resume it, or point "
                    "at an empty directory"
                )
            self._validate_manifest()
            return self._load_completed()
        if resume:
            raise CampaignError(
                f"nothing to resume: {self.directory} has no "
                f"{MANIFEST_NAME}"
            )
        self._write_manifest()
        return {}

    def record(self, index: int, shard: int = 0, *,
               error_cycles: np.ndarray,
               detection_cycle: np.ndarray, latent: np.ndarray,
               elapsed_seconds: float) -> None:
        """Durably persist one completed (workload, shard) unit."""
        from repro.io import save_workload_checkpoint

        save_workload_checkpoint(
            self.unit_path(index, shard),
            fingerprint=self.fingerprint,
            workload_index=index,
            error_cycles=error_cycles,
            detection_cycle=detection_cycle,
            latent=latent,
            elapsed_seconds=elapsed_seconds,
        )

    # -- internals -----------------------------------------------------
    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "netlist_name": self.netlist_name,
            "workload_names": self.workload_names,
            "n_faults": self.n_faults,
            "shards": [list(bounds) for bounds in self.shard_bounds],
        }
        from repro.io import atomic_write_text

        atomic_write_text(self.manifest_path,
                          json.dumps(payload, indent=1))

    def _validate_manifest(self) -> None:
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CampaignError(
                f"checkpoint manifest {self.manifest_path} is corrupt: "
                f"{error}"
            ) from error
        if manifest.get("version") != MANIFEST_VERSION:
            raise CampaignError(
                f"checkpoint manifest {self.manifest_path}: version "
                f"{manifest.get('version')} (this build reads "
                f"{MANIFEST_VERSION})"
            )
        if manifest.get("fingerprint") != self.fingerprint:
            raise CampaignError(
                f"checkpoint directory {self.directory} belongs to a "
                "different campaign (netlist, faults, workloads, or "
                "policy changed) — cannot resume"
            )
        # Manifests from unsharded builds carry no "shards" key; they
        # are by construction the single-shard layout.
        stored = [
            (int(lo), int(hi))
            for lo, hi in manifest.get(
                "shards", [[0, self.n_faults]]
            )
        ]
        if stored != self.shard_bounds:
            raise CampaignError(
                f"checkpoint directory {self.directory} was written "
                f"with a different fault-shard layout ({len(stored)} "
                f"shard(s) vs {self.n_shards} now) — resume with the "
                "same --shard-size, or start a fresh directory"
            )

    def _load_completed(self) -> Dict[Tuple[int, int], dict]:
        from repro.io import load_workload_checkpoint

        completed: Dict[Tuple[int, int], dict] = {}
        for index in range(len(self.workload_names)):
            for shard, (lo, hi) in enumerate(self.shard_bounds):
                path = self.unit_path(index, shard)
                if not path.exists():
                    continue
                try:
                    completed[index, shard] = load_workload_checkpoint(
                        path,
                        fingerprint=self.fingerprint,
                        workload_index=index,
                        n_faults=hi - lo,
                    )
                except CorruptArtifactError as error:
                    # Torn write from a killed worker/run: the bytes
                    # are damaged, not mismatched — re-simulate the
                    # unit instead of stranding the whole resume.
                    self.stale_units.append((index, shard, str(error)))
                except SerializationError as error:
                    raise CampaignError(
                        f"cannot resume: unit checkpoint {path} failed "
                        f"validation ({error}); delete it to "
                        "re-simulate that unit"
                    ) from error
        return completed

    def completed_indices(self) -> List[int]:
        """Workload indices whose every shard is checkpointed on disk."""
        return sorted(
            index for index in range(len(self.workload_names))
            if all(
                self.unit_path(index, shard).exists()
                for shard in range(self.n_shards)
            )
        )


def observation_key(observation: Optional[object]) -> str:
    """Stable fingerprint component for an observation policy."""
    if observation is None:
        return "all-outputs"
    strobes = getattr(observation, "strobes", None)
    if strobes is not None:
        return json.dumps(sorted(
            (target, list(strobe)) for target, strobe in strobes.items()
        ))
    return repr(observation)
