"""Resilient campaign execution: sharding, multi-core fan-out,
supervision, retry, checkpoint/resume.

The FI campaign is the expensive, ground-truth-generating stage of the
whole pipeline, so its runner must survive faults in the *harness* as
well as inject them into the DUT — and it must use the whole host,
because fault-simulation throughput is what caps dataset size.
:class:`CampaignRunner` splits the (collapsed) fault universe into
bounded-memory shards and executes each ``(workload, shard)`` pair as
an independent, supervised **unit** of work:

* **Sharding** — ``policy.shard_size`` bounds the faults per unit so
  each unit's ``(n_nets, n_words)`` value matrix stays cache-resident
  (``None``/``"auto"`` sizes it from the netlist; ``0`` disables
  sharding).  Shards are contiguous, so merged results are bitwise
  identical to an unsharded pass.
* **Multi-core fan-out** — ``policy.jobs`` worker processes execute
  units concurrently through a persistent supervised pool
  (:class:`repro.utils.workerpool.WorkerPool`): workers fork once per
  campaign after the engine is built (fork-inherited context: netlists
  carry cell lambdas that cannot pickle, and the pre-built simulator
  rides along copy-on-write), pull units from a dynamic queue so
  stragglers never idle the pool, and acknowledge each result over a
  pipe so a worker death loses at most the unit it held.  ``jobs=1``
  runs everything in-process with behaviour identical to the classic
  serial runner.
* **Worker supervision** — the pool requeues the in-flight unit of a
  dead worker (segfault, OOM kill) and respawns workers under
  ``policy.max_worker_restarts``; liveness is watched via heartbeats
  every ``policy.heartbeat_interval`` seconds.  A *poison unit* — one
  that kills ``policy.poison_threshold`` consecutive host workers — is
  quarantined into the failure ledger (``status="worker_crash"``, with
  the fatal signal/exitcode) instead of aborting the campaign.
* **Timeout** — a unit that hangs past ``policy.timeout`` seconds is
  abandoned (the pass thread is orphaned; a fresh engine is built for
  the next attempt so a zombie pass can never corrupt a retry).
* **Retry with backoff** — failed or hung units are retried up to
  ``policy.retries`` times with jittered exponential backoff
  (:class:`~repro.utils.retry.BackoffPolicy`).
* **Checkpointing** — with ``policy.checkpoint_dir`` set, every
  completed unit is durably written to disk (atomic rename), and
  ``policy.resume=True`` reloads completed units instead of
  re-simulating them: a campaign killed with SIGKILL at unit 15/16
  resumes from unit 16 and produces a result identical to an
  uninterrupted run.
* **Graceful degradation** — a unit that exhausts its retries is
  recorded in the result's failure ledger
  (:class:`~repro.fi.campaign.WorkloadFailure`); the campaign completes
  with partial results instead of discarding the other units.

Kills stay kills: ``KeyboardInterrupt``/``SystemExit`` always
propagate, leaving the checkpoint store intact for a later resume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.fi.campaign import (
    DEFAULT_SEVERITY,
    CampaignResult,
    WorkloadFailure,
)
from repro.fi.checkpoint import (
    CheckpointStore,
    campaign_fingerprint,
    observation_key,
)
from repro.fi.faults import Fault, full_fault_universe
from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator
from repro.sim.waveform import Workload
from repro.utils.errors import CampaignError, SimulationError
from repro.utils.parallel import (
    auto_shard_size,
    fork_context,
    resolve_jobs,
    shard_bounds,
)
from repro.utils.retry import BackoffPolicy, retry_call
from repro.utils.workerpool import PoolPolicy, WorkerPool


class PassTimeout(CampaignError):
    """A unit's fault pass exceeded the runner's timeout."""


@dataclass(frozen=True)
class RunnerPolicy:
    """Resilience and throughput knobs for one campaign run.

    The default policy (no timeout, no retries, no checkpointing, one
    job, no sharding) makes the runner behave exactly like a plain loop
    over the workloads.

    ``jobs`` is the worker-process count (``0`` = all cores);
    ``shard_size`` bounds the faults simulated per unit (``0`` = the
    whole universe in one shard, ``None``/``"auto"`` = sized so each
    shard's value matrix fits in cache).

    The pool-supervision knobs only matter when ``jobs > 1``:
    ``max_worker_restarts`` bounds how many dead workers one campaign
    will respawn, ``heartbeat_interval`` paces worker liveness stamps,
    and ``poison_threshold`` is the consecutive-host-kill count that
    quarantines a unit into the failure ledger as ``worker_crash``.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: Optional[BackoffPolicy] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    jobs: int = 1
    shard_size: Optional[Union[int, str]] = 0
    max_worker_restarts: int = 8
    heartbeat_interval: float = 5.0
    poison_threshold: int = 2

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignError(
                f"timeout {self.timeout} must be positive"
            )
        if self.retries < 0:
            raise CampaignError(f"retries {self.retries} must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise CampaignError(
                "resume requires a checkpoint directory"
            )
        if self.jobs < 0:
            raise CampaignError(f"jobs {self.jobs} must be >= 0")
        if (
            self.backoff is not None
            and self.backoff.max_elapsed is not None
            and self.timeout is not None
            and self.backoff.max_elapsed < self.timeout
        ):
            raise CampaignError(
                f"backoff max_elapsed {self.backoff.max_elapsed}s is "
                f"smaller than one attempt's timeout {self.timeout}s "
                "— the deadline budget could never cover a single try"
            )
        # Pool-supervision knobs: validated eagerly (pre-flight), even
        # though the PoolPolicy is only built when jobs > 1.
        PoolPolicy(
            jobs=self.jobs,
            max_worker_restarts=self.max_worker_restarts,
            heartbeat_interval=self.heartbeat_interval,
            poison_threshold=self.poison_threshold,
        )
        if isinstance(self.shard_size, str):
            if self.shard_size != "auto":
                raise CampaignError(
                    f"shard_size {self.shard_size!r} must be an "
                    "integer, 'auto', or None"
                )
        elif self.shard_size is not None and self.shard_size < 0:
            raise CampaignError(
                f"shard_size {self.shard_size} must be >= 0"
            )


@dataclass
class _UnitOutcome:
    """What one supervised (workload, shard) unit actually did."""

    row: int
    shard: int
    value: Optional[tuple]          # (error_cycles, detection, latent)
    status: str            # "ok" | "error" | "timeout" | "worker_crash"
    attempts: int
    elapsed_seconds: float
    error: str = ""


#: Campaign context inherited by fork workers (netlists are not
#: picklable, so the pool must fork after this is set).
_WORKER_RUNNER: Optional["CampaignRunner"] = None


def _worker_unit(unit: Tuple[int, int]) -> _UnitOutcome:
    """Pool entry point: run one supervised unit in a fork worker."""
    runner = _WORKER_RUNNER
    if runner is None:
        raise CampaignError(
            "campaign worker has no inherited context (requires the "
            "fork start method)"
        )
    return runner._run_unit(*unit)


class CampaignRunner:
    """Supervised executor for one fault-injection campaign.

    Construction performs every pre-flight check (workload and fault
    universe validation, policy resolution, observation compilation,
    fault collapsing, shard planning) so misconfiguration fails before
    any simulation or checkpoint I/O happens.  :meth:`run` then
    executes the (workload x shard) units under the resilience policy
    and assembles the :class:`~repro.fi.campaign.CampaignResult`.
    """

    def __init__(
        self,
        netlist: Netlist,
        workloads: Sequence[Workload],
        faults: Optional[Sequence[Fault]] = None,
        observation="auto",
        severity="auto",
        collapse: bool = False,
        policy: Optional[RunnerPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        from repro.fi.collapse import collapse_faults
        from repro.fi.observation import (
            ObservationSpec,
            observation_for,
            severity_for,
        )

        if not workloads:
            raise SimulationError(
                "campaign needs at least one workload"
            )
        names = [workload.name for workload in workloads]
        duplicates = sorted({
            name for name in names if names.count(name) > 1
        })
        if duplicates:
            raise SimulationError(
                "duplicate workload names shadow each other in "
                f"per-workload reports: {', '.join(duplicates)}"
            )
        empty = [w.name for w in workloads if w.cycles == 0]
        if empty:
            raise SimulationError(
                "zero-cycle workloads have no error rate: "
                + ", ".join(empty)
            )
        if severity == "auto":
            severity = severity_for(netlist, DEFAULT_SEVERITY)
        if not 0.0 <= severity <= 1.0:
            raise SimulationError(
                f"severity {severity} outside [0, 1]"
            )
        fault_list = list(faults) if faults is not None else (
            full_fault_universe(netlist)
        )
        if not fault_list:
            raise SimulationError("campaign needs at least one fault")

        if observation == "auto":
            observation = observation_for(netlist)
        self._observation_key = observation_key(observation)
        self._compiled = (
            observation.compile(netlist)
            if isinstance(observation, ObservationSpec) else None
        )

        self.netlist = netlist
        self.workloads = list(workloads)
        self.faults = fault_list
        self.severity = float(severity)
        self.collapse = collapse
        self.policy = policy or RunnerPolicy()
        self._sleep = sleep

        self._universe = (
            collapse_faults(netlist, fault_list) if collapse else None
        )
        self._simulated = (
            self._universe.representatives
            if self._universe is not None else fault_list
        )
        self._fault_nets = np.array(
            [fault.net_index for fault in self._simulated],
            dtype=np.intp,
        )
        self._fault_values = np.array(
            [fault.stuck_at for fault in self._simulated],
            dtype=np.uint8,
        )
        self._shards = shard_bounds(
            len(self._simulated), self._resolve_shard_size()
        )
        self._engine: Optional[BitParallelSimulator] = None

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def _resolve_shard_size(self) -> int:
        size = self.policy.shard_size
        if size is None or size == "auto":
            return auto_shard_size(self.netlist.n_nets)
        return int(size)

    # -- execution -----------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute the campaign under the resilience policy."""
        store = self._open_store()
        completed: Dict[Tuple[int, int], dict] = (
            store.open(self.policy.resume) if store is not None else {}
        )

        n_workloads = len(self.workloads)
        n_faults = len(self.faults)
        error_cycles = np.zeros((n_workloads, n_faults),
                                dtype=np.int64)
        detection = np.full((n_workloads, n_faults), -1,
                            dtype=np.int64)
        latent = np.zeros((n_workloads, n_faults), dtype=bool)
        arrays = (error_cycles, detection, latent)

        failures: List[Tuple[int, int, WorkloadFailure]] = []
        total_elapsed = 0.0

        pending: List[Tuple[int, int]] = []
        for row in range(n_workloads):
            for shard in range(self.n_shards):
                if (row, shard) in completed:
                    checkpoint = completed[row, shard]
                    self._scatter(arrays, row, shard, (
                        checkpoint["error_cycles"],
                        checkpoint["detection_cycle"],
                        checkpoint["latent"],
                    ))
                    total_elapsed += checkpoint["elapsed_seconds"]
                else:
                    pending.append((row, shard))

        jobs = resolve_jobs(self.policy.jobs)
        if jobs > 1 and len(pending) > 1:
            outcomes = self._parallel_outcomes(pending, jobs)
        else:
            outcomes = (
                self._run_unit(row, shard) for row, shard in pending
            )

        try:
            for outcome in outcomes:
                total_elapsed += outcome.elapsed_seconds
                if outcome.status != "ok":
                    failures.append((
                        outcome.row, outcome.shard,
                        self._failure(outcome),
                    ))
                    continue
                self._scatter(arrays, outcome.row, outcome.shard,
                              outcome.value)
                if store is not None:
                    row_errors, row_detection, row_latent = (
                        outcome.value
                    )
                    store.record(
                        outcome.row, outcome.shard,
                        error_cycles=row_errors,
                        detection_cycle=row_detection,
                        latent=row_latent,
                        elapsed_seconds=outcome.elapsed_seconds,
                    )
        finally:
            # An interrupt mid-iteration must tear the worker pool
            # down *now* (not at GC): closing the generator runs its
            # shutdown path, after which every checkpoint recorded
            # above is durable and the run is resumable.
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()

        return CampaignResult(
            netlist_name=self.netlist.name,
            faults=self.faults,
            workload_names=[w.name for w in self.workloads],
            workload_cycles=np.array(
                [w.cycles for w in self.workloads], dtype=np.int64
            ),
            error_cycles=error_cycles,
            detection_cycle=detection,
            latent=latent,
            severity=self.severity,
            simulation_seconds=total_elapsed,
            failures=[entry[2] for entry in sorted(
                failures, key=lambda entry: (entry[0], entry[1])
            )],
        )

    # -- internals -----------------------------------------------------
    def _scatter(self, arrays, row: int, shard: int, value) -> None:
        """Merge one unit's per-representative columns into the full
        original-fault-axis result matrices (shard-aware expansion)."""
        from repro.fi.collapse import expand_shard

        bounds = self._shards[shard]
        if self._universe is None:
            lo, hi = bounds
            for target, columns in zip(arrays, value):
                target[row, lo:hi] = columns
            return
        for target, columns in zip(arrays, value):
            original, expanded = expand_shard(
                self._universe, bounds, np.asarray(columns)
            )
            target[row, original] = expanded

    def _failure(self, outcome: _UnitOutcome) -> WorkloadFailure:
        workload = self.workloads[outcome.row]
        error = outcome.error
        if self.n_shards > 1:
            lo, hi = self._shards[outcome.shard]
            error = (
                f"shard {outcome.shard} (faults {lo}:{hi}): {error}"
            )
        return WorkloadFailure(
            workload=workload.name,
            status=outcome.status,
            attempts=outcome.attempts,
            elapsed_seconds=outcome.elapsed_seconds,
            error=error,
        )

    def _parallel_outcomes(
        self, pending: Sequence[Tuple[int, int]], jobs: int,
    ):
        """Fan pending units out over the persistent supervised pool.

        Workers fork once, *after* the shared simulation engine is
        built, so every child inherits the full campaign context —
        netlist, stimulus, compiled observation, engine scratch —
        through copy-on-write pages instead of pickling.  Outcomes are
        yielded as acknowledgments arrive so checkpoints land the
        moment results exist.  A worker death (segfault, OOM kill)
        requeues the unit it held and respawns the worker under
        ``policy.max_worker_restarts``; a unit that keeps killing its
        hosts is quarantined as a ``worker_crash`` ledger entry
        instead of aborting the campaign.
        """
        global _WORKER_RUNNER

        if fork_context() is None:
            # No fork on this platform: degrade to in-process execution.
            for row, shard in pending:
                yield self._run_unit(row, shard)
            return

        # Build the engine pre-fork: children inherit the constructed
        # simulator copy-on-write instead of each paying construction.
        self._shared_engine()
        pool_policy = PoolPolicy(
            jobs=jobs,
            max_worker_restarts=self.policy.max_worker_restarts,
            heartbeat_interval=self.policy.heartbeat_interval,
            poison_threshold=self.policy.poison_threshold,
        )
        _WORKER_RUNNER = self
        try:
            with WorkerPool(_worker_unit, pool_policy) as pool:
                for result in pool.run(list(pending)):
                    row, shard = pending[result.index]
                    if result.crash is not None:
                        yield _UnitOutcome(
                            row=row, shard=shard, value=None,
                            status="worker_crash",
                            attempts=max(result.crash.kills, 1),
                            elapsed_seconds=0.0,
                            error=result.crash.describe(),
                        )
                    elif result.error is not None:
                        yield _UnitOutcome(
                            row=row, shard=shard, value=None,
                            status="error", attempts=1,
                            elapsed_seconds=0.0,
                            error=f"campaign worker failed: "
                                  f"{result.error}",
                        )
                    else:
                        yield result.value
        finally:
            _WORKER_RUNNER = None

    def _run_unit(self, row: int, shard: int) -> _UnitOutcome:
        """One supervised unit: retry/timeout around a shard pass."""
        workload = self.workloads[row]
        started = time.perf_counter()
        value, outcome = retry_call(
            lambda: self._attempt(workload, shard),
            retries=self.policy.retries,
            backoff=self.policy.backoff or BackoffPolicy(),
            sleep=self._sleep,
        )
        elapsed = time.perf_counter() - started
        if outcome.succeeded:
            return _UnitOutcome(
                row=row, shard=shard, value=value, status="ok",
                attempts=outcome.attempts, elapsed_seconds=elapsed,
            )
        return _UnitOutcome(
            row=row, shard=shard, value=None,
            status=(
                "timeout"
                if isinstance(outcome.error, PassTimeout) else "error"
            ),
            attempts=outcome.attempts,
            elapsed_seconds=elapsed,
            error=str(outcome.error),
        )

    def _attempt(self, workload: Workload, shard: int):
        """One supervised fault-pass attempt for one unit."""
        if self.policy.timeout is None:
            return self._pass(workload, shard, self._shared_engine())
        # A timed-out pass leaves its worker thread running; never hand
        # that zombie's engine to a retry — build a fresh one per try.
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._pass(
                    workload, shard, BitParallelSimulator(self.netlist)
                )
            except BaseException as error:  # noqa: BLE001 — relayed
                box["error"] = error

        worker = threading.Thread(
            target=target, daemon=True,
            name=f"fi-pass-{workload.name}-s{shard}",
        )
        worker.start()
        worker.join(self.policy.timeout)
        if worker.is_alive():
            raise PassTimeout(
                f"workload {workload.name!r}: fault pass still "
                f"running after {self.policy.timeout}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _pass(self, workload: Workload, shard: int,
              engine: BitParallelSimulator):
        lo, hi = self._shards[shard]
        return engine.run_fault_pass(
            workload,
            self._fault_nets[lo:hi],
            self._fault_values[lo:hi],
            observation=self._compiled,
        )

    def _shared_engine(self) -> BitParallelSimulator:
        if self._engine is None:
            self._engine = BitParallelSimulator(self.netlist)
        return self._engine

    def _open_store(self) -> Optional[CheckpointStore]:
        if self.policy.checkpoint_dir is None:
            return None
        fingerprint = campaign_fingerprint(
            self.netlist.name,
            self.workloads,
            self._simulated,
            self.severity,
            self.collapse,
            self._observation_key,
        )
        return CheckpointStore(
            self.policy.checkpoint_dir,
            fingerprint=fingerprint,
            netlist_name=self.netlist.name,
            workload_names=[w.name for w in self.workloads],
            n_faults=len(self._simulated),
            shard_bounds=self._shards,
        )
