"""Resilient campaign execution: supervision, retry, checkpoint/resume.

The FI campaign is the expensive, ground-truth-generating stage of the
whole pipeline, so its runner must survive faults in the *harness* as
well as inject them into the DUT.  :class:`CampaignRunner` executes
each workload's fault pass as an independent, supervised unit of work:

* **Timeout** — a pass that hangs past ``policy.timeout`` seconds is
  abandoned (the worker thread is orphaned; a fresh engine is built for
  the next attempt so a zombie pass can never corrupt a retry).
* **Retry with backoff** — failed or hung passes are retried up to
  ``policy.retries`` times with jittered exponential backoff
  (:class:`~repro.utils.retry.BackoffPolicy`).
* **Checkpointing** — with ``policy.checkpoint_dir`` set, every
  completed workload is durably written to disk (atomic rename), and
  ``policy.resume=True`` reloads completed rows instead of
  re-simulating them: a campaign killed with SIGKILL at workload 15/16
  resumes from workload 16 and produces a result identical to an
  uninterrupted run.
* **Graceful degradation** — a workload that exhausts its retries is
  recorded in the result's failure ledger
  (:class:`~repro.fi.campaign.WorkloadFailure`); the campaign completes
  with partial results instead of discarding the other workloads.

Kills stay kills: ``KeyboardInterrupt``/``SystemExit`` always
propagate, leaving the checkpoint store intact for a later resume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.fi.campaign import (
    DEFAULT_SEVERITY,
    CampaignResult,
    WorkloadFailure,
)
from repro.fi.checkpoint import (
    CheckpointStore,
    campaign_fingerprint,
    observation_key,
)
from repro.fi.faults import Fault, full_fault_universe
from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator
from repro.sim.waveform import Workload
from repro.utils.errors import CampaignError, SimulationError
from repro.utils.retry import BackoffPolicy, retry_call


class PassTimeout(CampaignError):
    """A workload's fault pass exceeded the runner's timeout."""


@dataclass(frozen=True)
class RunnerPolicy:
    """Resilience knobs for one campaign run.

    The default policy (no timeout, no retries, no checkpointing) makes
    the runner behave exactly like a plain loop over the workloads.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: Optional[BackoffPolicy] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignError(
                f"timeout {self.timeout} must be positive"
            )
        if self.retries < 0:
            raise CampaignError(f"retries {self.retries} must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise CampaignError(
                "resume requires a checkpoint directory"
            )


class CampaignRunner:
    """Supervised executor for one fault-injection campaign.

    Construction performs every pre-flight check (workload and fault
    universe validation, policy resolution, observation compilation,
    fault collapsing) so misconfiguration fails before any simulation
    or checkpoint I/O happens.  :meth:`run` then executes the workload
    passes under the resilience policy and assembles the
    :class:`~repro.fi.campaign.CampaignResult`.
    """

    def __init__(
        self,
        netlist: Netlist,
        workloads: Sequence[Workload],
        faults: Optional[Sequence[Fault]] = None,
        observation="auto",
        severity="auto",
        collapse: bool = False,
        policy: Optional[RunnerPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        from repro.fi.collapse import collapse_faults
        from repro.fi.observation import (
            ObservationSpec,
            observation_for,
            severity_for,
        )

        if not workloads:
            raise SimulationError(
                "campaign needs at least one workload"
            )
        names = [workload.name for workload in workloads]
        duplicates = sorted({
            name for name in names if names.count(name) > 1
        })
        if duplicates:
            raise SimulationError(
                "duplicate workload names shadow each other in "
                f"per-workload reports: {', '.join(duplicates)}"
            )
        empty = [w.name for w in workloads if w.cycles == 0]
        if empty:
            raise SimulationError(
                "zero-cycle workloads have no error rate: "
                + ", ".join(empty)
            )
        if severity == "auto":
            severity = severity_for(netlist, DEFAULT_SEVERITY)
        if not 0.0 <= severity <= 1.0:
            raise SimulationError(
                f"severity {severity} outside [0, 1]"
            )
        fault_list = list(faults) if faults is not None else (
            full_fault_universe(netlist)
        )
        if not fault_list:
            raise SimulationError("campaign needs at least one fault")

        if observation == "auto":
            observation = observation_for(netlist)
        self._observation_key = observation_key(observation)
        self._compiled = (
            observation.compile(netlist)
            if isinstance(observation, ObservationSpec) else None
        )

        self.netlist = netlist
        self.workloads = list(workloads)
        self.faults = fault_list
        self.severity = float(severity)
        self.collapse = collapse
        self.policy = policy or RunnerPolicy()
        self._sleep = sleep

        self._universe = (
            collapse_faults(netlist, fault_list) if collapse else None
        )
        self._simulated = (
            self._universe.representatives
            if self._universe is not None else fault_list
        )
        self._fault_nets = np.array(
            [fault.net_index for fault in self._simulated],
            dtype=np.intp,
        )
        self._fault_values = np.array(
            [fault.stuck_at for fault in self._simulated],
            dtype=np.uint8,
        )
        self._engine: Optional[BitParallelSimulator] = None

    # -- execution -----------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute the campaign under the resilience policy."""
        from repro.fi.collapse import expand_results

        store = self._open_store()
        completed: Dict[int, dict] = (
            store.open(self.policy.resume) if store is not None else {}
        )

        n_workloads = len(self.workloads)
        n_simulated = len(self._simulated)
        error_cycles = np.zeros((n_workloads, n_simulated),
                                dtype=np.int64)
        detection = np.full((n_workloads, n_simulated), -1,
                            dtype=np.int64)
        latent = np.zeros((n_workloads, n_simulated), dtype=bool)
        failures: List[WorkloadFailure] = []
        total_elapsed = 0.0

        for row, workload in enumerate(self.workloads):
            if row in completed:
                checkpoint = completed[row]
                error_cycles[row] = checkpoint["error_cycles"]
                detection[row] = checkpoint["detection_cycle"]
                latent[row] = checkpoint["latent"]
                total_elapsed += checkpoint["elapsed_seconds"]
                continue

            started = time.perf_counter()
            value, outcome = retry_call(
                lambda workload=workload: self._attempt(workload),
                retries=self.policy.retries,
                backoff=self.policy.backoff or BackoffPolicy(),
                sleep=self._sleep,
            )
            elapsed = time.perf_counter() - started
            total_elapsed += elapsed

            if not outcome.succeeded:
                failures.append(WorkloadFailure(
                    workload=workload.name,
                    status=(
                        "timeout"
                        if isinstance(outcome.error, PassTimeout)
                        else "error"
                    ),
                    attempts=outcome.attempts,
                    elapsed_seconds=elapsed,
                    error=str(outcome.error),
                ))
                continue

            row_errors, row_detection, row_latent = value
            error_cycles[row] = row_errors
            detection[row] = row_detection
            latent[row] = row_latent
            if store is not None:
                store.record(
                    row,
                    error_cycles=error_cycles[row],
                    detection_cycle=detection[row],
                    latent=latent[row],
                    elapsed_seconds=elapsed,
                )

        if self._universe is not None:
            error_cycles = expand_results(self._universe, error_cycles)
            detection = expand_results(self._universe, detection)
            latent = expand_results(self._universe, latent)

        return CampaignResult(
            netlist_name=self.netlist.name,
            faults=self.faults,
            workload_names=[w.name for w in self.workloads],
            workload_cycles=np.array(
                [w.cycles for w in self.workloads], dtype=np.int64
            ),
            error_cycles=error_cycles,
            detection_cycle=detection,
            latent=latent,
            severity=self.severity,
            simulation_seconds=total_elapsed,
            failures=failures,
        )

    # -- internals -----------------------------------------------------
    def _open_store(self) -> Optional[CheckpointStore]:
        if self.policy.checkpoint_dir is None:
            return None
        fingerprint = campaign_fingerprint(
            self.netlist.name,
            self.workloads,
            self._simulated,
            self.severity,
            self.collapse,
            self._observation_key,
        )
        return CheckpointStore(
            self.policy.checkpoint_dir,
            fingerprint=fingerprint,
            netlist_name=self.netlist.name,
            workload_names=[w.name for w in self.workloads],
            n_faults=len(self._simulated),
        )

    def _attempt(self, workload: Workload):
        """One supervised fault-pass attempt for one workload."""
        if self.policy.timeout is None:
            return self._pass(workload, self._shared_engine())
        # A timed-out pass leaves its worker thread running; never hand
        # that zombie's engine to a retry — build a fresh one per try.
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._pass(
                    workload, BitParallelSimulator(self.netlist)
                )
            except BaseException as error:  # noqa: BLE001 — relayed
                box["error"] = error

        worker = threading.Thread(
            target=target, daemon=True,
            name=f"fi-pass-{workload.name}",
        )
        worker.start()
        worker.join(self.policy.timeout)
        if worker.is_alive():
            raise PassTimeout(
                f"workload {workload.name!r}: fault pass still "
                f"running after {self.policy.timeout}s"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _pass(self, workload: Workload, engine: BitParallelSimulator):
        return engine.run_fault_pass(
            workload, self._fault_nets, self._fault_values,
            observation=self._compiled,
        )

    def _shared_engine(self) -> BitParallelSimulator:
        if self._engine is None:
            self._engine = BitParallelSimulator(self.netlist)
        return self._engine
