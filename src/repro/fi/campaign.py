"""Fault-injection campaign runner.

A campaign replays every workload against the full fault universe on
the bit-parallel engine (all faults simulate simultaneously, one pass
per workload) and aggregates the per-(fault, workload) outcomes that
Algorithm 1 of the paper turns into node criticality scores and labels.

Classification follows FuSa practice: a fault is *Dangerous* under a
workload when the rate of functionally observed errors (cycles with a
strobed output mismatch over total cycles) meets the campaign's
severity threshold — a permanent fault that corrupts an isolated
transaction out of hundreds is a tolerable glitch, one that derails the
command stream is a functional failure.  A fault that corrupts internal
state without ever reaching an output is *Latent*; everything else is
*Benign*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fi.faults import Fault, full_fault_universe
from repro.fi.report import FaultClass, FaultRecord, WorkloadReport
from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError

#: Default functional-error-rate threshold for the Dangerous class.
DEFAULT_SEVERITY = 0.20


@dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    Matrices are indexed ``[workload, fault]``; per-node views aggregate
    a node's SA0/SA1 pair (a node misbehaves under a workload when any
    of its faults does).
    """

    netlist_name: str
    faults: List[Fault]
    workload_names: List[str]
    workload_cycles: np.ndarray    # int64 (n_workloads,)
    error_cycles: np.ndarray       # int64 (n_workloads, n_faults)
    detection_cycle: np.ndarray    # int64 (n_workloads, n_faults), -1 = never
    latent: np.ndarray             # bool (n_workloads, n_faults)
    severity: float = DEFAULT_SEVERITY
    #: wall-clock seconds spent simulating (for the cost benchmarks)
    simulation_seconds: float = 0.0

    @property
    def n_workloads(self) -> int:
        return len(self.workload_names)

    @property
    def error_rate(self) -> np.ndarray:
        """Per-(workload, fault) functional-error-cycle rate."""
        return self.error_cycles / self.workload_cycles[:, None]

    @property
    def dangerous(self) -> np.ndarray:
        """Bool (n_workloads, n_faults): error rate meets severity."""
        return self.error_rate >= self.severity

    @property
    def observed(self) -> np.ndarray:
        """Bool: at least one functional mismatch occurred."""
        return self.error_cycles > 0

    @property
    def node_names(self) -> List[str]:
        """Distinct node names, in first-appearance (gate) order."""
        seen: Dict[str, None] = {}
        for fault in self.faults:
            seen.setdefault(fault.node_name, None)
        return list(seen)

    def fault_criticality(self) -> np.ndarray:
        """Per-fault score: fraction of workloads where it is dangerous."""
        return self.dangerous.mean(axis=0)

    def node_dangerous_matrix(self) -> np.ndarray:
        """Bool (n_workloads, n_nodes): any-fault-dangerous per node."""
        node_names = self.node_names
        position = {name: i for i, name in enumerate(node_names)}
        out = np.zeros((self.n_workloads, len(node_names)), dtype=bool)
        dangerous = self.dangerous
        for fault_index, fault in enumerate(self.faults):
            out[:, position[fault.node_name]] |= dangerous[:, fault_index]
        return out

    def node_fraction_matrix(self) -> np.ndarray:
        """Float (n_workloads, n_nodes): per workload, the fraction of
        the node's faults (SA0/SA1) that are Dangerous."""
        node_names = self.node_names
        position = {name: i for i, name in enumerate(node_names)}
        totals = np.zeros((self.n_workloads, len(node_names)))
        counts = np.zeros(len(node_names))
        dangerous = self.dangerous
        for fault_index, fault in enumerate(self.faults):
            node = position[fault.node_name]
            totals[:, node] += dangerous[:, fault_index]
            counts[node] += 1
        return totals / counts

    def node_criticality(self) -> Dict[str, float]:
        """Algorithm 1's ``NodeCritic``: per-node criticality score.

        The score averages Dangerous outcomes over both the workload
        suite and the node's fault pair — "the fraction of the time a
        fault in the node leads to functional errors": a node whose
        SA1 breaks every workload but whose SA0 is always tolerated
        scores 0.5.
        """
        scores = self.node_fraction_matrix().mean(axis=0)
        return dict(zip(self.node_names, scores))

    def node_labels(self, threshold: float = 0.5) -> Dict[str, int]:
        """Algorithm 1's ``NodeLabel``: 1 when score >= threshold."""
        return {
            node: int(score >= threshold)
            for node, score in self.node_criticality().items()
        }

    def workload_report(self, workload: str) -> WorkloadReport:
        """Reconstruct the per-workload fault report."""
        try:
            row = self.workload_names.index(workload)
        except ValueError:
            raise SimulationError(
                f"unknown workload {workload!r}"
            ) from None
        dangerous = self.dangerous
        records = []
        for fault_index, fault in enumerate(self.faults):
            if dangerous[row, fault_index]:
                classification = FaultClass.DANGEROUS
            elif self.latent[row, fault_index]:
                classification = FaultClass.LATENT
            else:
                classification = FaultClass.BENIGN
            records.append(FaultRecord(
                fault=fault,
                classification=classification,
                detection_cycle=int(self.detection_cycle[row, fault_index]),
            ))
        return WorkloadReport(workload=workload, records=records)

    def reports(self) -> List[WorkloadReport]:
        """All per-workload reports."""
        return [self.workload_report(name) for name in self.workload_names]


def run_campaign(
    netlist: Netlist,
    workloads: Sequence[Workload],
    faults: Optional[Sequence[Fault]] = None,
    observation="auto",
    severity="auto",
    collapse: bool = False,
) -> CampaignResult:
    """Run the full fault-injection campaign.

    Args:
        netlist: Design under test.
        workloads: Stimulus suite (each replays from reset).
        faults: Fault list; defaults to the full stuck-at universe.
        observation: An :class:`~repro.fi.observation.ObservationSpec`,
            ``None`` to compare every output on every cycle, or
            ``"auto"`` (default) to use the design's registered
            functional-observation spec when one exists.
        severity: Functional-error-rate threshold for Dangerous — a
            float, or ``"auto"`` (default) to use the design's
            registered FuSa policy (falling back to
            :data:`DEFAULT_SEVERITY`).
        collapse: Simulate only one representative per structural
            fault-equivalence class and expand the results — same
            observable outcome, fewer machines (see
            :mod:`repro.fi.collapse`).

    Returns:
        A :class:`CampaignResult` with per-(workload, fault) outcomes.
    """
    from repro.fi.collapse import collapse_faults, expand_results
    from repro.fi.observation import (
        ObservationSpec,
        observation_for,
        severity_for,
    )

    if not workloads:
        raise SimulationError("campaign needs at least one workload")
    if severity == "auto":
        severity = severity_for(netlist, DEFAULT_SEVERITY)
    if not 0.0 <= severity <= 1.0:
        raise SimulationError(f"severity {severity} outside [0, 1]")
    fault_list = list(faults) if faults is not None else (
        full_fault_universe(netlist)
    )
    if not fault_list:
        raise SimulationError("campaign needs at least one fault")

    if observation == "auto":
        observation = observation_for(netlist)
    compiled = (
        observation.compile(netlist)
        if isinstance(observation, ObservationSpec) else None
    )

    universe = collapse_faults(netlist, fault_list) if collapse else None
    simulated = (
        universe.representatives if universe is not None else fault_list
    )

    engine = BitParallelSimulator(netlist)
    fault_nets = np.array([fault.net_index for fault in simulated],
                          dtype=np.intp)
    fault_values = np.array([fault.stuck_at for fault in simulated],
                            dtype=np.uint8)

    n_workloads = len(workloads)
    error_cycles = np.zeros((n_workloads, len(simulated)), dtype=np.int64)
    detection = np.full((n_workloads, len(simulated)), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, len(simulated)), dtype=bool)

    started = time.perf_counter()
    for row, workload in enumerate(workloads):
        row_errors, row_detection, row_latent = engine.run_fault_pass(
            workload, fault_nets, fault_values, observation=compiled
        )
        error_cycles[row] = row_errors
        detection[row] = row_detection
        latent[row] = row_latent
    elapsed = time.perf_counter() - started

    if universe is not None:
        error_cycles = expand_results(universe, error_cycles)
        detection = expand_results(universe, detection)
        latent = expand_results(universe, latent)

    return CampaignResult(
        netlist_name=netlist.name,
        faults=fault_list,
        workload_names=[workload.name for workload in workloads],
        workload_cycles=np.array(
            [workload.cycles for workload in workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=severity,
        simulation_seconds=elapsed,
    )
