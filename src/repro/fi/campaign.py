"""Fault-injection campaign runner.

A campaign replays every workload against the full fault universe on
the bit-parallel engine (all faults simulate simultaneously, one pass
per workload) and aggregates the per-(fault, workload) outcomes that
Algorithm 1 of the paper turns into node criticality scores and labels.

Classification follows FuSa practice: a fault is *Dangerous* under a
workload when the rate of functionally observed errors (cycles with a
strobed output mismatch over total cycles) meets the campaign's
severity threshold — a permanent fault that corrupts an isolated
transaction out of hundreds is a tolerable glitch, one that derails the
command stream is a functional failure.  A fault that corrupts internal
state without ever reaching an output is *Latent*; everything else is
*Benign*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fi.faults import Fault
from repro.fi.report import FaultClass, FaultRecord, WorkloadReport
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError

#: Default functional-error-rate threshold for the Dangerous class.
DEFAULT_SEVERITY = 0.20


@dataclass(frozen=True)
class WorkloadFailure:
    """One failure-ledger entry: a workload whose fault pass exhausted
    its retries (or crashed with retries disabled).

    The campaign still completes — the row for this workload stays at
    its no-error initial state (zero error cycles, detection -1, not
    latent) and is excluded from :attr:`CampaignResult.completed_mask`.
    """

    workload: str
    #: ``"error"`` (the pass raised), ``"timeout"`` (the pass hung), or
    #: ``"worker_crash"`` (the unit was quarantined after repeatedly
    #: killing its host worker processes, or the pool's worker-restart
    #: budget ran out before the unit could run).
    status: str
    attempts: int
    elapsed_seconds: float
    error: str


@dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign.

    Matrices are indexed ``[workload, fault]``; per-node views aggregate
    a node's SA0/SA1 pair (a node misbehaves under a workload when any
    of its faults does).
    """

    netlist_name: str
    faults: List[Fault]
    workload_names: List[str]
    workload_cycles: np.ndarray    # int64 (n_workloads,)
    error_cycles: np.ndarray       # int64 (n_workloads, n_faults)
    detection_cycle: np.ndarray    # int64 (n_workloads, n_faults), -1 = never
    latent: np.ndarray             # bool (n_workloads, n_faults)
    severity: float = DEFAULT_SEVERITY
    #: wall-clock seconds spent simulating (for the cost benchmarks)
    simulation_seconds: float = 0.0
    #: workloads whose pass never completed (graceful degradation)
    failures: List[WorkloadFailure] = field(default_factory=list)

    @property
    def n_workloads(self) -> int:
        return len(self.workload_names)

    @property
    def complete(self) -> bool:
        """True when every workload's fault pass finished."""
        return not self.failures

    @property
    def completed_mask(self) -> np.ndarray:
        """Bool (n_workloads,): workloads with real simulation results."""
        failed = {failure.workload for failure in self.failures}
        return np.array(
            [name not in failed for name in self.workload_names],
            dtype=bool,
        )

    @property
    def error_rate(self) -> np.ndarray:
        """Per-(workload, fault) functional-error-cycle rate."""
        return self.error_cycles / self.workload_cycles[:, None]

    @property
    def dangerous(self) -> np.ndarray:
        """Bool (n_workloads, n_faults): error rate meets severity."""
        return self.error_rate >= self.severity

    @property
    def observed(self) -> np.ndarray:
        """Bool: at least one functional mismatch occurred."""
        return self.error_cycles > 0

    @property
    def node_names(self) -> List[str]:
        """Distinct node names, in first-appearance (gate) order."""
        seen: Dict[str, None] = {}
        for fault in self.faults:
            seen.setdefault(fault.node_name, None)
        return list(seen)

    def fault_criticality(self) -> np.ndarray:
        """Per-fault score: fraction of workloads where it is dangerous."""
        return self.dangerous.mean(axis=0)

    def _fault_node_index(self) -> Tuple[List[str], np.ndarray]:
        """Node names plus the fault -> node-position index array that
        the vectorized per-node aggregations scatter through."""
        node_names = self.node_names
        position = {name: i for i, name in enumerate(node_names)}
        index = np.fromiter(
            (position[fault.node_name] for fault in self.faults),
            dtype=np.intp, count=len(self.faults),
        )
        return node_names, index

    def _node_dangerous_totals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(node, workload) Dangerous-fault counts and per-node
        fault counts, accumulated with one ``np.add.at`` scatter."""
        node_names, index = self._fault_node_index()
        totals = np.zeros((len(node_names), self.n_workloads))
        np.add.at(totals, index, self.dangerous.T)
        counts = np.bincount(index, minlength=len(node_names))
        return totals, counts

    def node_dangerous_matrix(self) -> np.ndarray:
        """Bool (n_workloads, n_nodes): any-fault-dangerous per node."""
        totals, _ = self._node_dangerous_totals()
        return (totals > 0).T

    def node_fraction_matrix(self) -> np.ndarray:
        """Float (n_workloads, n_nodes): per workload, the fraction of
        the node's faults (SA0/SA1) that are Dangerous."""
        totals, counts = self._node_dangerous_totals()
        return (totals / counts[:, None]).T

    def node_criticality(self) -> Dict[str, float]:
        """Algorithm 1's ``NodeCritic``: per-node criticality score.

        The score averages Dangerous outcomes over both the workload
        suite and the node's fault pair — "the fraction of the time a
        fault in the node leads to functional errors": a node whose
        SA1 breaks every workload but whose SA0 is always tolerated
        scores 0.5.
        """
        scores = self.node_fraction_matrix().mean(axis=0)
        return dict(zip(self.node_names, scores))

    def node_labels(self, threshold: float = 0.5) -> Dict[str, int]:
        """Algorithm 1's ``NodeLabel``: 1 when score >= threshold."""
        return {
            node: int(score >= threshold)
            for node, score in self.node_criticality().items()
        }

    def workload_report(self, workload: str) -> WorkloadReport:
        """Reconstruct the per-workload fault report."""
        try:
            row = self.workload_names.index(workload)
        except ValueError:
            raise SimulationError(
                f"unknown workload {workload!r}"
            ) from None
        dangerous = self.dangerous
        records = []
        for fault_index, fault in enumerate(self.faults):
            if dangerous[row, fault_index]:
                classification = FaultClass.DANGEROUS
            elif self.latent[row, fault_index]:
                classification = FaultClass.LATENT
            else:
                classification = FaultClass.BENIGN
            records.append(FaultRecord(
                fault=fault,
                classification=classification,
                detection_cycle=int(self.detection_cycle[row, fault_index]),
            ))
        return WorkloadReport(workload=workload, records=records)

    def reports(self) -> List[WorkloadReport]:
        """All per-workload reports."""
        return [self.workload_report(name) for name in self.workload_names]


def run_campaign(
    netlist: Netlist,
    workloads: Sequence[Workload],
    faults: Optional[Sequence[Fault]] = None,
    observation="auto",
    severity="auto",
    collapse: bool = False,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff=None,
    checkpoint_dir=None,
    resume: bool = False,
    jobs: int = 1,
    shard_size=0,
    max_worker_restarts: int = 8,
    heartbeat_interval: float = 5.0,
    poison_threshold: int = 2,
) -> CampaignResult:
    """Run the full fault-injection campaign.

    Execution is delegated to :class:`repro.fi.runner.CampaignRunner`,
    which supervises each workload's fault pass as an independent unit
    of work.  With the default policy (no timeout, no retries, no
    checkpointing) the behaviour — and the result, bit for bit — is
    that of a plain loop over the workloads.

    Args:
        netlist: Design under test.
        workloads: Stimulus suite (each replays from reset).
        faults: Fault list; defaults to the full stuck-at universe.
        observation: An :class:`~repro.fi.observation.ObservationSpec`,
            ``None`` to compare every output on every cycle, or
            ``"auto"`` (default) to use the design's registered
            functional-observation spec when one exists.
        severity: Functional-error-rate threshold for Dangerous — a
            float, or ``"auto"`` (default) to use the design's
            registered FuSa policy (falling back to
            :data:`DEFAULT_SEVERITY`).
        collapse: Simulate only one representative per structural
            fault-equivalence class and expand the results — same
            observable outcome, fewer machines (see
            :mod:`repro.fi.collapse`).
        timeout: Seconds allowed per fault-pass attempt; ``None``
            (default) never times out.
        retries: Extra attempts per workload after a failed or hung
            pass; a workload that exhausts them lands in the result's
            failure ledger instead of aborting the campaign.
        backoff: :class:`~repro.utils.retry.BackoffPolicy` between
            attempts (default: jittered exponential).
        checkpoint_dir: Directory for durable per-unit checkpoints;
            ``None`` disables checkpointing.
        resume: Load completed units from ``checkpoint_dir`` instead of
            re-simulating them.
        jobs: Worker processes executing (workload x shard) units
            concurrently; ``1`` (default) runs serially in-process,
            ``0`` uses every core.
        shard_size: Faults simulated per unit — ``0`` (default) keeps
            the whole universe in one pass per workload,
            ``None``/``"auto"`` sizes shards so each value matrix fits
            in cache.  Results are bitwise identical for every setting.
        max_worker_restarts: Dead pool workers respawned over the whole
            campaign before the pool is allowed to shrink (only
            meaningful with ``jobs > 1``).
        heartbeat_interval: Seconds between worker liveness stamps; a
            worker silent for several intervals is presumed wedged and
            replaced.
        poison_threshold: Consecutive host-worker kills after which a
            unit is quarantined into the failure ledger as
            ``worker_crash`` instead of crash-looping the pool.

    Returns:
        A :class:`CampaignResult` with per-(workload, fault) outcomes
        and a :attr:`~CampaignResult.failures` ledger for workloads
        that never completed.
    """
    from repro.fi.runner import CampaignRunner, RunnerPolicy

    policy = RunnerPolicy(
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        jobs=jobs,
        shard_size=shard_size,
        max_worker_restarts=max_worker_restarts,
        heartbeat_interval=heartbeat_interval,
        poison_threshold=poison_threshold,
    )
    runner = CampaignRunner(
        netlist,
        workloads,
        faults=faults,
        observation=observation,
        severity=severity,
        collapse=collapse,
        policy=policy,
    )
    return runner.run()
