"""Criticality dataset generation — Algorithm 1 of the paper.

Aggregates per-workload fault reports into per-node criticality scores
— the fraction of the node's fault experiments (its stuck-at pair
across the workload suite) classified Dangerous — and binary
Critical/Non-critical labels against a threshold (the paper uses 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fi.campaign import CampaignResult
from repro.fi.report import FaultClass, WorkloadReport
from repro.utils.errors import SimulationError

#: The paper's criticality threshold: a node is critical when faults in
#: it cause functional errors in at least half the workloads (§3.2.2).
DEFAULT_THRESHOLD = 0.5


@dataclass
class CriticalityDataset:
    """Ground-truth node criticality for one design.

    Attributes:
        design: Netlist name.
        node_names: Node (gate) names, aligned with ``scores``/``labels``.
        scores: Continuous criticality score per node in [0, 1].
        labels: 1 = Critical, 0 = Non-critical.
        threshold: The label cut-off applied to the scores.
        n_workloads: Number of aggregated workloads.
    """

    design: str
    node_names: List[str]
    scores: np.ndarray
    labels: np.ndarray
    threshold: float
    n_workloads: int
    #: per-node fault-experiment counts (workloads x node faults);
    #: enables confidence intervals when provided
    trials: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if not (len(self.node_names) == len(self.scores)
                == len(self.labels)):
            raise SimulationError("dataset arrays are misaligned")

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def critical_fraction(self) -> float:
        """Share of nodes labeled Critical (class balance)."""
        return float(self.labels.mean()) if self.n_nodes else 0.0

    def score_of(self, node_name: str) -> float:
        """Criticality score of one named node."""
        try:
            return float(self.scores[self.node_names.index(node_name)])
        except ValueError:
            raise SimulationError(f"unknown node {node_name!r}") from None

    def label_of(self, node_name: str) -> int:
        """Label (1 = Critical) of one named node."""
        try:
            return int(self.labels[self.node_names.index(node_name)])
        except ValueError:
            raise SimulationError(f"unknown node {node_name!r}") from None

    def confidence_intervals(self, level: float = 0.95):
        """Wilson score intervals for the per-node criticality scores.

        Each score is an empirical fraction of Dangerous outcomes over
        the node's fault experiments (workloads x stuck-at pair); the
        interval quantifies the sampling uncertainty a finite workload
        suite leaves.  Requires ``trials`` (populated by
        :func:`dataset_from_campaign` / :func:`generate_dataset`).

        Returns ``(low, high)`` arrays aligned with ``scores``.
        """
        if self.trials is None:
            raise SimulationError(
                "dataset has no trial counts; rebuild it via "
                "dataset_from_campaign/generate_dataset"
            )
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + level / 2.0))
        n = np.asarray(self.trials, dtype=np.float64)
        p = self.scores
        denominator = 1.0 + z**2 / n
        center = (p + z**2 / (2 * n)) / denominator
        margin = (z / denominator) * np.sqrt(
            p * (1 - p) / n + z**2 / (4 * n**2)
        )
        return np.clip(center - margin, 0.0, 1.0), np.clip(
            center + margin, 0.0, 1.0
        )


def generate_dataset(
    reports: Sequence[WorkloadReport],
    threshold: float = DEFAULT_THRESHOLD,
    design: str = "",
) -> CriticalityDataset:
    """Algorithm 1: reports from N workloads -> scores and labels.

    Follows the paper's pseudocode: walk every (node, label) entry of
    every workload's fault report, accumulate Dangerous counts per node
    (lines 3-10), normalize into a score (line 12), and threshold into
    labels (lines 13-17).  Reports carry one entry per fault, so the
    normalizer is ``N_workloads * faults_per_node``: the score reads as
    "the fraction of the time a fault in this node causes a functional
    error" across the workload suite and the node's stuck-at pair.
    """
    if not reports:
        raise SimulationError("no fault reports supplied")
    node_critic: Dict[str, int] = {}
    node_faults: Dict[str, int] = {}
    node_order: List[str] = []
    for report in reports:                       # lines 3-10
        per_report_faults: Dict[str, int] = {}
        for record in report.records:
            node = record.node_name
            if node not in node_critic:
                node_critic[node] = 0
                node_order.append(node)
            per_report_faults[node] = per_report_faults.get(node, 0) + 1
            if record.classification is FaultClass.DANGEROUS:
                node_critic[node] += 1
        node_faults.update(per_report_faults)

    n_workloads = len(reports)
    scores = np.array([
        node_critic[node] / (n_workloads * node_faults[node])
        for node in node_order
    ])                                           # line 12
    labels = (scores >= threshold).astype(np.int64)  # lines 13-17
    return CriticalityDataset(
        design=design,
        node_names=node_order,
        scores=scores,
        labels=labels,
        threshold=threshold,
        n_workloads=n_workloads,
        trials=np.array([
            n_workloads * node_faults[node] for node in node_order
        ]),
    )


def dataset_from_campaign(
    campaign: CampaignResult,
    threshold: float = DEFAULT_THRESHOLD,
) -> CriticalityDataset:
    """Build the dataset directly from a campaign's matrices.

    Equivalent to ``generate_dataset(campaign.reports(), ...)`` but
    vectorized over the dangerous matrix.
    """
    scores = campaign.node_fraction_matrix().mean(axis=0)
    node_names = campaign.node_names
    fault_counts = {name: 0 for name in node_names}
    for fault in campaign.faults:
        fault_counts[fault.node_name] += 1
    return CriticalityDataset(
        design=campaign.netlist_name,
        node_names=node_names,
        scores=scores,
        labels=(scores >= threshold).astype(np.int64),
        threshold=threshold,
        n_workloads=campaign.n_workloads,
        trials=np.array([
            campaign.n_workloads * fault_counts[name]
            for name in node_names
        ]),
    )
