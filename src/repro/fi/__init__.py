"""Fault injection: stuck-at fault models, the bit-parallel campaign
runner (the Xcelium stand-in), per-workload reports, and Algorithm 1
dataset generation."""

from repro.fi.campaign import (
    CampaignResult,
    WorkloadFailure,
    run_campaign,
)
from repro.fi.runner import CampaignRunner, PassTimeout, RunnerPolicy
from repro.fi.checkpoint import CheckpointStore, campaign_fingerprint
from repro.fi.dataset import (
    DEFAULT_THRESHOLD,
    CriticalityDataset,
    dataset_from_campaign,
    generate_dataset,
)
from repro.fi.collapse import (
    CollapsedUniverse,
    collapse_faults,
    expand_results,
    expand_shard,
)
from repro.fi.analysis import (
    always_latent_faults,
    campaign_summary,
    coverage_by_workload,
    criticality_by_cell_type,
    detection_latency_histogram,
    undetected_faults,
)
from repro.fi.diagnosis import DiagnosisCandidate, FaultDictionary
from repro.fi.eco import (
    DirtyRegion,
    EcoResult,
    EcoTraces,
    compute_dirty_region,
    extract_dirty_cone,
    extract_support_cone,
    run_campaign_with_traces,
    run_eco_campaign,
    run_eco_transient_campaign,
)
from repro.fi.faults import (
    Fault,
    faults_for_nodes,
    full_fault_universe,
    sample_faults,
)
from repro.fi.transient import (
    TransientFault,
    run_transient_campaign,
    transient_fault_universe,
)
from repro.fi.testgen import CompactionResult, generate_compact_workloads
from repro.fi.report import (
    FaultClass,
    FaultRecord,
    WorkloadReport,
    format_report,
)

__all__ = [
    "CampaignResult",
    "WorkloadFailure",
    "run_campaign",
    "CampaignRunner",
    "RunnerPolicy",
    "PassTimeout",
    "CheckpointStore",
    "campaign_fingerprint",
    "DEFAULT_THRESHOLD",
    "CriticalityDataset",
    "dataset_from_campaign",
    "generate_dataset",
    "always_latent_faults",
    "campaign_summary",
    "coverage_by_workload",
    "criticality_by_cell_type",
    "detection_latency_histogram",
    "undetected_faults",
    "DiagnosisCandidate",
    "FaultDictionary",
    "DirtyRegion",
    "EcoResult",
    "EcoTraces",
    "compute_dirty_region",
    "extract_dirty_cone",
    "extract_support_cone",
    "run_campaign_with_traces",
    "run_eco_campaign",
    "run_eco_transient_campaign",
    "CollapsedUniverse",
    "collapse_faults",
    "expand_results",
    "expand_shard",
    "Fault",
    "faults_for_nodes",
    "full_fault_universe",
    "sample_faults",
    "TransientFault",
    "run_transient_campaign",
    "transient_fault_universe",
    "CompactionResult",
    "generate_compact_workloads",
    "FaultClass",
    "FaultRecord",
    "WorkloadReport",
    "format_report",
]
