"""Fault-dictionary diagnosis — extension.

The inverse problem of fault simulation: a part fails in the field
under known workloads; which fault site explains the observed
behaviour?  The classic answer is a *fault dictionary*: the campaign
already computed, per fault, when and how strongly each workload
exposes it — store those signatures and rank candidate faults by
agreement with the observation.

A signature here is the per-workload pair ``(detection_cycle,
error_cycles)``; matching weights first-detection agreement highest
(timing is the sharp discriminator), with the error-volume distance as
the tie-breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fi.campaign import CampaignResult
from repro.utils.errors import SimulationError


@dataclass
class DiagnosisCandidate:
    """One ranked explanation of an observed failure."""

    fault_name: str
    node_name: str
    score: float                 # in [0, 1]; 1 = signature identical
    matching_workloads: int

    def describe(self) -> str:
        return (
            f"{self.fault_name} (score {self.score:.3f}, "
            f"{self.matching_workloads} workloads agree)"
        )


class FaultDictionary:
    """Signature store built from a campaign result."""

    def __init__(self, campaign: CampaignResult):
        self.campaign = campaign
        self.workload_names = list(campaign.workload_names)
        #: (n_workloads, n_faults)
        self._detection = campaign.detection_cycle
        self._errors = campaign.error_cycles

    @property
    def n_faults(self) -> int:
        return len(self.campaign.faults)

    def signature_of(self, fault_name: str) -> Dict[str, Tuple[int, int]]:
        """The stored per-workload signature of a named fault."""
        for index, fault in enumerate(self.campaign.faults):
            if fault.name == fault_name:
                return {
                    workload: (
                        int(self._detection[row, index]),
                        int(self._errors[row, index]),
                    )
                    for row, workload in enumerate(self.workload_names)
                }
        raise SimulationError(f"unknown fault {fault_name!r}")

    def diagnose(
        self,
        observed_detection: Mapping[str, int],
        observed_errors: Optional[Mapping[str, int]] = None,
        top: int = 5,
    ) -> List[DiagnosisCandidate]:
        """Rank candidate faults against an observed failure.

        Args:
            observed_detection: Per-workload first-mismatch cycle
                (-1 when the workload passed).  Workloads absent from
                the mapping are ignored (untested in the field).
            observed_errors: Optional per-workload error-cycle counts,
                used as the secondary criterion.
            top: Number of candidates to return.

        Returns:
            Candidates sorted best-first.  Equivalent faults (identical
            signatures) tie exactly — diagnosis resolves to the
            equivalence class, as fault dictionaries always do.
        """
        rows = []
        detection_values = []
        for workload, cycle in observed_detection.items():
            if workload not in self.workload_names:
                raise SimulationError(
                    f"unknown workload {workload!r}"
                )
            rows.append(self.workload_names.index(workload))
            detection_values.append(int(cycle))
        if not rows:
            raise SimulationError("no observations supplied")

        detection = self._detection[rows]           # (k, n_faults)
        observed_column = np.array(detection_values)[:, None]
        detection_match = (detection == observed_column).mean(axis=0)

        if observed_errors is not None:
            error_rows = []
            error_values = []
            for workload, count in observed_errors.items():
                if workload not in self.workload_names:
                    raise SimulationError(
                        f"unknown workload {workload!r}"
                    )
                error_rows.append(self.workload_names.index(workload))
                error_values.append(int(count))
            errors = self._errors[error_rows].astype(np.float64)
            observed_errors_column = np.array(
                error_values, dtype=np.float64
            )[:, None]
            distance = np.abs(errors - observed_errors_column)
            scale = np.maximum(observed_errors_column, 1.0)
            error_similarity = np.clip(
                1.0 - distance / scale, 0.0, 1.0
            ).mean(axis=0)
        else:
            error_similarity = np.zeros(self.n_faults)

        # Detection timing dominates; error volume breaks ties.
        score = 0.9 * detection_match + 0.1 * error_similarity

        order = np.argsort(-score, kind="stable")[:top]
        matches = (detection == observed_column).sum(axis=0)
        return [
            DiagnosisCandidate(
                fault_name=self.campaign.faults[index].name,
                node_name=self.campaign.faults[index].node_name,
                score=float(score[index]),
                matching_workloads=int(matches[index]),
            )
            for index in order
        ]

    def diagnose_fault_index(self, fault_index: int, top: int = 5,
                             drop_workloads: int = 0,
                             ) -> List[DiagnosisCandidate]:
        """Self-diagnosis helper: feed a stored fault's own signature
        (optionally with the last ``drop_workloads`` observations
        withheld) back into :meth:`diagnose` — used by the tests and
        the example to demonstrate resolution."""
        keep = len(self.workload_names) - drop_workloads
        if keep < 1:
            raise SimulationError("must keep at least one observation")
        observed_detection = {
            workload: int(self._detection[row, fault_index])
            for row, workload in enumerate(self.workload_names[:keep])
        }
        observed_errors = {
            workload: int(self._errors[row, fault_index])
            for row, workload in enumerate(self.workload_names[:keep])
        }
        return self.diagnose(observed_detection, observed_errors, top)
