"""Campaign- and dataset-level analysis views.

Aggregations a safety engineer reads off a campaign before any ML:
criticality by cell type, detection-latency distributions, per-workload
coverage, and the latent-fault list.  Each returns plain row dicts
ready for :func:`repro.reporting.render_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fi.campaign import CampaignResult
from repro.fi.dataset import CriticalityDataset
from repro.utils.errors import SimulationError


def criticality_by_cell_type(
    dataset: CriticalityDataset,
    threshold: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Group node criticality by cell type (the ``ND2`` of
    ``ND2_U393``), sorted most-critical first."""
    threshold = dataset.threshold if threshold is None else threshold
    by_prefix: Dict[str, List[float]] = {}
    for node, score in zip(dataset.node_names, dataset.scores):
        prefix = node.split("_")[0]
        by_prefix.setdefault(prefix, []).append(float(score))
    rows = []
    for prefix, scores in sorted(
        by_prefix.items(), key=lambda item: -float(np.mean(item[1]))
    ):
        values = np.array(scores)
        rows.append({
            "cell type": prefix,
            "nodes": len(scores),
            "mean criticality": round(float(values.mean()), 3),
            "critical share":
                f"{float((values >= threshold).mean()):.0%}",
        })
    return rows


def detection_latency_histogram(
    campaign: CampaignResult,
    edges: Sequence[int] = (10, 50, 100),
) -> Dict[str, int]:
    """Histogram of first-detection cycles over all observed
    (fault, workload) experiments."""
    detected = campaign.detection_cycle[campaign.detection_cycle >= 0]
    histogram: Dict[str, int] = {}
    previous = 0
    for edge in edges:
        histogram[f"{previous}-{edge - 1} cycles"] = int(
            ((detected >= previous) & (detected < edge)).sum()
        )
        previous = edge
    histogram[f">= {previous} cycles"] = int((detected >= previous).sum())
    return histogram


def coverage_by_workload(
    campaign: CampaignResult,
) -> List[Dict[str, object]]:
    """Per-workload detection coverage and Dangerous counts."""
    rows = []
    observed = campaign.observed
    dangerous = campaign.dangerous
    for row, name in enumerate(campaign.workload_names):
        rows.append({
            "workload": name,
            "observed faults": int(observed[row].sum()),
            "dangerous faults": int(dangerous[row].sum()),
            "detection coverage":
                f"{float(observed[row].mean()):.1%}",
        })
    return rows


def always_latent_faults(campaign: CampaignResult) -> List[str]:
    """Faults latent under *every* workload: state corrupted, never
    functionally observed — the blind spots of the workload suite."""
    mask = campaign.latent.all(axis=0)
    return [campaign.faults[i].name for i in np.flatnonzero(mask)]


def undetected_faults(campaign: CampaignResult) -> List[str]:
    """Faults never observed at an output under any workload."""
    mask = ~campaign.observed.any(axis=0)
    return [campaign.faults[i].name for i in np.flatnonzero(mask)]


def campaign_summary(campaign: CampaignResult) -> Dict[str, object]:
    """One-row overview of a campaign."""
    experiments = campaign.error_cycles.size
    if experiments == 0:
        raise SimulationError("empty campaign")
    return {
        "design": campaign.netlist_name,
        "faults": len(campaign.faults),
        "workloads": campaign.n_workloads,
        "experiments": experiments,
        "dangerous rate": f"{float(campaign.dangerous.mean()):.1%}",
        "observed rate": f"{float(campaign.observed.mean()):.1%}",
        "always latent": len(always_latent_faults(campaign)),
        "never observed": len(undetected_faults(campaign)),
        "sim seconds": round(campaign.simulation_seconds, 2),
    }
