"""Incremental fault-criticality re-analysis after netlist edits (ECO).

The production scenario: a designer tweaks a few gates and wants
updated criticality in seconds, not via a full re-campaign.  FI ground
truth costs ~35x what GCN inference costs, so the win is never paying
it twice — this module re-simulates only the faults whose rows can
differ on the edited design and reuses every other row from a cached
baseline, producing a :class:`~repro.fi.campaign.CampaignResult` that
is **bitwise identical** to a full rerun.

Soundness argument (what "clean" means)
---------------------------------------

Let *seeds* be the edited gates (added/removed/changed instances plus
readers of re-driven nets) and ``E`` their forward closure through
flops — every gate with a structural path *from* an edit.  Gates
outside ``E`` have identical cell/pin structure and all fanins outside
``E`` (the closure is forward-closed), so by induction over time and
topology their value traces — golden *and* any faulty lane whose
injection site is outside ``E`` — are identical in both designs.

A fault row can therefore change only if the fault can *reach* an
output whose comparison changed: an output driven from inside ``E``
(its golden trace moved), an added/removed/re-driven port, or an
output *strobed* by such a port (compare masks are taken from the
golden strobe trace).  A fault also changes if it reaches ``E`` at all
(latent state accounting inside ``E`` may shift).  Hence::

    dirty(f)  <=>  gate(f) ∈ fanin_closure(E ∪ drivers(affected outputs))

computed **symmetrically on both the old and the new design** (the old
view covers removed gates/ports, the new view added ones) and unioned
by node name.  Everything outside that set keeps its cached row.

Refusal conditions
------------------

ECO refuses (typed :class:`~repro.utils.errors.EcoError`) rather than
silently merging when the primary-input name sets differ, the baseline
was computed for a different netlist/workload suite (checkpoint-store
baselines are verified against the campaign fingerprint), the baseline
is incomplete (failed workloads or missing checkpoint units), or the
two designs resolve to different observation policies.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.fi.campaign import (
    DEFAULT_SEVERITY,
    CampaignResult,
    WorkloadFailure,
)
from repro.fi.checkpoint import (
    MANIFEST_NAME,
    CheckpointStore,
    observation_key,
)
from repro.utils.fingerprint import campaign_fingerprint
from repro.fi.faults import Fault, full_fault_universe
from repro.netlist.diff import NetlistDiff, diff_netlists
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import EcoError

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSR cone closures
# ----------------------------------------------------------------------
def _closure(indptr: np.ndarray, indices: np.ndarray,
             seeds: Iterable[int], n_gates: int) -> np.ndarray:
    """Reachable-set BFS over one CSR direction (the ``hop_levels``
    frontier-gather pattern): bool mask of every gate reachable from
    ``seeds``, seeds included."""
    reached = np.zeros(n_gates, dtype=bool)
    frontier = np.unique(np.fromiter(seeds, dtype=np.int64))
    if frontier.size == 0:
        return reached
    reached[frontier] = True
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all frontier rows' neighbours in one vectorized shot.
        row_offset = np.repeat(np.cumsum(counts) - counts, counts)
        gather = np.repeat(starts, counts) + (
            np.arange(total) - row_offset
        )
        neighbours = indices[gather]
        fresh = np.unique(neighbours[~reached[neighbours]])
        reached[fresh] = True
        frontier = fresh
    return reached


def _forward_closure(netlist: Netlist,
                     seeds: Iterable[int]) -> np.ndarray:
    adjacency = netlist.gate_adjacency()
    return _closure(adjacency.fanout_indptr, adjacency.fanout_indices,
                    seeds, netlist.n_gates)


def _backward_closure(netlist: Netlist,
                      seeds: Iterable[int]) -> np.ndarray:
    adjacency = netlist.gate_adjacency()
    return _closure(adjacency.fanin_indptr, adjacency.fanin_indices,
                    seeds, netlist.n_gates)


# ----------------------------------------------------------------------
# Dirty-region computation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirtyRegion:
    """Fault-classification result for one netlist edit.

    ``dirty_nodes`` is the union (by canonical node name, over both the
    old and new design views) of the fanin support cones of the edit's
    fanout observation cones — every fault on a node *outside* it is
    guaranteed to produce a bitwise-identical campaign row on the
    edited design.  ``affected_outputs`` are the output ports whose
    comparison semantics may have changed; ``clean_outputs`` are the
    new design's remaining ports (useful for cheap post-ECO
    equivalence spot checks via ``check_equivalence(outputs=...)``).
    """

    dirty_nodes: FrozenSet[str]
    affected_outputs: Tuple[str, ...]
    clean_outputs: Tuple[str, ...]
    n_old_gates: int
    n_new_gates: int

    @property
    def n_dirty(self) -> int:
        return len(self.dirty_nodes)

    @property
    def dirty_fraction(self) -> float:
        """Dirty share of the edited design's gates."""
        return self.n_dirty / max(self.n_new_gates, 1)

    def is_dirty(self, node_name: str) -> bool:
        return node_name in self.dirty_nodes

    def summary(self) -> str:
        return (
            f"{self.n_dirty}/{self.n_new_gates} nodes dirty "
            f"({100.0 * self.dirty_fraction:.1f}%), "
            f"{len(self.affected_outputs)} affected / "
            f"{len(self.clean_outputs)} clean outputs"
        )


def _seed_gates(netlist: Netlist, diff: NetlistDiff,
                view: str) -> Set[int]:
    """Edit-seed gate indices for one design view ("old" or "new")."""
    seeds: Set[int] = set()
    exclusive = (
        diff.removed_gates if view == "old" else diff.added_gates
    )
    for instance in exclusive:
        seeds.add(netlist.gate_by_instance(instance).index)
    for change in diff.changed_gates:
        seeds.add(netlist.gate_by_instance(change.instance).index)
    # A re-driven net changes what its readers see; the new driving
    # gate (when the driver is a gate, not a PI) is itself an edit.
    for net_name in diff.redriven_nets:
        net = netlist.nets[netlist.net_index(net_name)]
        if net.driver is not None:
            seeds.add(net.driver)
        for sink_gate, _ in net.sinks:
            seeds.add(sink_gate)
    pi_delta = (
        diff.removed_inputs if view == "old" else diff.added_inputs
    )
    for net_name in pi_delta:
        net = netlist.nets[netlist.net_index(net_name)]
        for sink_gate, _ in net.sinks:
            seeds.add(sink_gate)
    return seeds


def _view_dirty(netlist: Netlist, diff: NetlistDiff, view: str,
                observation) -> Tuple[Set[str], Set[str]]:
    """(dirty node names, affected output ports) for one design view."""
    from repro.fi.observation import ObservationSpec

    seeds = _seed_gates(netlist, diff, view)
    port_delta: Set[str] = set(diff.redriven_outputs)
    port_delta.update(
        diff.removed_outputs if view == "old" else diff.added_outputs
    )

    forward = _forward_closure(netlist, seeds)

    # Outputs whose *golden* trace (or existence) changed in this view.
    golden_changed: Set[str] = set(port_delta)
    port_driver: Dict[str, Optional[int]] = {}
    for net, port in netlist.primary_outputs:
        driver = netlist.nets[net].driver
        port_driver[port] = driver
        if driver is not None and forward[driver]:
            golden_changed.add(port)

    # Strobe coupling: an output compared under a strobe whose golden
    # trace changed gets a different compare mask even when its own
    # driver is untouched.
    affected: Set[str] = set(golden_changed)
    if isinstance(observation, ObservationSpec):
        compiled = observation.compile(netlist)
        for position, name in enumerate(compiled.output_names):
            strobe = compiled.strobe_index[position]
            if strobe >= 0 and (
                compiled.output_names[int(strobe)] in golden_changed
            ):
                affected.add(name)

    anchors: Set[int] = {
        index for index in np.flatnonzero(forward)
    }
    for port in affected:
        driver = port_driver.get(port)
        if driver is not None:
            anchors.add(driver)
    dirty_mask = _backward_closure(netlist, anchors)
    dirty_names = {
        netlist.gates[index].node_name
        for index in np.flatnonzero(dirty_mask)
    }
    return dirty_names, affected


def compute_dirty_region(
    old: Netlist,
    new: Netlist,
    diff: Optional[NetlistDiff] = None,
    observation="auto",
) -> DirtyRegion:
    """Classify every node as clean or dirty for an old->new edit.

    The closures run symmetrically on both designs (removed logic only
    exists in the old view, added logic only in the new) and the dirty
    node-name sets are unioned, so the result is sound for reusing old
    campaign rows *and* for deciding which new-design rows to
    re-simulate.
    """
    from repro.fi.observation import observation_for

    if diff is None:
        diff = diff_netlists(old, new)

    if diff.is_empty:
        return DirtyRegion(
            dirty_nodes=frozenset(),
            affected_outputs=(),
            clean_outputs=tuple(new.output_names()),
            n_old_gates=old.n_gates,
            n_new_gates=new.n_gates,
        )

    dirty_nodes: Set[str] = set()
    affected_ports: Set[str] = set()
    for view, netlist in (("old", old), ("new", new)):
        spec = (
            observation_for(netlist) if observation == "auto"
            else observation
        )
        names, affected = _view_dirty(netlist, diff, view, spec)
        dirty_nodes |= names
        affected_ports |= affected

    return DirtyRegion(
        dirty_nodes=frozenset(dirty_nodes),
        affected_outputs=tuple(sorted(affected_ports)),
        clean_outputs=tuple(
            name for name in new.output_names()
            if name not in affected_ports
        ),
        n_old_gates=old.n_gates,
        n_new_gates=new.n_gates,
    )


# ----------------------------------------------------------------------
# Baseline resolution
# ----------------------------------------------------------------------
def _fault_key(fault) -> Tuple[str, int, int]:
    """Identity of a fault across designs: node name plus the stuck
    value (stuck-at) or injection cycle (transient)."""
    return (
        fault.node_name,
        int(getattr(fault, "stuck_at", -1)),
        int(getattr(fault, "cycle", -1)),
    )


def _check_interfaces(old: Netlist, new: Netlist,
                      workloads: Sequence[Workload]) -> None:
    old_pis, new_pis = set(old.input_names()), set(new.input_names())
    if old_pis != new_pis:
        raise EcoError(
            "ECO requires identical primary-input name sets; designs "
            f"differ on {sorted(old_pis ^ new_pis)[:6]} — run a full "
            "campaign on the edited design instead"
        )
    for workload in workloads:
        if set(workload.input_names) != new_pis:
            raise EcoError(
                f"workload {workload.name!r} does not drive this "
                "design's primary inputs — it belongs to a different "
                "interface"
            )


def _remap_workloads(netlist: Netlist,
                     workloads: Sequence[Workload]) -> List[Workload]:
    """Re-order stimulus columns onto ``netlist``'s PI declaration
    order (the :func:`check_equivalence` idiom) — the bit-parallel
    engine requires exact input-name order."""
    targets = netlist.input_names()
    remapped: List[Workload] = []
    for workload in workloads:
        if list(workload.input_names) == targets:
            remapped.append(workload)
            continue
        columns = [workload.input_names.index(n) for n in targets]
        remapped.append(Workload(
            name=workload.name,
            input_names=targets,
            vectors=workload.vectors[:, columns],
        ))
    return remapped


# ----------------------------------------------------------------------
# dirty-cone extraction (the wall-clock win)
# ----------------------------------------------------------------------
def _rewire_cone_input(sub: Netlist, gate_output_net: int,
                       position: int, new_net: int) -> None:
    """Patch a forward-referenced input (flop state feedback) after its
    driver exists — the :mod:`repro.circuits.fsm` placeholder idiom."""
    gate_index = sub.nets[gate_output_net].driver
    gate = sub.gates[gate_index]
    stale = gate.inputs[position]
    sub.nets[stale].sinks.remove((gate_index, position))
    inputs = list(gate.inputs)
    inputs[position] = new_net
    gate.inputs = tuple(inputs)
    sub.nets[new_net].sinks.append((gate_index, position))
    sub.invalidate_structure()


def extract_dirty_cone(netlist: Netlist, fault_nodes: Iterable[str],
                       observation=None):
    """The induced sub-design on which every dirty fault's campaign row
    is bitwise-identical to its full-design row.

    The bit-parallel engine's wall clock scales with ``nets x cycles``
    (per-net dispatch dominates; the fault words are one machine-wide
    array op), so re-simulating 3% of the faults on the *full* netlist
    saves almost nothing.  The actual ECO speedup comes from simulating
    them on this cone instead: the union of

    * the dirty gates' fanout **observation cones** — every gate,
      flip-flop, and output port a dirty fault can corrupt (outputs
      outside it compare equal by construction, flops outside it cannot
      go latent), and
    * the fanin **support cones** of all of the above — everything
      needed to reproduce their golden traces exactly, plus the support
      of any strobe port observing a retained output (the compare mask
      is taken from the golden strobe trace).

    Net/port/instance names are preserved, so faults and workloads
    remap by name.  Returns ``(sub_netlist, sub_observation)``; when
    the cone covers the whole design the originals are returned
    unchanged.
    """
    from repro.fi.observation import ObservationSpec

    index_of = {gate.node_name: gate.index for gate in netlist.gates}
    seeds = [index_of[name] for name in fault_nodes
             if name in index_of]
    forward = _forward_closure(netlist, seeds)

    compiled = (
        observation.compile(netlist)
        if isinstance(observation, ObservationSpec) else None
    )
    port_net = {port: net for net, port in netlist.primary_outputs}
    anchors: Set[int] = set(np.flatnonzero(forward).tolist())
    forced_pi_ports: Set[str] = set()
    while True:
        cone = _backward_closure(netlist, anchors)
        grown = False
        if compiled is not None:
            position = {
                name: i for i, name in enumerate(compiled.output_names)
            }
            for net, port in netlist.primary_outputs:
                driver = netlist.nets[net].driver
                if driver is None or not cone[driver]:
                    continue
                strobe = int(compiled.strobe_index[position[port]])
                if strobe < 0:
                    continue
                strobe_port = compiled.output_names[strobe]
                strobe_driver = netlist.nets[
                    port_net[strobe_port]
                ].driver
                if strobe_driver is None:
                    forced_pi_ports.add(strobe_port)
                elif not cone[strobe_driver]:
                    anchors.add(strobe_driver)
                    grown = True
        if not grown:
            break
    if bool(cone.all()):
        return netlist, observation

    sub = _materialize_cone(netlist, cone, forced_pi_ports)
    return sub, _filter_observation(observation,
                                    sub.output_names())


def _materialize_cone(netlist: Netlist, cone: np.ndarray,
                      forced_pi_ports: Set[str],
                      retained_ports: Optional[Set[str]] = None,
                      ) -> Netlist:
    """Build the induced sub-netlist for a cone mask, preserving net,
    port, and instance names.  ``retained_ports`` restricts which
    gate-driven output ports survive (``None`` keeps every mapped one);
    PI-bound ports survive only when listed in ``forced_pi_ports``."""
    from repro.netlist.cells import FEEDBACK_PORTS

    port_net = {port: net for net, port in netlist.primary_outputs}
    needed_nets: Set[int] = set()
    cone_indices = [int(i) for i in np.flatnonzero(cone)]
    for index in cone_indices:
        gate = netlist.gates[index]
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        wired = gate.inputs[:-1] if feedback else gate.inputs
        needed_nets.update(wired)
    for port in forced_pi_ports:
        needed_nets.add(port_net[port])

    sub = Netlist(netlist.name)
    net_map: Dict[int, int] = {}
    for name in netlist.input_names():
        index = netlist.net_index(name)
        if index in needed_nets:
            net_map[index] = sub.add_input(name)

    deferred: List[Tuple[int, int, int]] = []
    for gate_index in netlist.topological_order():
        if not cone[gate_index]:
            continue
        gate = netlist.gates[gate_index]
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        wired = gate.inputs[:-1] if feedback else gate.inputs
        inputs: List[int] = []
        for position, net in enumerate(wired):
            mapped = net_map.get(net)
            if mapped is None:
                # Flop data pin wired to a later gate (state
                # feedback): placeholder now, rewired below.
                deferred.append((gate_index, position, net))
                mapped = 0
            inputs.append(mapped)
        output = sub.add_gate(
            gate.cell.name, inputs, instance=gate.instance,
            output_name=netlist.nets[gate.output].name,
        )
        net_map[gate.output] = output
    for gate_index, position, net in deferred:
        _rewire_cone_input(
            sub, net_map[netlist.gates[gate_index].output],
            position, net_map[net],
        )

    for net, port in netlist.primary_outputs:
        mapped = net_map.get(net)
        if mapped is None:
            continue
        if netlist.nets[net].driver is None:
            # PI-bound ports can never mismatch; keep strobes only.
            if port not in forced_pi_ports:
                continue
        elif retained_ports is not None and port not in retained_ports:
            continue
        sub.add_output(mapped, port)
    return sub


def _filter_observation(observation, retained_names: Iterable[str]):
    """Restrict an observation spec to the strobes whose targets match
    at least one retained output name."""
    from repro.fi.observation import ObservationSpec

    if not isinstance(observation, ObservationSpec):
        return observation
    names = list(retained_names)
    return ObservationSpec(strobes={
        target: value
        for target, value in observation.strobes.items()
        if any(name == target or name.startswith(target + "_")
               for name in names)
    })


def _cone_faults(sub: Netlist, faults: Sequence) -> List:
    """Rebind faults onto the cone sub-netlist by node name."""
    from repro.fi.transient import TransientFault

    by_name = {gate.node_name: gate for gate in sub.gates}
    rebuilt: List = []
    for fault in faults:
        gate = by_name[fault.node_name]
        if hasattr(fault, "stuck_at"):
            rebuilt.append(Fault(
                gate_index=gate.index, net_index=gate.output,
                node_name=fault.node_name, stuck_at=fault.stuck_at,
            ))
        else:
            rebuilt.append(TransientFault(
                gate_index=gate.index, net_index=gate.output,
                node_name=fault.node_name, cycle=fault.cycle,
            ))
    return rebuilt


def extract_support_cone(
    new: Netlist,
    diff: NetlistDiff,
    observation,
    fault_nodes: Iterable[str],
    affected_ports: Iterable[str],
):
    """The sub-design on which every dirty fault's effect on the
    *affected* outputs and *affected* flops replays exactly.

    Unlike :func:`extract_dirty_cone` (which chases each dirty fault's
    full forward observation cone — design-wide as soon as one dirty
    gate has global fanout), this cone is assembled purely from
    **backward** support closures: the fanin cones of the affected
    output drivers, the affected flops (those forward of the edit,
    whose end-state feeds the latent classification), the strobes
    observing any retained affected output, and the dirty fault gates
    themselves.  Clean outputs and clean flops are *not* reproduced —
    the trace-merge path takes their mismatch contributions from the
    baseline's recorded traces instead.

    Returns ``(sub, sub_spec, retained_affected, affected_flops)``:
    the sub-netlist, its restricted observation spec, the affected
    ports it retains as outputs, and the node names of the affected
    flops (all present in the cone).
    """
    from repro.fi.observation import ObservationSpec

    port_net = {port: net for net, port in new.primary_outputs}
    seeds = _seed_gates(new, diff, "new")
    forward = _forward_closure(new, seeds)
    affected_flops = [
        new.gates[int(index)].node_name
        for index in np.flatnonzero(forward)
        if new.gates[int(index)].cell.sequential
    ]

    index_of = {gate.node_name: gate.index for gate in new.gates}
    anchors: Set[int] = {
        index_of[name] for name in fault_nodes if name in index_of
    }
    anchors.update(index_of[name] for name in affected_flops)

    retained: Set[str] = set()
    forced_pi_ports: Set[str] = set()
    for port in affected_ports:
        net = port_net.get(port)
        if net is None:
            continue  # removed port — only the old design has it
        driver = new.nets[net].driver
        if driver is None:
            # PI-bound ports can never mismatch in any machine.
            continue
        anchors.add(driver)
        retained.add(port)

    if isinstance(observation, ObservationSpec):
        # Compare masks come from golden strobe traces: every strobe
        # observing a retained output needs its port and support in the
        # cone (strobes can chain, hence the fixpoint).
        changed = True
        while changed:
            changed = False
            for target, (strobe, _) in observation.strobes.items():
                applies = any(
                    name == target or name.startswith(target + "_")
                    for name in retained
                )
                if not applies or strobe in retained:
                    continue
                if strobe in forced_pi_ports:
                    continue
                strobe_net = port_net[strobe]
                driver = new.nets[strobe_net].driver
                if driver is None:
                    forced_pi_ports.add(strobe)
                else:
                    anchors.add(driver)
                    retained.add(strobe)
                changed = True

    cone = _backward_closure(new, anchors)
    sub = _materialize_cone(new, cone, forced_pi_ports, retained)
    sub_spec = _filter_observation(observation, sub.output_names())
    retained_affected = {
        port for port in affected_ports if port in retained
    }
    return sub, sub_spec, retained_affected, affected_flops


# ----------------------------------------------------------------------
# Baseline mismatch traces (the trace-merge fast path's fuel)
# ----------------------------------------------------------------------
ECO_TRACES_NAME = "eco_traces.npz"


@dataclass
class EcoTraces:
    """Per-output / per-flop mismatch traces of a baseline campaign.

    Recorded by :func:`run_campaign_with_traces`: for every workload,
    the strobe-gated golden-vs-faulty mismatch words of each output on
    each cycle, and each flop's end-of-run state-corruption words.
    They let :func:`run_eco_campaign` rebuild a dirty fault's full row
    from (a) the baseline's clean-output/clean-flop contributions —
    provably unchanged by the edit — plus (b) a fresh simulation of
    only the affected-support cone, which is what turns "re-simulate 4%
    of the faults" into an actual wall-clock win on designs where dirty
    gates have global fanout.
    """

    fingerprint: str
    netlist_name: str
    workload_names: List[str]
    output_names: List[str]
    flop_names: List[str]
    fault_nodes: List[str]
    fault_stuck: np.ndarray        # int8 per fault
    output_diff: List[np.ndarray]  # per workload (cycles, outs, words)
    flop_end_diff: List[np.ndarray]  # per workload (flops, words)

    def fault_keys(self) -> List[Tuple[str, int, int]]:
        return [
            (node, int(stuck), -1)
            for node, stuck in zip(self.fault_nodes, self.fault_stuck)
        ]

    def save(self, path: PathLike) -> None:
        payload: Dict[str, np.ndarray] = {
            "fingerprint": np.array(self.fingerprint),
            "netlist_name": np.array(self.netlist_name),
            "workload_names": np.array(self.workload_names, dtype="U"),
            "output_names": np.array(self.output_names, dtype="U"),
            "flop_names": np.array(self.flop_names, dtype="U"),
            "fault_nodes": np.array(self.fault_nodes, dtype="U"),
            "fault_stuck": np.asarray(self.fault_stuck, dtype=np.int8),
        }
        for row, array in enumerate(self.output_diff):
            payload[f"output_diff_{row}"] = array
        for row, array in enumerate(self.flop_end_diff):
            payload[f"flop_end_diff_{row}"] = array
        # Uncompressed on purpose: the sidecar is read on every ECO
        # run and zlib decompression would dominate the warm path.
        np.savez(str(path), **payload)

    @classmethod
    def load(cls, path: PathLike) -> "EcoTraces":
        try:
            with np.load(str(path)) as archive:
                workload_names = [
                    str(name) for name in archive["workload_names"]
                ]
                return cls(
                    fingerprint=str(archive["fingerprint"]),
                    netlist_name=str(archive["netlist_name"]),
                    workload_names=workload_names,
                    output_names=[
                        str(name) for name in archive["output_names"]
                    ],
                    flop_names=[
                        str(name) for name in archive["flop_names"]
                    ],
                    fault_nodes=[
                        str(name) for name in archive["fault_nodes"]
                    ],
                    fault_stuck=archive["fault_stuck"],
                    output_diff=[
                        archive[f"output_diff_{row}"]
                        for row in range(len(workload_names))
                    ],
                    flop_end_diff=[
                        archive[f"flop_end_diff_{row}"]
                        for row in range(len(workload_names))
                    ],
                )
        except (KeyError, ValueError, OSError, zipfile.BadZipFile
               ) as error:
            raise EcoError(
                f"ECO trace sidecar {path} is corrupt or truncated: "
                f"{error}"
            ) from error


def run_campaign_with_traces(
    netlist: Netlist,
    workloads: Sequence[Workload],
    faults: Optional[Sequence[Fault]] = None,
    observation="auto",
    severity="auto",
    *,
    checkpoint_dir: Optional[PathLike] = None,
):
    """Serial full campaign that additionally records ECO reuse traces.

    Returns ``(result, traces)`` where ``result`` is bitwise identical
    to ``run_campaign(...)`` under the default serial policy and
    ``traces`` is the :class:`EcoTraces` sidecar that unlocks
    :func:`run_eco_campaign`'s trace-merge fast path.  With
    ``checkpoint_dir`` set, the campaign is also checkpointed as a
    normal single-shard store *and* the sidecar is written next to the
    manifest as ``eco_traces.npz`` — ``repro campaign --eco`` picks
    both up from ``--base-checkpoint-dir``.
    """
    import time

    from repro.utils.fingerprint import campaign_fingerprint
    from repro.fi.runner import CampaignRunner, RunnerPolicy
    from repro.sim.bitparallel import BitParallelSimulator, PassTrace

    runner = CampaignRunner(
        netlist, workloads, faults=faults, observation=observation,
        severity=severity, collapse=False,
        policy=RunnerPolicy(checkpoint_dir=checkpoint_dir),
    )
    store = runner._open_store()
    if store is not None:
        store.open(resume=False)

    engine = BitParallelSimulator(netlist)
    flop_names = [
        gate.node_name for gate in netlist.sequential_gates()
    ]
    n_outputs = len(netlist.primary_outputs)
    n_faults = len(runner.faults)
    n_words = (n_faults + 1 + 63) // 64
    n_workloads = len(runner.workloads)

    error_cycles = np.zeros((n_workloads, n_faults), dtype=np.int64)
    detection = np.full((n_workloads, n_faults), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, n_faults), dtype=bool)
    output_diff: List[np.ndarray] = []
    flop_end_diff: List[np.ndarray] = []
    total_elapsed = 0.0
    for row, workload in enumerate(runner.workloads):
        trace = PassTrace.allocate(
            workload.cycles, n_outputs, len(flop_names), n_words
        )
        started = time.perf_counter()
        value = engine.run_fault_pass(
            workload, runner._fault_nets, runner._fault_values,
            observation=runner._compiled, trace=trace,
        )
        elapsed = time.perf_counter() - started
        total_elapsed += elapsed
        error_cycles[row], detection[row], latent[row] = value
        if store is not None:
            store.record(
                row, 0,
                error_cycles=value[0], detection_cycle=value[1],
                latent=value[2], elapsed_seconds=elapsed,
            )
        output_diff.append(trace.output_diff)
        flop_end_diff.append(trace.flop_end_diff)

    result = CampaignResult(
        netlist_name=netlist.name,
        faults=runner.faults,
        workload_names=[w.name for w in runner.workloads],
        workload_cycles=np.array(
            [w.cycles for w in runner.workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=runner.severity,
        simulation_seconds=total_elapsed,
    )
    traces = EcoTraces(
        fingerprint=campaign_fingerprint(
            netlist.name, runner.workloads, runner._simulated,
            runner.severity, False, runner._observation_key,
        ),
        netlist_name=netlist.name,
        workload_names=[w.name for w in runner.workloads],
        output_names=netlist.output_names(),
        flop_names=flop_names,
        fault_nodes=[fault.node_name for fault in runner.faults],
        fault_stuck=np.array(
            [fault.stuck_at for fault in runner.faults], dtype=np.int8
        ),
        output_diff=output_diff,
        flop_end_diff=flop_end_diff,
    )
    if checkpoint_dir is not None:
        traces.save(Path(checkpoint_dir) / ECO_TRACES_NAME)
    return result, traces


def _machine_bits(words: np.ndarray,
                  machines: np.ndarray) -> np.ndarray:
    """Select machine bit columns from packed mismatch words.

    ``words`` is ``(..., n_words)`` uint64; returns a boolean array of
    shape ``(..., len(machines))``.
    """
    word_index = (machines >> 6).astype(np.intp)
    shifts = (machines & 63).astype(np.uint64)
    return ((words[..., word_index] >> shifts)
            & np.uint64(1)).astype(bool)


def _trace_merge_dirty(
    old: Netlist,
    new: Netlist,
    diff: NetlistDiff,
    region: DirtyRegion,
    spec,
    workloads: Sequence[Workload],
    base: CampaignResult,
    base_columns: Dict[Tuple[str, int, int], int],
    traces: EcoTraces,
    dirty_faults: Sequence[Fault],
    severity_old: float,
) -> Optional[CampaignResult]:
    """Rebuild the dirty faults' rows from baseline traces plus one
    affected-support-cone pass per workload.

    Returns ``None`` when the traces cannot soundly cover this edit
    (non-stuck-at faults, or a dirty fault on a pre-existing node with
    no baseline lane); raises :class:`EcoError` when the sidecar
    plainly belongs to a different campaign.
    """
    import time

    from repro.utils.fingerprint import campaign_fingerprint
    from repro.fi.observation import ObservationSpec
    from repro.sim.bitparallel import BitParallelSimulator, PassTrace

    if any(not hasattr(fault, "stuck_at") for fault in dirty_faults):
        return None
    old_nodes = {gate.node_name for gate in old.gates}
    base_machines = np.zeros(len(dirty_faults), dtype=np.int64)
    has_lane = np.zeros(len(dirty_faults), dtype=bool)
    for position, fault in enumerate(dirty_faults):
        column = base_columns.get(_fault_key(fault))
        if column is None:
            if fault.node_name in old_nodes:
                return None  # pre-existing node, no cached lane
            continue  # added node: clean contribution provably zero
        base_machines[position] = column + 1
        has_lane[position] = True

    expected = campaign_fingerprint(
        old.name, workloads, base.faults, severity_old, False,
        observation_key(spec),
    )
    if traces.fingerprint != expected:
        raise EcoError(
            "ECO trace sidecar belongs to a different campaign "
            "(netlist, workload stimulus, fault universe, severity, or "
            "observation policy changed) — refusing to merge"
        )
    if traces.fault_keys() != [_fault_key(f) for f in base.faults]:
        raise EcoError(
            "ECO trace sidecar fault lanes do not match the baseline "
            "fault universe — refusing to merge"
        )

    affected = set(region.affected_outputs)
    clean_ports = [
        name for name in new.output_names() if name not in affected
    ]
    base_out_position = {
        name: i for i, name in enumerate(traces.output_names)
    }
    if any(port not in base_out_position for port in clean_ports):
        return None  # clean port unseen by the baseline traces
    clean_out_rows = np.array(
        [base_out_position[port] for port in clean_ports],
        dtype=np.intp,
    )

    started = time.perf_counter()
    sub, sub_spec, retained_affected, affected_flops = (
        extract_support_cone(
            new, diff, spec,
            {fault.node_name for fault in dirty_faults}, affected,
        )
    )
    affected_flop_set = set(affected_flops)
    clean_flops = [
        gate.node_name for gate in new.sequential_gates()
        if gate.node_name not in affected_flop_set
    ]
    base_flop_position = {
        name: i for i, name in enumerate(traces.flop_names)
    }
    if any(name not in base_flop_position for name in clean_flops):
        return None  # clean flop unseen by the baseline traces
    clean_flop_rows = np.array(
        [base_flop_position[name] for name in clean_flops],
        dtype=np.intp,
    )

    cone_faults = _cone_faults(sub, dirty_faults)
    fault_nets = np.array(
        [fault.net_index for fault in cone_faults], dtype=np.intp
    )
    fault_values = np.array(
        [fault.stuck_at for fault in cone_faults], dtype=np.uint8
    )
    n_dirty = len(dirty_faults)
    cone_machines = np.arange(1, n_dirty + 1, dtype=np.int64)
    cone_words = (n_dirty + 1 + 63) // 64
    sub_outputs = sub.output_names()
    affected_out_rows = np.array(
        [i for i, name in enumerate(sub_outputs)
         if name in retained_affected],
        dtype=np.intp,
    )
    sub_flop_names = [
        gate.node_name for gate in sub.sequential_gates()
    ]
    affected_flop_rows = np.array(
        [i for i, name in enumerate(sub_flop_names)
         if name in affected_flop_set],
        dtype=np.intp,
    )
    compiled = (
        sub_spec.compile(sub)
        if isinstance(sub_spec, ObservationSpec) else None
    )
    engine = BitParallelSimulator(sub)
    remapped = _remap_workloads(sub, workloads)

    n_workloads = len(workloads)
    error_cycles = np.zeros((n_workloads, n_dirty), dtype=np.int64)
    detection = np.full((n_workloads, n_dirty), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, n_dirty), dtype=bool)

    # With uniform cycle counts the whole suite packs into a single
    # bit-parallel pass (per-workload golden lanes), dividing the cone
    # pass's per-cycle dispatch cost by the workload count.
    packed = None
    packed_out_union = None
    packed_end_union = None
    span = n_dirty + 1
    if len({w.cycles for w in remapped}) == 1:
        packed = engine.run_packed_fault_trace(
            remapped, fault_nets, fault_values, observation=compiled,
        )
        if affected_out_rows.size:
            packed_out_union = np.bitwise_or.reduce(
                packed.output_diff[:, affected_out_rows, :], axis=1
            )
        if affected_flop_rows.size:
            packed_end_union = np.bitwise_or.reduce(
                packed.flop_end_diff[affected_flop_rows], axis=0
            )

    for row, workload in enumerate(remapped):
        if packed is None:
            trace = PassTrace.allocate(
                workload.cycles, len(sub_outputs), len(sub_flop_names),
                cone_words,
            )
            engine.run_fault_pass(
                workload, fault_nets, fault_values,
                observation=compiled, trace=trace,
            )

        base_out = traces.output_diff[row]
        if base_out.shape[0] != workload.cycles:
            raise EcoError(
                f"ECO trace sidecar cycle count for workload "
                f"{workload.name!r} differs from the given suite"
            )
        if clean_out_rows.size:
            clean_union = np.bitwise_or.reduce(
                base_out[:, clean_out_rows, :], axis=1
            )
            clean_bits = _machine_bits(clean_union, base_machines)
            clean_bits[:, ~has_lane] = False
        else:
            clean_bits = np.zeros(
                (workload.cycles, n_dirty), dtype=bool
            )
        if packed is not None:
            if packed_out_union is not None:
                affected_bits = _machine_bits(
                    packed_out_union, row * span + cone_machines
                )
            else:
                affected_bits = np.zeros(
                    (workload.cycles, n_dirty), dtype=bool
                )
        elif affected_out_rows.size:
            affected_union = np.bitwise_or.reduce(
                trace.output_diff[:, affected_out_rows, :], axis=1
            )
            affected_bits = _machine_bits(affected_union,
                                          cone_machines)
        else:
            affected_bits = np.zeros(
                (workload.cycles, n_dirty), dtype=bool
            )

        union = clean_bits | affected_bits
        error_cycles[row] = union.sum(axis=0, dtype=np.int64)
        ever = union.any(axis=0)
        detection[row] = np.where(
            ever, union.argmax(axis=0), -1
        )

        if clean_flop_rows.size:
            clean_end = np.bitwise_or.reduce(
                traces.flop_end_diff[row][clean_flop_rows], axis=0
            )
            clean_corrupt = _machine_bits(clean_end, base_machines)
            clean_corrupt[~has_lane] = False
        else:
            clean_corrupt = np.zeros(n_dirty, dtype=bool)
        if packed is not None:
            if packed_end_union is not None:
                affected_corrupt = _machine_bits(
                    packed_end_union, row * span + cone_machines
                )
            else:
                affected_corrupt = np.zeros(n_dirty, dtype=bool)
        elif affected_flop_rows.size:
            affected_end = np.bitwise_or.reduce(
                trace.flop_end_diff[affected_flop_rows], axis=0
            )
            affected_corrupt = _machine_bits(affected_end,
                                             cone_machines)
        else:
            affected_corrupt = np.zeros(n_dirty, dtype=bool)
        latent[row] = (clean_corrupt | affected_corrupt) & ~ever

    return CampaignResult(
        netlist_name=new.name,
        faults=list(dirty_faults),
        workload_names=[w.name for w in workloads],
        workload_cycles=np.array(
            [w.cycles for w in workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=base.severity,
        simulation_seconds=time.perf_counter() - started,
    )


def _validate_base_result(base: CampaignResult, old: Netlist,
                          workloads: Sequence[Workload]) -> None:
    if base.netlist_name != old.name:
        raise EcoError(
            f"base campaign was run on {base.netlist_name!r}, not on "
            f"the pre-edit design {old.name!r}"
        )
    names = [workload.name for workload in workloads]
    if base.workload_names != names:
        raise EcoError(
            "base campaign used a different workload suite "
            f"({base.workload_names[:4]}... vs {names[:4]}...)"
        )
    cycles = np.array([w.cycles for w in workloads], dtype=np.int64)
    if not np.array_equal(base.workload_cycles, cycles):
        raise EcoError(
            "base campaign workload cycle counts differ from the "
            "given suite"
        )
    if base.failures:
        raise EcoError(
            "base campaign is incomplete (failed workloads: "
            + ", ".join(f.workload for f in base.failures[:4])
            + ") — its default rows cannot be reused"
        )


def _load_base_from_store(
    directory: PathLike,
    old: Netlist,
    workloads: Sequence[Workload],
    severity_old: float,
    observation_key_old: str,
) -> Tuple[CampaignResult, float]:
    """Reconstruct the old design's full-universe campaign rows from a
    PR 1/3-style checkpoint store, verifying the fingerprint.

    The store's manifest fingerprint must match the old design +
    workload suite for either the collapsed or the uncollapsed full
    stuck-at universe; anything else is refused.  Every unit must be
    present and intact — an incomplete base has nothing trustworthy to
    merge.
    """
    from repro.fi.collapse import collapse_faults, expand_shard

    manifest_path = Path(directory) / MANIFEST_NAME
    if not manifest_path.exists():
        raise EcoError(
            f"base checkpoint directory {directory} has no "
            f"{MANIFEST_NAME} — nothing to reuse"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EcoError(
            f"base checkpoint manifest {manifest_path} is corrupt: "
            f"{error}"
        ) from error
    stored_fingerprint = manifest.get("fingerprint")

    universe = full_fault_universe(old)
    collapsed = collapse_faults(old, universe)
    candidates = {
        False: universe,
        True: collapsed.representatives,
    }
    matched: Optional[bool] = None
    for collapse_flag, simulated in candidates.items():
        fingerprint = campaign_fingerprint(
            old.name, workloads, simulated, severity_old,
            collapse_flag, observation_key_old,
        )
        if fingerprint == stored_fingerprint:
            matched = collapse_flag
            break
    if matched is None:
        raise EcoError(
            f"base checkpoint directory {directory} belongs to a "
            "different campaign (netlist, workload stimulus, severity, "
            "or observation policy changed) — refusing to merge"
        )

    simulated = candidates[matched]
    store = CheckpointStore(
        directory,
        fingerprint=stored_fingerprint,
        netlist_name=old.name,
        workload_names=[w.name for w in workloads],
        n_faults=len(simulated),
        shard_bounds=[
            (int(lo), int(hi))
            for lo, hi in manifest.get(
                "shards", [[0, len(simulated)]]
            )
        ],
    )
    completed = store.open(resume=True)
    missing = [
        (row, shard)
        for row in range(len(workloads))
        for shard in range(store.n_shards)
        if (row, shard) not in completed
    ]
    if missing or store.stale_units:
        torn = [unit[:2] for unit in store.stale_units]
        raise EcoError(
            f"base checkpoint directory {directory} is incomplete "
            f"(missing units: {missing[:4]}, torn units: {torn[:4]}) "
            "— finish the base campaign with --resume first"
        )

    n_workloads, n_faults = len(workloads), len(universe)
    error_cycles = np.zeros((n_workloads, n_faults), dtype=np.int64)
    detection = np.full((n_workloads, n_faults), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, n_faults), dtype=bool)
    base_seconds = 0.0
    for (row, shard), checkpoint in completed.items():
        base_seconds += checkpoint["elapsed_seconds"]
        bounds = store.shard_bounds[shard]
        columns = (
            checkpoint["error_cycles"],
            checkpoint["detection_cycle"],
            checkpoint["latent"],
        )
        for target, column in zip(
            (error_cycles, detection, latent), columns
        ):
            if matched:
                original, expanded = expand_shard(
                    collapsed, bounds, np.asarray(column)
                )
                target[row, original] = expanded
            else:
                lo, hi = bounds
                target[row, lo:hi] = column

    base = CampaignResult(
        netlist_name=old.name,
        faults=universe,
        workload_names=[w.name for w in workloads],
        workload_cycles=np.array(
            [w.cycles for w in workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=severity_old,
        simulation_seconds=base_seconds,
    )
    return base, base_seconds


# ----------------------------------------------------------------------
# Incremental campaign
# ----------------------------------------------------------------------
@dataclass
class EcoResult:
    """Outcome of an incremental re-analysis.

    ``result`` is the merged :class:`CampaignResult` for the edited
    design — bitwise identical to a full rerun when every dirty unit
    completed.  ``dirty_seconds`` is the simulation actually paid;
    ``base_seconds`` what the cached rows cost when they were first
    simulated (the avoided work, for the ≥10x benchmark).
    """

    result: CampaignResult
    diff: NetlistDiff
    region: DirtyRegion
    n_faults: int
    n_dirty: int
    dirty_seconds: float
    base_seconds: float

    @property
    def n_reused(self) -> int:
        return self.n_faults - self.n_dirty

    @property
    def reuse_fraction(self) -> float:
        return self.n_reused / max(self.n_faults, 1)

    def summary(self) -> str:
        return (
            f"{self.diff.summary()}; {self.region.summary()}; "
            f"re-simulated {self.n_dirty}/{self.n_faults} faults in "
            f"{self.dirty_seconds:.2f}s, reused {self.n_reused} "
            f"cached rows ({100.0 * self.reuse_fraction:.1f}%)"
        )


def _merge_rows(
    new_universe: Sequence,
    dirty_indices: Sequence[int],
    base: CampaignResult,
    base_columns: Dict[Tuple[str, int, int], int],
    dirty_result: Optional[CampaignResult],
    workloads: Sequence[Workload],
    netlist_name: str,
    severity: float,
) -> CampaignResult:
    """Assemble the merged full-universe result matrices."""
    n_workloads, n_faults = len(workloads), len(new_universe)
    error_cycles = np.zeros((n_workloads, n_faults), dtype=np.int64)
    detection = np.full((n_workloads, n_faults), -1, dtype=np.int64)
    latent = np.zeros((n_workloads, n_faults), dtype=bool)

    dirty_set = set(dirty_indices)
    clean_new = [i for i in range(n_faults) if i not in dirty_set]
    if clean_new:
        clean_base = [
            base_columns[_fault_key(new_universe[i])] for i in clean_new
        ]
        error_cycles[:, clean_new] = base.error_cycles[:, clean_base]
        detection[:, clean_new] = base.detection_cycle[:, clean_base]
        latent[:, clean_new] = base.latent[:, clean_base]

    failures: List[WorkloadFailure] = []
    dirty_seconds = 0.0
    if dirty_result is not None:
        columns = list(dirty_indices)
        error_cycles[:, columns] = dirty_result.error_cycles
        detection[:, columns] = dirty_result.detection_cycle
        latent[:, columns] = dirty_result.latent
        failures = list(dirty_result.failures)
        dirty_seconds = dirty_result.simulation_seconds

    return CampaignResult(
        netlist_name=netlist_name,
        faults=list(new_universe),
        workload_names=[w.name for w in workloads],
        workload_cycles=np.array(
            [w.cycles for w in workloads], dtype=np.int64
        ),
        error_cycles=error_cycles,
        detection_cycle=detection,
        latent=latent,
        severity=severity,
        simulation_seconds=dirty_seconds,
        failures=failures,
    )


def _resolve_observation(old: Netlist, new: Netlist, observation):
    """The (shared) observation policy for both designs; refuses when
    the two designs resolve to different registered specs — the cached
    rows were compared under the old policy."""
    from repro.fi.observation import observation_for

    if observation != "auto":
        return observation
    spec_old, spec_new = observation_for(old), observation_for(new)
    if observation_key(spec_old) != observation_key(spec_new):
        raise EcoError(
            f"designs {old.name!r} and {new.name!r} resolve to "
            "different observation policies — cached comparison rows "
            "are not reusable; pass observation= explicitly or run a "
            "full campaign"
        )
    return spec_old


def run_eco_campaign(
    old: Netlist,
    new: Netlist,
    workloads: Sequence[Workload],
    *,
    base: Optional[CampaignResult] = None,
    base_checkpoint_dir: Optional[PathLike] = None,
    base_traces: Optional[EcoTraces] = None,
    faults: Optional[Sequence[Fault]] = None,
    observation="auto",
    severity="auto",
    collapse: bool = False,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff=None,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    jobs: int = 1,
    shard_size=0,
    max_worker_restarts: int = 8,
    heartbeat_interval: float = 5.0,
    poison_threshold: int = 2,
) -> EcoResult:
    """Incremental stuck-at campaign for an edited design.

    Diffs ``old`` against ``new``, computes the dirty region,
    re-simulates only the dirty faults (with the full resilient runner
    feature set: sharding, ``jobs`` fan-out, checkpoint/resume of the
    *dirty* sub-campaign via ``checkpoint_dir``/``resume``), and merges
    with cached rows from exactly one baseline source:

    * ``base`` — an in-memory :class:`CampaignResult` of the *old*
      design over the same ``workloads`` (full stuck-at universe), or
    * ``base_checkpoint_dir`` — a completed PR 1/3-style checkpoint
      store, verified against the old campaign's fingerprint.

    When baseline mismatch traces are available — passed as
    ``base_traces`` or found as ``eco_traces.npz`` inside
    ``base_checkpoint_dir`` (both produced by
    :func:`run_campaign_with_traces`) — the dirty faults are
    re-simulated on the *affected-support cone* only and their rows
    recombined with the baseline's clean-output/clean-flop trace
    contributions.  That path is what delivers the order-of-magnitude
    wall-clock win (the fallback re-simulates the dirty faults on the
    fanout observation cone, which degenerates to the whole design as
    soon as one dirty gate has global fanout); the merged result is
    bitwise identical either way.

    The merged result is bitwise identical to
    ``run_campaign(new, workloads, ...)`` for every runner
    configuration, provided every dirty unit completes (failures land
    in the ledger as usual).  ``faults`` defaults to the edited
    design's full stuck-at universe; clean faults with no matching
    ``(node, stuck_at)`` row in the baseline fall back to
    re-simulation rather than guessing.

    Raises :class:`~repro.utils.errors.EcoError` on any refusal
    condition (see module docstring).
    """
    from repro.fi.observation import severity_for
    from repro.fi.runner import CampaignRunner, RunnerPolicy

    if (base is None) == (base_checkpoint_dir is None):
        raise EcoError(
            "pass exactly one of base= (in-memory CampaignResult) or "
            "base_checkpoint_dir= (checkpoint store)"
        )
    _check_interfaces(old, new, workloads)
    spec = _resolve_observation(old, new, observation)
    severity_old = (
        severity_for(old, DEFAULT_SEVERITY)
        if severity == "auto" else float(severity)
    )
    severity_new = (
        severity_for(new, DEFAULT_SEVERITY)
        if severity == "auto" else float(severity)
    )

    diff = diff_netlists(old, new)
    region = compute_dirty_region(old, new, diff=diff, observation=spec)

    base_seconds = 0.0
    if base is not None:
        _validate_base_result(base, old, workloads)
        base_seconds = base.simulation_seconds
    else:
        base, base_seconds = _load_base_from_store(
            base_checkpoint_dir, old, workloads, severity_old,
            observation_key(spec),
        )
        if base_traces is None:
            sidecar = Path(base_checkpoint_dir) / ECO_TRACES_NAME
            if sidecar.exists():
                base_traces = EcoTraces.load(sidecar)

    new_universe = (
        list(faults) if faults is not None
        else full_fault_universe(new)
    )
    base_columns = {
        _fault_key(fault): column
        for column, fault in enumerate(base.faults)
    }
    dirty_indices = [
        index for index, fault in enumerate(new_universe)
        if region.is_dirty(fault.node_name)
        or _fault_key(fault) not in base_columns
    ]

    dirty_result: Optional[CampaignResult] = None
    if dirty_indices:
        dirty_faults = [new_universe[i] for i in dirty_indices]
        if base_traces is not None:
            dirty_result = _trace_merge_dirty(
                old, new, diff, region, spec, workloads, base,
                base_columns, base_traces, dirty_faults,
                severity_old,
            )
    if dirty_indices and dirty_result is None:
        dirty_faults = [new_universe[i] for i in dirty_indices]
        cone, cone_spec = extract_dirty_cone(
            new, {fault.node_name for fault in dirty_faults}, spec,
        )
        policy = RunnerPolicy(
            timeout=timeout, retries=retries, backoff=backoff,
            checkpoint_dir=checkpoint_dir, resume=resume, jobs=jobs,
            shard_size=shard_size,
            max_worker_restarts=max_worker_restarts,
            heartbeat_interval=heartbeat_interval,
            poison_threshold=poison_threshold,
        )
        runner = CampaignRunner(
            cone,
            _remap_workloads(cone, workloads),
            faults=(
                dirty_faults if cone is new
                else _cone_faults(cone, dirty_faults)
            ),
            observation=cone_spec,
            severity=severity_new,
            collapse=collapse,
            policy=policy,
        )
        dirty_result = runner.run()

    merged = _merge_rows(
        new_universe, dirty_indices, base, base_columns, dirty_result,
        workloads, new.name, severity_new,
    )
    return EcoResult(
        result=merged,
        diff=diff,
        region=region,
        n_faults=len(new_universe),
        n_dirty=len(dirty_indices),
        dirty_seconds=merged.simulation_seconds,
        base_seconds=base_seconds,
    )


def run_eco_transient_campaign(
    old: Netlist,
    new: Netlist,
    workloads: Sequence[Workload],
    *,
    base: CampaignResult,
    faults: Optional[Sequence] = None,
    injections_per_flop: int = 8,
    seed=0,
    observation="auto",
    severity="auto",
) -> EcoResult:
    """Incremental SEU campaign for an edited design.

    Same clean/dirty classification as :func:`run_eco_campaign`;
    transient faults match baseline rows by ``(node, cycle)``.  The
    edited design's universe is regenerated with the same sampling
    seed, so an unchanged flop set reproduces the same injection
    cycles; flops whose sampled cycles drift (e.g. the flop order
    changed) simply fail the row match and fall back to re-simulation
    — never to a wrong merge.
    """
    from repro.fi.observation import severity_for
    from repro.fi.transient import (
        run_transient_campaign,
        transient_fault_universe,
    )

    _check_interfaces(old, new, workloads)
    spec = _resolve_observation(old, new, observation)
    severity_new = (
        severity_for(new, DEFAULT_SEVERITY)
        if severity == "auto" else float(severity)
    )
    _validate_base_result(base, old, workloads)

    diff = diff_netlists(old, new)
    region = compute_dirty_region(old, new, diff=diff, observation=spec)

    if faults is not None:
        new_universe = list(faults)
    else:
        min_cycles = min(w.cycles for w in workloads)
        new_universe = transient_fault_universe(
            new, min_cycles, injections_per_flop, seed
        )
    base_columns = {
        _fault_key(fault): column
        for column, fault in enumerate(base.faults)
    }
    dirty_indices = [
        index for index, fault in enumerate(new_universe)
        if region.is_dirty(fault.node_name)
        or _fault_key(fault) not in base_columns
    ]

    dirty_result: Optional[CampaignResult] = None
    if dirty_indices:
        dirty_faults = [new_universe[i] for i in dirty_indices]
        cone, cone_spec = extract_dirty_cone(
            new, {fault.node_name for fault in dirty_faults}, spec,
        )
        dirty_result = run_transient_campaign(
            cone,
            _remap_workloads(cone, workloads),
            faults=(
                dirty_faults if cone is new
                else _cone_faults(cone, dirty_faults)
            ),
            observation=cone_spec,
            severity=severity_new,
        )

    merged = _merge_rows(
        new_universe, dirty_indices, base, base_columns, dirty_result,
        workloads, new.name, severity_new,
    )
    return EcoResult(
        result=merged,
        diff=diff,
        region=region,
        n_faults=len(new_universe),
        n_dirty=len(dirty_indices),
        dirty_seconds=merged.simulation_seconds,
        base_seconds=base.simulation_seconds,
    )
