"""repro — Graph learning-based fault-criticality analysis for E/E
functional safety.

A complete reproduction of the DAC 2024 paper "Graph Learning-based
Fault Criticality Analysis for Enhancing Functional Safety of E/E
Systems": gate-level netlist substrate, the three evaluation designs,
a bit-parallel stuck-at fault-injection engine, the paper's node
features, the Table 1 GCN classifier and regressor with five
baselines, and GNNExplainer-based interpretability — in pure Python on
numpy/scipy.

Quickstart::

    from repro import FaultCriticalityAnalyzer, build_design

    analyzer = FaultCriticalityAnalyzer(build_design("sdram"))
    print(analyzer.summary())
"""

from repro.circuits import (
    build_design,
    build_or1200_icfsm,
    build_or1200_if,
    build_sdram_controller,
)
from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer, NodeReport
from repro.explain import Explanation, GlobalImportance, GNNExplainer
from repro.features import FEATURE_NAMES, NodeFeatures, extract_features
from repro.fi import (
    CriticalityDataset,
    dataset_from_campaign,
    generate_dataset,
    run_campaign,
)
from repro.graph import GraphData, build_graph_data, stratified_split
from repro.models import (
    BASELINE_NAMES,
    GCNClassifier,
    GCNRegressor,
    make_classifier,
)
from repro.netlist import Netlist, read_verilog, write_verilog
from repro.sim import Simulator, Workload, design_workloads
from repro.store import ArtifactStore

__version__ = "1.0.0"

__all__ = [
    "build_design",
    "build_or1200_icfsm",
    "build_or1200_if",
    "build_sdram_controller",
    "AnalyzerConfig",
    "FaultCriticalityAnalyzer",
    "NodeReport",
    "Explanation",
    "GlobalImportance",
    "GNNExplainer",
    "FEATURE_NAMES",
    "NodeFeatures",
    "extract_features",
    "CriticalityDataset",
    "dataset_from_campaign",
    "generate_dataset",
    "run_campaign",
    "GraphData",
    "build_graph_data",
    "stratified_split",
    "BASELINE_NAMES",
    "GCNClassifier",
    "GCNRegressor",
    "make_classifier",
    "ArtifactStore",
    "Netlist",
    "read_verilog",
    "write_verilog",
    "Simulator",
    "Workload",
    "design_workloads",
    "__version__",
]
