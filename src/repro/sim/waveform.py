"""Simulation traces and stimulus containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.errors import SimulationError


@dataclass
class Workload:
    """A named input stimulus: one vector of primary-input values per
    cycle, columns ordered like ``netlist.input_names()``.

    The paper's FI methodology replays identical workloads against the
    golden and every faulty machine, so workloads are stored as plain
    replayable arrays even when generated closed-loop.
    """

    name: str
    input_names: List[str]
    vectors: np.ndarray  # uint8, shape (cycles, n_inputs)

    def __post_init__(self) -> None:
        self.vectors = np.asarray(self.vectors, dtype=np.uint8)
        if self.vectors.ndim != 2:
            raise SimulationError("workload vectors must be 2-D")
        if self.vectors.shape[1] != len(self.input_names):
            raise SimulationError(
                f"workload {self.name!r}: {self.vectors.shape[1]} columns "
                f"vs {len(self.input_names)} input names"
            )
        if self.vectors.size and self.vectors.max() > 1:
            raise SimulationError("workload vectors must be 0/1")

    @property
    def cycles(self) -> int:
        return int(self.vectors.shape[0])

    @classmethod
    def from_dicts(
        cls,
        name: str,
        netlist: Netlist,
        rows: Sequence[Mapping[str, int]],
        default: int = 0,
    ) -> "Workload":
        """Build a workload from per-cycle ``{input_name: value}`` dicts.

        Unmentioned inputs take ``default``.  Unknown names raise.
        """
        input_names = netlist.input_names()
        known = set(input_names)
        vectors = np.full((len(rows), len(input_names)), default,
                          dtype=np.uint8)
        for cycle, row in enumerate(rows):
            for key, value in row.items():
                if key not in known:
                    raise SimulationError(
                        f"workload {name!r}: unknown input {key!r}"
                    )
                vectors[cycle, input_names.index(key)] = 1 if value else 0
        return cls(name=name, input_names=input_names, vectors=vectors)

    def column(self, input_name: str) -> np.ndarray:
        """The per-cycle values of one named input."""
        try:
            index = self.input_names.index(input_name)
        except ValueError:
            raise SimulationError(
                f"workload {self.name!r}: unknown input {input_name!r}"
            ) from None
        return self.vectors[:, index]


@dataclass
class Trace:
    """Recorded behaviour of one simulation run."""

    workload: str
    output_names: List[str]
    outputs: np.ndarray  # uint8, shape (cycles, n_outputs)
    #: optional full per-net values, shape (cycles, n_nets)
    net_values: Optional[np.ndarray] = None
    net_names: Optional[List[str]] = None

    @property
    def cycles(self) -> int:
        return int(self.outputs.shape[0])

    def output(self, name: str) -> np.ndarray:
        """Per-cycle values of one named output."""
        try:
            index = self.output_names.index(name)
        except ValueError:
            raise SimulationError(f"unknown output {name!r}") from None
        return self.outputs[:, index]

    def output_word(self, prefix: str) -> np.ndarray:
        """Reassemble a bus exported as ``prefix_0..prefix_{w-1}`` into
        per-cycle integers (LSB = ``prefix_0``)."""
        columns = [
            (int(name[len(prefix) + 1:]), position)
            for position, name in enumerate(self.output_names)
            if name.startswith(prefix + "_")
            and name[len(prefix) + 1:].isdigit()
        ]
        if not columns:
            raise SimulationError(f"no outputs with prefix {prefix!r}")
        word = np.zeros(self.cycles, dtype=np.int64)
        for bit, position in columns:
            word |= self.outputs[:, position].astype(np.int64) << bit
        return word
