"""Scalar cycle-accurate logic simulator (reference implementation).

This is the readable, obviously-correct simulator the bit-parallel
engine (:mod:`repro.sim.bitparallel`) is cross-checked against in the
test suite.  It also powers *closed-loop* workload recording
(:meth:`Simulator.run_driver`): a Python driver reacts to the design's
outputs each cycle — modelling a bus, a cache, or a host — and the
resulting stimulus is captured as a replayable :class:`Workload`,
mirroring how application workloads drive the designs in the paper's
Xcelium campaigns.

Semantics: single implicit clock; all flip-flops sample on the cycle
boundary; combinational logic settles instantly (zero-delay model);
state initializes to 0 (architectural reset values are realized
structurally, see ``_register_with_reset_value``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.sim.waveform import Trace, Workload
from repro.utils.errors import SimulationError

#: A closed-loop stimulus driver: ``driver(cycle, outputs)`` returns the
#: ``{input_name: 0/1}`` values to apply this cycle, where ``outputs``
#: holds the previous cycle's primary-output values (empty on cycle 0).
Driver = Callable[[int, Dict[str, int]], Mapping[str, int]]


class Simulator:
    """Event-free, levelized scalar simulator for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = [
            netlist.gates[index]
            for index in netlist.topological_order()
            if not netlist.gates[index].is_sequential
        ]
        self._flops = netlist.sequential_gates()
        self._pi_nets = netlist.input_nets()
        self._pi_names = netlist.input_names()
        self._po_nets = [net for net, _ in netlist.primary_outputs]
        self._po_names = netlist.output_names()
        self.reset()

    def reset(self) -> None:
        """Clear all state and net values to 0."""
        self._values = [0] * self.netlist.n_nets

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Advance one clock cycle.

        Applies ``inputs`` (missing inputs hold their previous value),
        settles combinational logic, returns the primary-output values
        for this cycle, then commits flip-flop next-states.
        """
        values = self._values
        for name, net in zip(self._pi_names, self._pi_nets):
            if name in inputs:
                values[net] = 1 if inputs[name] else 0
        unknown = set(inputs) - set(self._pi_names)
        if unknown:
            raise SimulationError(f"unknown inputs {sorted(unknown)}")

        for gate in self._order:
            values[gate.output] = gate.cell.function(
                [values[net] for net in gate.inputs], 1
            )

        outputs = {
            name: values[net]
            for net, name in zip(self._po_nets, self._po_names)
        }

        next_states = [
            gate.cell.function([values[net] for net in gate.inputs], 1)
            for gate in self._flops
        ]
        for gate, state in zip(self._flops, next_states):
            values[gate.output] = state
        return outputs

    def run(self, workload: Workload, record_nets: bool = False) -> Trace:
        """Replay a workload from reset; returns the output trace.

        With ``record_nets=True`` the trace additionally captures every
        net's settled value per cycle (used by feature extraction and
        by simulator cross-checks).
        """
        if workload.input_names != self._pi_names:
            raise SimulationError(
                f"workload {workload.name!r} input order does not match "
                f"netlist {self.netlist.name!r}"
            )
        self.reset()
        outputs = np.zeros((workload.cycles, len(self._po_nets)),
                           dtype=np.uint8)
        net_values = (
            np.zeros((workload.cycles, self.netlist.n_nets), dtype=np.uint8)
            if record_nets else None
        )
        for cycle in range(workload.cycles):
            row = dict(zip(self._pi_names, workload.vectors[cycle]))
            observed = self.step(row)
            outputs[cycle] = [observed[name] for name in self._po_names]
            if net_values is not None:
                # Captured after the flop commit: sequential nets show
                # their *new* state, matching the bit-parallel engine's
                # state snapshot, while combinational nets show the
                # settled value of this cycle.
                net_values[cycle] = self._values
        return Trace(
            workload=workload.name,
            output_names=list(self._po_names),
            outputs=outputs,
            net_values=net_values,
            net_names=[net.name for net in self.netlist.nets]
            if record_nets else None,
        )

    def run_driver(
        self,
        driver: Driver,
        cycles: int,
        name: str = "driver",
    ) -> Workload:
        """Run closed-loop with ``driver`` and record the stimulus.

        The returned :class:`Workload` replays open-loop to exactly the
        same behaviour (the design is deterministic), which is what the
        fault-injection campaign requires: identical stimulus against
        golden and faulty machines.
        """
        self.reset()
        vectors = np.zeros((cycles, len(self._pi_names)), dtype=np.uint8)
        observed: Dict[str, int] = {}
        for cycle in range(cycles):
            requested = driver(cycle, observed)
            row = {name: 0 for name in self._pi_names}
            for key, value in requested.items():
                if key not in row:
                    raise SimulationError(
                        f"driver produced unknown input {key!r}"
                    )
                row[key] = 1 if value else 0
            vectors[cycle] = [row[name] for name in self._pi_names]
            observed = self.step(row)
        return Workload(name=name, input_names=list(self._pi_names),
                        vectors=vectors)
