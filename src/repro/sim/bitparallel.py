"""64-way bit-parallel logic simulation engine.

This is the performance core of the fault-injection substrate (the
stand-in for the paper's Cadence Xcelium campaigns).  Net values are
``numpy.uint64`` words: bit *b* of word *w* carries the value seen by
*machine* ``64*w + b``.  Machine 0 is always the fault-free golden
machine; every other machine runs the same stimulus with one stuck-at
fault permanently forced on one gate output.  A whole fault universe
therefore simulates in a single pass per workload, with every gate
evaluation a handful of vectorized numpy operations.

The schedule is levelized and type-grouped: gates of the same cell type
on the same topological level evaluate together as one gather/compute/
scatter step.

The inner loop is allocation-free on the hot path: per-word-width
scratch buffers (gathers, output comparison, mismatch masks) are built
once and reused across cycles, constant-cell outputs are evaluated once
per pass, fault forcing masks are gathered per group once per pass, and
per-machine error-cycle counts accumulate by popcounting chunks of
packed mismatch words instead of unpacking every mismatch cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.cells import Cell
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError

ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
ZERO = np.uint64(0)

#: Mismatch rows buffered between popcount flushes (64 words * 8 bytes
#: per row keeps the buffer a few hundred KiB even for huge universes).
MISMATCH_CHUNK = 256


@dataclass
class PassTrace:
    """Optional per-pass mismatch traces for incremental (ECO) reuse.

    ``output_diff[c, o]`` holds the packed golden-vs-faulty mismatch
    words of output *o* on cycle *c* **after strobe gating** (zero on
    cycles where the output's strobe is inactive), so any subset union
    of outputs reproduces the engine's own mismatch accounting bit for
    bit.  ``flop_end_diff[q]`` holds the end-of-run state-corruption
    words of flop *q* (the inputs to the latent classification).
    """

    output_diff: np.ndarray    # uint64 (cycles, n_outputs, n_words)
    flop_end_diff: np.ndarray  # uint64 (n_flops, n_words)

    @classmethod
    def allocate(cls, cycles: int, n_outputs: int, n_flops: int,
                 n_words: int) -> "PassTrace":
        return cls(
            output_diff=np.zeros(
                (cycles, n_outputs, n_words), dtype=np.uint64
            ),
            flop_end_diff=np.zeros(
                (n_flops, n_words), dtype=np.uint64
            ),
        )


@dataclass
class GoldenStats:
    """Per-net activity profile accumulated over golden simulations.

    Drives the paper's probability features: ``P(net == 1)`` is
    ``ones_count / cycles`` and the transition probability is
    ``transition_count / (cycles - n_workloads)`` (the first cycle of
    each workload has no predecessor).
    """

    net_names: List[str]
    ones_count: np.ndarray        # int64 per net
    transition_count: np.ndarray  # int64 per net
    cycles: int
    workloads: int

    @property
    def state_probability_one(self) -> np.ndarray:
        """P(net == 1) per net."""
        if self.cycles == 0:
            return np.zeros(len(self.net_names))
        return self.ones_count / self.cycles

    @property
    def state_probability_zero(self) -> np.ndarray:
        """P(net == 0) per net."""
        return 1.0 - self.state_probability_one

    @property
    def transition_probability(self) -> np.ndarray:
        """P(net value changes between consecutive cycles), per net."""
        denominator = self.cycles - self.workloads
        if denominator <= 0:
            return np.zeros(len(self.net_names))
        return self.transition_count / denominator


class _PassScratch:
    """Reusable per-word-width buffers for one simulator.

    Everything here depends only on the schedule and the machine-word
    count ``n_words``, so a scratch set is built once per width and
    reused by every cycle of every pass at that width (the campaign
    runner replays many workloads against same-sized shards).
    """

    def __init__(self, sim: "BitParallelSimulator", n_words: int):
        self.n_words = n_words
        self.comb_gather: List[Optional[np.ndarray]] = []
        self.const_out: List[Optional[np.ndarray]] = []
        for cell, out_idx, in_idx in sim._comb_groups:
            if in_idx.shape[1] == 0:
                self.comb_gather.append(None)
                constant = cell.function([], ONES)
                self.const_out.append(np.full(
                    (len(out_idx), n_words), constant, dtype=np.uint64,
                ))
            else:
                self.comb_gather.append(np.empty(
                    in_idx.shape + (n_words,), dtype=np.uint64,
                ))
                self.const_out.append(None)
        self.flop_gather: List[np.ndarray] = [
            np.empty(in_idx.shape + (n_words,), dtype=np.uint64)
            for _, _, in_idx in sim._flop_groups
        ]
        n_outputs = len(sim._po_idx)
        self.po = np.empty((n_outputs, n_words), dtype=np.uint64)
        self.golden_broadcast = np.empty(
            (n_outputs, n_words), dtype=np.uint64
        )
        self.diff = np.empty((n_outputs, n_words), dtype=np.uint64)
        self.mismatch = np.empty(n_words, dtype=np.uint64)


class _FaultMasks:
    """Per-pass fault forcing, pre-gathered per schedule group.

    The packed ``clear``/``force`` matrices are constant over a pass, so
    the per-group rows the inner loop needs are gathered once here —
    groups with no faulted output skip masking entirely (``None``), and
    constant cells collapse to a single pre-masked output array.
    """

    def __init__(self, sim: "BitParallelSimulator", clear: np.ndarray,
                 force: np.ndarray, scratch: _PassScratch):
        self.comb: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        self.const_out: List[Optional[np.ndarray]] = []
        for index, (_, out_idx, in_idx) in enumerate(sim._comb_groups):
            rows = clear[out_idx]
            masked = (rows.any(), np.bitwise_not(rows), force[out_idx])
            if in_idx.shape[1] == 0:
                base = scratch.const_out[index]
                self.const_out.append(
                    (base & masked[1]) | masked[2]
                    if masked[0] else base
                )
                self.comb.append(None)
            else:
                self.const_out.append(None)
                self.comb.append(
                    (masked[1], masked[2]) if masked[0] else None
                )
        self.flops: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        for _, out_idx, _ in sim._flop_groups:
            rows = clear[out_idx]
            self.flops.append(
                (np.bitwise_not(rows), force[out_idx])
                if rows.any() else None
            )


class MismatchAccumulator:
    """Streaming golden-vs-faulty mismatch accounting.

    Shared by the stuck-at and transient passes so both get the same
    optimized bookkeeping: per-cycle packed mismatch masks are buffered
    and *popcounted in chunks* (one ``unpackbits`` + column sum per
    :data:`MISMATCH_CHUNK` mismatch cycles) instead of being expanded to
    a boolean machine vector on every mismatch cycle, and first-detection
    cycles are scattered with one vectorized assignment per cycle rather
    than a per-machine Python loop.
    """

    def __init__(self, n_machines: int, n_words: int):
        self.n_machines = n_machines
        self.n_words = n_words
        self.seen = np.zeros(n_words, dtype=np.uint64)
        self.detection_cycle = np.full(n_machines - 1, -1,
                                       dtype=np.int64)
        self._counts = np.zeros(n_words * 64, dtype=np.int64)
        self._chunk = np.zeros((MISMATCH_CHUNK, n_words),
                               dtype=np.uint64)
        self._fill = 0
        self._new = np.empty(n_words, dtype=np.uint64)

    def record(self, mismatch: np.ndarray, cycle: int) -> None:
        """Account one cycle's packed mismatch mask."""
        if not mismatch.any():
            return
        if self._fill == MISMATCH_CHUNK:
            self._flush()
        self._chunk[self._fill] = mismatch
        self._fill += 1

        new = self._new
        np.bitwise_not(self.seen, out=new)
        np.bitwise_and(mismatch, new, out=new)
        if new.any():
            np.bitwise_or(self.seen, mismatch, out=self.seen)
            machines = np.flatnonzero(np.unpackbits(
                new.view(np.uint8), bitorder="little"
            ))
            machines = machines[
                (machines > 0) & (machines < self.n_machines)
            ]
            self.detection_cycle[machines - 1] = cycle

    def _flush(self) -> None:
        if not self._fill:
            return
        bits = np.unpackbits(
            self._chunk[: self._fill].view(np.uint8),
            axis=1, bitorder="little",
        )
        self._counts += bits.sum(axis=0, dtype=np.int64)
        self._fill = 0

    @property
    def golden_diverged(self) -> bool:
        """True when the golden machine mismatched itself (engine bug)."""
        return bool(self.seen[0] & np.uint64(1))

    def error_cycles(self) -> np.ndarray:
        """Per-fault count of mismatch cycles (flushes the chunk)."""
        self._flush()
        return self._counts[1: self.n_machines]

    def observed(self) -> np.ndarray:
        """Per-fault flags: at least one mismatch cycle ever occurred."""
        return _machine_flags(self.seen, self.n_machines)[1:]


class BitParallelSimulator:
    """Levelized, type-grouped, machine-parallel simulator."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._build_schedule()
        self._scratch_cache: Dict[int, _PassScratch] = {}

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------
    def _build_schedule(self) -> None:
        netlist = self.netlist
        levels = netlist.levelize()

        grouped: Dict[Tuple[int, str], List[int]] = {}
        for gate in netlist.gates:
            if gate.is_sequential:
                continue
            grouped.setdefault(
                (levels[gate.index], gate.cell.name), []
            ).append(gate.index)

        self._comb_groups: List[Tuple[Cell, np.ndarray, np.ndarray]] = []
        for (_, _), gate_indices in sorted(grouped.items()):
            first = netlist.gates[gate_indices[0]]
            out_idx = np.array(
                [netlist.gates[i].output for i in gate_indices],
                dtype=np.intp,
            )
            in_idx = np.array(
                [netlist.gates[i].inputs for i in gate_indices],
                dtype=np.intp,
            ).reshape(len(gate_indices), first.cell.n_inputs)
            self._comb_groups.append((first.cell, out_idx, in_idx))

        flop_grouped: Dict[str, List[int]] = {}
        for gate in netlist.sequential_gates():
            flop_grouped.setdefault(gate.cell.name, []).append(gate.index)
        self._flop_groups: List[Tuple[Cell, np.ndarray, np.ndarray]] = []
        for _, gate_indices in sorted(flop_grouped.items()):
            first = netlist.gates[gate_indices[0]]
            out_idx = np.array(
                [netlist.gates[i].output for i in gate_indices],
                dtype=np.intp,
            )
            in_idx = np.array(
                [netlist.gates[i].inputs for i in gate_indices],
                dtype=np.intp,
            )
            self._flop_groups.append((first.cell, out_idx, in_idx))

        self._pi_idx = np.array(netlist.input_nets(), dtype=np.intp)
        self._pi_names = netlist.input_names()
        self._po_idx = np.array(
            [net for net, _ in netlist.primary_outputs], dtype=np.intp
        )
        self._flop_out_idx = np.array(
            [gate.output for gate in netlist.sequential_gates()],
            dtype=np.intp,
        )

    def _scratch(self, n_words: int) -> _PassScratch:
        scratch = self._scratch_cache.get(n_words)
        if scratch is None:
            scratch = _PassScratch(self, n_words)
            self._scratch_cache[n_words] = scratch
        return scratch

    # ------------------------------------------------------------------
    # inner loops
    # ------------------------------------------------------------------
    def _check_workload(self, workload: Workload) -> None:
        if workload.input_names != self._pi_names:
            raise SimulationError(
                f"workload {workload.name!r} input order does not match "
                f"netlist {self.netlist.name!r}"
            )

    def _settle(
        self,
        values: np.ndarray,
        masks: Optional[_FaultMasks],
        scratch: _PassScratch,
    ) -> None:
        """Evaluate all combinational groups in level order."""
        for index, (cell, out_idx, in_idx) in enumerate(
            self._comb_groups
        ):
            if in_idx.shape[1] == 0:
                values[out_idx] = (
                    masks.const_out[index] if masks is not None
                    else scratch.const_out[index]
                )
                continue
            gather = scratch.comb_gather[index]
            np.take(values, in_idx, axis=0, out=gather)
            out = cell.function(
                [gather[:, position]
                 for position in range(in_idx.shape[1])],
                ONES,
            )
            if masks is not None and masks.comb[index] is not None:
                keep, forced = masks.comb[index]
                out &= keep
                out |= forced
            values[out_idx] = out

    def _commit(
        self,
        values: np.ndarray,
        masks: Optional[_FaultMasks],
        scratch: _PassScratch,
    ) -> None:
        """Compute and commit all flip-flop next-states."""
        staged: List[Tuple[np.ndarray, np.ndarray]] = []
        for index, (cell, out_idx, in_idx) in enumerate(
            self._flop_groups
        ):
            gather = scratch.flop_gather[index]
            np.take(values, in_idx, axis=0, out=gather)
            out = cell.function(
                [gather[:, position]
                 for position in range(in_idx.shape[1])],
                ONES,
            )
            if masks is not None and masks.flops[index] is not None:
                keep, forced = masks.flops[index]
                out &= keep
                out |= forced
            staged.append((out_idx, out))
        for out_idx, out in staged:
            values[out_idx] = out

    def _apply_inputs(self, values: np.ndarray, bits: np.ndarray) -> None:
        # (n_pi, 1) broadcasts across all machine words on assignment.
        values[self._pi_idx] = np.where(bits[:, None], ONES, ZERO)

    def _compare_outputs(
        self, values: np.ndarray, observation, scratch: _PassScratch,
        trace_row: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One cycle's packed mismatch mask (a view into scratch)."""
        mismatch = scratch.mismatch
        if not len(self._po_idx):
            mismatch[:] = ZERO
            return mismatch
        np.take(values, self._po_idx, axis=0, out=scratch.po)
        golden_bits = (scratch.po[:, 0] & np.uint64(1)).astype(bool)
        broadcast = scratch.golden_broadcast
        broadcast[:] = ZERO
        broadcast[golden_bits] = ONES
        np.bitwise_xor(scratch.po, broadcast, out=scratch.diff)
        if observation is not None:
            compare = observation.compare_mask(golden_bits)
            np.bitwise_or.reduce(
                scratch.diff, axis=0, out=mismatch,
                where=compare[:, None], initial=0,
            )
            if trace_row is not None:
                trace_row[compare] = scratch.diff[compare]
        else:
            np.bitwise_or.reduce(scratch.diff, axis=0, out=mismatch)
            if trace_row is not None:
                trace_row[:] = scratch.diff
        return mismatch

    def _latent_flags(
        self, values: np.ndarray, n_machines: int,
        observed: np.ndarray,
        trace: Optional[PassTrace] = None,
    ) -> np.ndarray:
        """End-of-run state corruption that never reached an output."""
        if not len(self._flop_out_idx):
            return np.zeros(n_machines - 1, dtype=bool)
        state = values[self._flop_out_idx]
        golden_state = (state[:, 0] & np.uint64(1)).astype(bool)
        per_flop = state ^ np.where(golden_state[:, None], ONES, ZERO)
        if trace is not None:
            trace.flop_end_diff[:] = per_flop
        state_diff = np.bitwise_or.reduce(per_flop, axis=0)
        corrupted = _machine_flags(state_diff, n_machines)[1:]
        return corrupted & ~observed

    # ------------------------------------------------------------------
    # golden runs
    # ------------------------------------------------------------------
    def golden_stats(self, workloads: Sequence[Workload]) -> GoldenStats:
        """Accumulate per-net state/transition counts over workloads."""
        n_nets = self.netlist.n_nets
        ones_count = np.zeros(n_nets, dtype=np.int64)
        transition_count = np.zeros(n_nets, dtype=np.int64)
        total_cycles = 0
        scratch = self._scratch(1)
        for workload in workloads:
            self._check_workload(workload)
            values = np.zeros((n_nets, 1), dtype=np.uint64)
            stimulus = workload.vectors.astype(bool)
            previous: Optional[np.ndarray] = None
            for cycle in range(workload.cycles):
                self._apply_inputs(values, stimulus[cycle])
                self._settle(values, None, scratch)
                self._commit(values, None, scratch)
                bits = (values[:, 0] & np.uint64(1)).astype(np.int64)
                ones_count += bits
                if previous is not None:
                    transition_count += bits ^ previous
                previous = bits
            total_cycles += workload.cycles
        return GoldenStats(
            net_names=[net.name for net in self.netlist.nets],
            ones_count=ones_count,
            transition_count=transition_count,
            cycles=total_cycles,
            workloads=len(workloads),
        )

    def golden_outputs(self, workload: Workload) -> np.ndarray:
        """Golden primary-output trace, shape (cycles, n_outputs).

        Used by cross-check tests against the scalar simulator.
        """
        self._check_workload(workload)
        values = np.zeros((self.netlist.n_nets, 1), dtype=np.uint64)
        outputs = np.zeros((workload.cycles, len(self._po_idx)),
                           dtype=np.uint8)
        scratch = self._scratch(1)
        stimulus = workload.vectors.astype(bool)
        for cycle in range(workload.cycles):
            self._apply_inputs(values, stimulus[cycle])
            self._settle(values, None, scratch)
            outputs[cycle] = (
                values[self._po_idx, 0] & np.uint64(1)
            ).astype(np.uint8)
            self._commit(values, None, scratch)
        return outputs

    # ------------------------------------------------------------------
    # fault campaign
    # ------------------------------------------------------------------
    def run_fault_pass(
        self,
        workload: Workload,
        fault_nets: np.ndarray,
        fault_values: np.ndarray,
        observation=None,
        trace: Optional[PassTrace] = None,
    ):
        """Simulate one workload against all faults simultaneously.

        Args:
            workload: Stimulus to replay.
            fault_nets: Net index per fault (the faulted gate's output).
            fault_values: Stuck-at value (0/1) per fault.
            observation: Optional
                :class:`repro.fi.observation.CompiledObservation`; when
                given, each output participates in the golden-vs-faulty
                comparison only on cycles where its strobe is active in
                the golden run.
            trace: Optional pre-allocated :class:`PassTrace`; when
                given, the gated per-output mismatch words of every
                cycle and the end-of-run per-flop state diff are
                recorded for incremental (ECO) reuse.

        Returns:
            ``(error_cycles, detection_cycle, latent)`` — per-fault
            count of cycles with a functional output mismatch,
            first-mismatch cycle (-1 when never), and end-of-run
            state-corruption flags for faults that never reached an
            output.
        """
        self._check_workload(workload)
        n_faults = len(fault_nets)
        n_machines = n_faults + 1
        n_words = (n_machines + 63) // 64
        n_nets = self.netlist.n_nets

        clear = np.zeros((n_nets, n_words), dtype=np.uint64)
        force = np.zeros((n_nets, n_words), dtype=np.uint64)
        machine = np.arange(1, n_machines)
        words, bits = machine >> 6, machine & 63
        bit_masks = np.uint64(1) << bits.astype(np.uint64)
        np.bitwise_or.at(clear, (fault_nets, words), bit_masks)
        stuck_one = fault_values.astype(bool)
        np.bitwise_or.at(
            force,
            (fault_nets[stuck_one], words[stuck_one]),
            bit_masks[stuck_one],
        )

        scratch = self._scratch(n_words)
        masks = _FaultMasks(self, clear, force, scratch)
        accumulator = MismatchAccumulator(n_machines, n_words)

        # The stuck value holds from t=0: faulty nets (notably flop
        # outputs, whose forcing is otherwise applied at commit time)
        # start at their forced state rather than the reset state.
        values = force.copy()
        stimulus = workload.vectors.astype(bool)

        for cycle in range(workload.cycles):
            self._apply_inputs(values, stimulus[cycle])
            self._settle(values, masks, scratch)
            mismatch = self._compare_outputs(
                values, observation, scratch,
                trace.output_diff[cycle] if trace is not None else None,
            )
            accumulator.record(mismatch, cycle)
            self._commit(values, masks, scratch)

        if accumulator.golden_diverged:
            raise SimulationError(
                "golden machine diverged from itself — engine bug"
            )

        observed = accumulator.observed()
        latent = self._latent_flags(values, n_machines, observed,
                                    trace)
        return (accumulator.error_cycles(),
                accumulator.detection_cycle, latent)

    def run_packed_fault_trace(
        self,
        workloads: Sequence[Workload],
        fault_nets: np.ndarray,
        fault_values: np.ndarray,
        observation=None,
    ) -> PassTrace:
        """Every workload x every fault in ONE bit-parallel pass.

        The machine axis is laid out workload-major: workload *w* owns
        the contiguous lane span ``[w*(n_faults+1), (w+1)*(n_faults+1))``
        with its own golden machine at the span start, so stimulus,
        golden comparison, and strobe gating are all per-span.  With a
        small netlist (an ECO support cone) the per-cycle Python
        dispatch is the entire cost, and packing divides it by the
        workload count.

        Requires uniform workload cycle counts.  Returns only a
        :class:`PassTrace` (per-output gated mismatch words, per-flop
        end-state diff) — the caller slices per-(workload, fault) lanes
        out of the packed words.
        """
        cycles = {workload.cycles for workload in workloads}
        if len(cycles) != 1:
            raise SimulationError(
                "packed fault trace requires uniform workload cycle "
                f"counts, got {sorted(cycles)}"
            )
        n_cycles = cycles.pop()
        for workload in workloads:
            self._check_workload(workload)

        n_faults = len(fault_nets)
        span = n_faults + 1
        n_machines = span * len(workloads)
        n_words = (n_machines + 63) // 64
        n_nets = self.netlist.n_nets

        machine = np.concatenate([
            group * span + 1 + np.arange(n_faults)
            for group in range(len(workloads))
        ])
        nets_tiled = np.tile(np.asarray(fault_nets, dtype=np.intp),
                             len(workloads))
        values_tiled = np.tile(
            np.asarray(fault_values, dtype=np.uint8), len(workloads)
        )
        words, bits = machine >> 6, machine & 63
        bit_masks = np.uint64(1) << bits.astype(np.uint64)
        clear = np.zeros((n_nets, n_words), dtype=np.uint64)
        force = np.zeros((n_nets, n_words), dtype=np.uint64)
        np.bitwise_or.at(clear, (nets_tiled, words), bit_masks)
        stuck_one = values_tiled.astype(bool)
        np.bitwise_or.at(
            force,
            (nets_tiled[stuck_one], words[stuck_one]),
            bit_masks[stuck_one],
        )

        # Per-span packed masks: group_masks[w] covers workload w's
        # lanes; valid_mask zeroes the unused tail of the last word.
        all_machines = np.arange(n_machines)
        span_of = all_machines // span
        lane_bits = np.zeros((len(workloads), n_words * 64),
                             dtype=np.uint8)
        lane_bits[span_of, all_machines] = 1
        group_masks = np.packbits(
            lane_bits, axis=1, bitorder="little"
        ).view(np.uint64)
        valid_mask = np.bitwise_or.reduce(group_masks, axis=0)

        # Stimulus: per-machine words (each lane replays its span's
        # workload), packed once up front.
        golden_machines = (np.arange(len(workloads)) * span)
        stimulus = np.stack(
            [w.vectors.astype(np.uint8) for w in workloads], axis=2
        )  # (cycles, n_pi, n_workloads)
        machine_bits = np.zeros(
            (n_cycles, len(self._pi_idx), n_words * 64), dtype=np.uint8
        )
        machine_bits[:, :, :n_machines] = stimulus[:, :, span_of]
        stim_words = np.packbits(
            machine_bits, axis=2, bitorder="little"
        ).view(np.uint64)  # (cycles, n_pi, n_words)

        scratch = self._scratch(n_words)
        masks = _FaultMasks(self, clear, force, scratch)
        trace = PassTrace.allocate(
            n_cycles, len(self._po_idx), len(self._flop_out_idx),
            n_words,
        )
        golden_words = (golden_machines >> 6).astype(np.intp)
        golden_shift = (golden_machines & 63).astype(np.uint64)

        def span_broadcast(rows: np.ndarray) -> np.ndarray:
            """Per-row packed golden broadcast: each span filled with
            its own golden machine's bit."""
            golden = ((rows[:, golden_words] >> golden_shift)
                      & np.uint64(1)).astype(bool)
            return golden.astype(np.uint64) @ group_masks

        values = force.copy()
        po_idx = self._po_idx
        for cycle in range(n_cycles):
            values[self._pi_idx] = stim_words[cycle]
            self._settle(values, masks, scratch)
            if len(po_idx):
                po = values.take(po_idx, axis=0)
                diff = (po ^ span_broadcast(po)) & valid_mask
                if observation is not None:
                    gated = self._packed_compare_gate(
                        po, observation, group_masks,
                        golden_words, golden_shift,
                    )
                    diff &= gated
                trace.output_diff[cycle] = diff
            self._commit(values, masks, scratch)

        if len(self._flop_out_idx):
            state = values[self._flop_out_idx]
            trace.flop_end_diff[:] = (
                (state ^ span_broadcast(state)) & valid_mask
            )
        return trace

    def _packed_compare_gate(
        self, po: np.ndarray, observation, group_masks: np.ndarray,
        golden_words: np.ndarray, golden_shift: np.ndarray,
    ) -> np.ndarray:
        """Per-output packed compare-enable words for one cycle: a
        strobed output keeps only the spans whose golden strobe value
        is active; unstrobed outputs keep every span."""
        golden = ((po[:, golden_words] >> golden_shift)
                  & np.uint64(1)).astype(bool)  # (n_out, n_spans)
        enabled = np.ones_like(golden)
        strobed = observation.strobe_index >= 0
        enabled[strobed] = (
            golden[observation.strobe_index[strobed]]
            == observation.strobe_active[strobed, None].astype(bool)
        )
        return enabled.astype(np.uint64) @ group_masks

    # ------------------------------------------------------------------
    # transient (SEU) campaign
    # ------------------------------------------------------------------
    def run_transient_pass(
        self,
        workload: Workload,
        fault_nets: np.ndarray,
        fault_cycles: np.ndarray,
        observation=None,
    ):
        """Simulate single-event upsets: one state-bit flip per machine.

        Machine *m* runs fault-free except that at the start of cycle
        ``fault_cycles[m-1]`` the flip-flop output net
        ``fault_nets[m-1]`` is inverted — the standard SEU model (soft
        errors strike state elements; combinational glitches are
        filtered unless captured).

        Returns ``(error_cycles, detection_cycle, latent)`` with the
        same semantics as :meth:`run_fault_pass`.
        """
        self._check_workload(workload)
        n_faults = len(fault_nets)
        n_machines = n_faults + 1
        n_words = (n_machines + 63) // 64
        n_nets = self.netlist.n_nets

        flop_nets = set(int(net) for net in self._flop_out_idx)
        for net in fault_nets:
            if int(net) not in flop_nets:
                raise SimulationError(
                    "transient faults target flip-flop outputs only"
                )

        machine = np.arange(1, n_machines)
        words, bits = machine >> 6, machine & 63
        bit_masks = np.uint64(1) << bits.astype(np.uint64)

        # Group flips by injection cycle for O(1) lookup per cycle.
        flips_at: dict = {}
        for fault_index in range(n_faults):
            cycle = int(fault_cycles[fault_index])
            if not 0 <= cycle < workload.cycles:
                raise SimulationError(
                    f"injection cycle {cycle} outside the workload"
                )
            flips_at.setdefault(cycle, []).append(fault_index)

        scratch = self._scratch(n_words)
        accumulator = MismatchAccumulator(n_machines, n_words)
        values = np.zeros((n_nets, n_words), dtype=np.uint64)
        stimulus = workload.vectors.astype(bool)

        for cycle in range(workload.cycles):
            for fault_index in flips_at.get(cycle, ()):
                net = int(fault_nets[fault_index])
                word = int(words[fault_index])
                values[net, word] ^= bit_masks[fault_index]

            self._apply_inputs(values, stimulus[cycle])
            self._settle(values, None, scratch)
            mismatch = self._compare_outputs(values, observation,
                                             scratch)
            accumulator.record(mismatch, cycle)
            self._commit(values, None, scratch)

        if accumulator.golden_diverged:
            raise SimulationError(
                "golden machine diverged from itself — engine bug"
            )

        observed = accumulator.observed()
        latent = self._latent_flags(values, n_machines, observed)
        return (accumulator.error_cycles(),
                accumulator.detection_cycle, latent)


def _machine_flags(mask_words: np.ndarray, n_machines: int) -> np.ndarray:
    """Expand packed machine-mask words into a boolean vector."""
    bytes_view = mask_words.view(np.uint8)
    bits = np.unpackbits(bytes_view, bitorder="little")
    return bits[:n_machines].astype(bool)


def _machines_from_mask(mask_words: np.ndarray) -> np.ndarray:
    """Machine indices whose bit is set in packed mask words."""
    bytes_view = mask_words.view(np.uint8)
    bits = np.unpackbits(bytes_view, bitorder="little")
    return np.flatnonzero(bits)
