"""64-way bit-parallel logic simulation engine.

This is the performance core of the fault-injection substrate (the
stand-in for the paper's Cadence Xcelium campaigns).  Net values are
``numpy.uint64`` words: bit *b* of word *w* carries the value seen by
*machine* ``64*w + b``.  Machine 0 is always the fault-free golden
machine; every other machine runs the same stimulus with one stuck-at
fault permanently forced on one gate output.  A whole fault universe
therefore simulates in a single pass per workload, with every gate
evaluation a handful of vectorized numpy operations.

The schedule is levelized and type-grouped: gates of the same cell type
on the same topological level evaluate together as one gather/compute/
scatter step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.cells import Cell
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError

ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
ZERO = np.uint64(0)


@dataclass
class GoldenStats:
    """Per-net activity profile accumulated over golden simulations.

    Drives the paper's probability features: ``P(net == 1)`` is
    ``ones_count / cycles`` and the transition probability is
    ``transition_count / (cycles - n_workloads)`` (the first cycle of
    each workload has no predecessor).
    """

    net_names: List[str]
    ones_count: np.ndarray        # int64 per net
    transition_count: np.ndarray  # int64 per net
    cycles: int
    workloads: int

    @property
    def state_probability_one(self) -> np.ndarray:
        """P(net == 1) per net."""
        if self.cycles == 0:
            return np.zeros(len(self.net_names))
        return self.ones_count / self.cycles

    @property
    def state_probability_zero(self) -> np.ndarray:
        """P(net == 0) per net."""
        return 1.0 - self.state_probability_one

    @property
    def transition_probability(self) -> np.ndarray:
        """P(net value changes between consecutive cycles), per net."""
        denominator = self.cycles - self.workloads
        if denominator <= 0:
            return np.zeros(len(self.net_names))
        return self.transition_count / denominator


class BitParallelSimulator:
    """Levelized, type-grouped, machine-parallel simulator."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._build_schedule()

    # ------------------------------------------------------------------
    # schedule construction
    # ------------------------------------------------------------------
    def _build_schedule(self) -> None:
        netlist = self.netlist
        levels = netlist.levelize()

        grouped: Dict[Tuple[int, str], List[int]] = {}
        for gate in netlist.gates:
            if gate.is_sequential:
                continue
            grouped.setdefault(
                (levels[gate.index], gate.cell.name), []
            ).append(gate.index)

        self._comb_groups: List[Tuple[Cell, np.ndarray, np.ndarray]] = []
        for (_, _), gate_indices in sorted(grouped.items()):
            first = netlist.gates[gate_indices[0]]
            out_idx = np.array(
                [netlist.gates[i].output for i in gate_indices],
                dtype=np.intp,
            )
            in_idx = np.array(
                [netlist.gates[i].inputs for i in gate_indices],
                dtype=np.intp,
            ).reshape(len(gate_indices), first.cell.n_inputs)
            self._comb_groups.append((first.cell, out_idx, in_idx))

        flop_grouped: Dict[str, List[int]] = {}
        for gate in netlist.sequential_gates():
            flop_grouped.setdefault(gate.cell.name, []).append(gate.index)
        self._flop_groups: List[Tuple[Cell, np.ndarray, np.ndarray]] = []
        for _, gate_indices in sorted(flop_grouped.items()):
            first = netlist.gates[gate_indices[0]]
            out_idx = np.array(
                [netlist.gates[i].output for i in gate_indices],
                dtype=np.intp,
            )
            in_idx = np.array(
                [netlist.gates[i].inputs for i in gate_indices],
                dtype=np.intp,
            )
            self._flop_groups.append((first.cell, out_idx, in_idx))

        self._pi_idx = np.array(netlist.input_nets(), dtype=np.intp)
        self._pi_names = netlist.input_names()
        self._po_idx = np.array(
            [net for net, _ in netlist.primary_outputs], dtype=np.intp
        )
        self._flop_out_idx = np.array(
            [gate.output for gate in netlist.sequential_gates()],
            dtype=np.intp,
        )

    # ------------------------------------------------------------------
    # inner loops
    # ------------------------------------------------------------------
    def _check_workload(self, workload: Workload) -> None:
        if workload.input_names != self._pi_names:
            raise SimulationError(
                f"workload {workload.name!r} input order does not match "
                f"netlist {self.netlist.name!r}"
            )

    def _settle(
        self,
        values: np.ndarray,
        clear: Optional[np.ndarray],
        force: Optional[np.ndarray],
    ) -> None:
        """Evaluate all combinational groups in level order."""
        for cell, out_idx, in_idx in self._comb_groups:
            if in_idx.shape[1] == 0:
                constant = cell.function([], ONES)
                out = np.full(
                    (len(out_idx), values.shape[1]), constant,
                    dtype=np.uint64,
                )
            else:
                ins = values[in_idx]  # (g, k, W)
                out = cell.function(
                    [ins[:, position] for position in range(in_idx.shape[1])],
                    ONES,
                )
            if clear is not None:
                out = (out & ~clear[out_idx]) | force[out_idx]
            values[out_idx] = out

    def _commit(
        self,
        values: np.ndarray,
        clear: Optional[np.ndarray],
        force: Optional[np.ndarray],
    ) -> None:
        """Compute and commit all flip-flop next-states."""
        staged: List[Tuple[np.ndarray, np.ndarray]] = []
        for cell, out_idx, in_idx in self._flop_groups:
            ins = values[in_idx]
            out = cell.function(
                [ins[:, position] for position in range(in_idx.shape[1])],
                ONES,
            )
            staged.append((out_idx, out))
        for out_idx, out in staged:
            if clear is not None:
                out = (out & ~clear[out_idx]) | force[out_idx]
            values[out_idx] = out

    def _apply_inputs(self, values: np.ndarray, row: np.ndarray) -> None:
        bits = row.astype(bool)
        # (n_pi, 1) broadcasts across all machine words on assignment.
        values[self._pi_idx] = np.where(bits[:, None], ONES, ZERO)

    # ------------------------------------------------------------------
    # golden runs
    # ------------------------------------------------------------------
    def golden_stats(self, workloads: Sequence[Workload]) -> GoldenStats:
        """Accumulate per-net state/transition counts over workloads."""
        n_nets = self.netlist.n_nets
        ones_count = np.zeros(n_nets, dtype=np.int64)
        transition_count = np.zeros(n_nets, dtype=np.int64)
        total_cycles = 0
        for workload in workloads:
            self._check_workload(workload)
            values = np.zeros((n_nets, 1), dtype=np.uint64)
            previous: Optional[np.ndarray] = None
            for cycle in range(workload.cycles):
                self._apply_inputs(values, workload.vectors[cycle])
                self._settle(values, None, None)
                self._commit(values, None, None)
                bits = (values[:, 0] & np.uint64(1)).astype(np.int64)
                ones_count += bits
                if previous is not None:
                    transition_count += bits ^ previous
                previous = bits
            total_cycles += workload.cycles
        return GoldenStats(
            net_names=[net.name for net in self.netlist.nets],
            ones_count=ones_count,
            transition_count=transition_count,
            cycles=total_cycles,
            workloads=len(workloads),
        )

    def golden_outputs(self, workload: Workload) -> np.ndarray:
        """Golden primary-output trace, shape (cycles, n_outputs).

        Used by cross-check tests against the scalar simulator.
        """
        self._check_workload(workload)
        values = np.zeros((self.netlist.n_nets, 1), dtype=np.uint64)
        outputs = np.zeros((workload.cycles, len(self._po_idx)),
                           dtype=np.uint8)
        for cycle in range(workload.cycles):
            self._apply_inputs(values, workload.vectors[cycle])
            self._settle(values, None, None)
            outputs[cycle] = (
                values[self._po_idx, 0] & np.uint64(1)
            ).astype(np.uint8)
            self._commit(values, None, None)
        return outputs

    # ------------------------------------------------------------------
    # fault campaign
    # ------------------------------------------------------------------
    def run_fault_pass(
        self,
        workload: Workload,
        fault_nets: np.ndarray,
        fault_values: np.ndarray,
        observation=None,
    ):
        """Simulate one workload against all faults simultaneously.

        Args:
            workload: Stimulus to replay.
            fault_nets: Net index per fault (the faulted gate's output).
            fault_values: Stuck-at value (0/1) per fault.
            observation: Optional
                :class:`repro.fi.observation.CompiledObservation`; when
                given, each output participates in the golden-vs-faulty
                comparison only on cycles where its strobe is active in
                the golden run.

        Returns:
            ``(error_cycles, detection_cycle, latent)`` — per-fault
            count of cycles with a functional output mismatch,
            first-mismatch cycle (-1 when never), and end-of-run
            state-corruption flags for faults that never reached an
            output.
        """
        self._check_workload(workload)
        n_faults = len(fault_nets)
        n_machines = n_faults + 1
        n_words = (n_machines + 63) // 64
        n_nets = self.netlist.n_nets

        clear = np.zeros((n_nets, n_words), dtype=np.uint64)
        force = np.zeros((n_nets, n_words), dtype=np.uint64)
        machine = np.arange(1, n_machines)
        words, bits = machine >> 6, machine & 63
        bit_masks = np.uint64(1) << bits.astype(np.uint64)
        np.bitwise_or.at(clear, (fault_nets, words), bit_masks)
        stuck_one = fault_values.astype(bool)
        np.bitwise_or.at(
            force,
            (fault_nets[stuck_one], words[stuck_one]),
            bit_masks[stuck_one],
        )

        # The stuck value holds from t=0: faulty nets (notably flop
        # outputs, whose forcing is otherwise applied at commit time)
        # start at their forced state rather than the reset state.
        values = force.copy()
        seen = np.zeros(n_words, dtype=np.uint64)
        detection_cycle = np.full(n_faults, -1, dtype=np.int64)
        error_cycles = np.zeros(n_machines, dtype=np.int64)

        for cycle in range(workload.cycles):
            self._apply_inputs(values, workload.vectors[cycle])
            self._settle(values, clear, force)

            po_values = values[self._po_idx]  # (p, W)
            golden_bits = (po_values[:, 0] & np.uint64(1)).astype(bool)
            golden_broadcast = np.where(golden_bits[:, None], ONES, ZERO)
            difference = po_values ^ golden_broadcast
            if observation is not None:
                compare = observation.compare_mask(golden_bits)
                difference = difference[compare]
            mismatch = (
                np.bitwise_or.reduce(difference, axis=0)
                if len(difference) else np.zeros_like(seen)
            )
            if mismatch.any():
                error_cycles += _machine_flags(mismatch, n_machines)
                new = mismatch & ~seen
                if new.any():
                    seen |= mismatch
                    for machine_index in _machines_from_mask(new):
                        if machine_index > 0:
                            detection_cycle[machine_index - 1] = cycle

            self._commit(values, clear, force)

        if bool(seen[0] & np.uint64(1)):
            raise SimulationError(
                "golden machine diverged from itself — engine bug"
            )

        observed = _machine_flags(seen, n_machines)[1:]

        # Latent corruption: faulty state differs from golden at the end
        # but no output ever mismatched.
        if len(self._flop_out_idx):
            state = values[self._flop_out_idx]
            golden_state = (state[:, 0] & np.uint64(1)).astype(bool)
            state_diff = np.bitwise_or.reduce(
                state ^ np.where(golden_state[:, None], ONES, ZERO), axis=0
            )
            corrupted = _machine_flags(state_diff, n_machines)[1:]
        else:
            corrupted = np.zeros(n_faults, dtype=bool)
        latent = corrupted & ~observed
        return error_cycles[1:], detection_cycle, latent


    # ------------------------------------------------------------------
    # transient (SEU) campaign
    # ------------------------------------------------------------------
    def run_transient_pass(
        self,
        workload: Workload,
        fault_nets: np.ndarray,
        fault_cycles: np.ndarray,
        observation=None,
    ):
        """Simulate single-event upsets: one state-bit flip per machine.

        Machine *m* runs fault-free except that at the start of cycle
        ``fault_cycles[m-1]`` the flip-flop output net
        ``fault_nets[m-1]`` is inverted — the standard SEU model (soft
        errors strike state elements; combinational glitches are
        filtered unless captured).

        Returns ``(error_cycles, detection_cycle, latent)`` with the
        same semantics as :meth:`run_fault_pass`.
        """
        self._check_workload(workload)
        n_faults = len(fault_nets)
        n_machines = n_faults + 1
        n_words = (n_machines + 63) // 64
        n_nets = self.netlist.n_nets

        flop_nets = set(int(net) for net in self._flop_out_idx)
        for net in fault_nets:
            if int(net) not in flop_nets:
                raise SimulationError(
                    "transient faults target flip-flop outputs only"
                )

        machine = np.arange(1, n_machines)
        words, bits = machine >> 6, machine & 63
        bit_masks = np.uint64(1) << bits.astype(np.uint64)

        # Group flips by injection cycle for O(1) lookup per cycle.
        flips_at: dict = {}
        for fault_index in range(n_faults):
            cycle = int(fault_cycles[fault_index])
            if not 0 <= cycle < workload.cycles:
                raise SimulationError(
                    f"injection cycle {cycle} outside the workload"
                )
            flips_at.setdefault(cycle, []).append(fault_index)

        values = np.zeros((n_nets, n_words), dtype=np.uint64)
        seen = np.zeros(n_words, dtype=np.uint64)
        detection_cycle = np.full(n_faults, -1, dtype=np.int64)
        error_cycles = np.zeros(n_machines, dtype=np.int64)

        for cycle in range(workload.cycles):
            for fault_index in flips_at.get(cycle, ()):
                net = int(fault_nets[fault_index])
                word = int(words[fault_index])
                values[net, word] ^= bit_masks[fault_index]

            self._apply_inputs(values, workload.vectors[cycle])
            self._settle(values, None, None)

            po_values = values[self._po_idx]
            golden_bits = (po_values[:, 0] & np.uint64(1)).astype(bool)
            golden_broadcast = np.where(golden_bits[:, None], ONES, ZERO)
            difference = po_values ^ golden_broadcast
            if observation is not None:
                compare = observation.compare_mask(golden_bits)
                difference = difference[compare]
            mismatch = (
                np.bitwise_or.reduce(difference, axis=0)
                if len(difference) else np.zeros_like(seen)
            )
            if mismatch.any():
                error_cycles += _machine_flags(mismatch, n_machines)
                new = mismatch & ~seen
                if new.any():
                    seen |= mismatch
                    for machine_index in _machines_from_mask(new):
                        if machine_index > 0:
                            detection_cycle[machine_index - 1] = cycle

            self._commit(values, None, None)

        if bool(seen[0] & np.uint64(1)):
            raise SimulationError(
                "golden machine diverged from itself — engine bug"
            )

        observed = _machine_flags(seen, n_machines)[1:]
        if len(self._flop_out_idx):
            state = values[self._flop_out_idx]
            golden_state = (state[:, 0] & np.uint64(1)).astype(bool)
            state_diff = np.bitwise_or.reduce(
                state ^ np.where(golden_state[:, None], ONES, ZERO),
                axis=0,
            )
            corrupted = _machine_flags(state_diff, n_machines)[1:]
        else:
            corrupted = np.zeros(n_faults, dtype=bool)
        latent = corrupted & ~observed
        return error_cycles[1:], detection_cycle, latent


def _machine_flags(mask_words: np.ndarray, n_machines: int) -> np.ndarray:
    """Expand packed machine-mask words into a boolean vector."""
    bytes_view = mask_words.view(np.uint8)
    bits = np.unpackbits(bytes_view, bitorder="little")
    return bits[:n_machines].astype(bool)


def _machines_from_mask(mask_words: np.ndarray) -> np.ndarray:
    """Machine indices whose bit is set in packed mask words."""
    bytes_view = mask_words.view(np.uint8)
    bits = np.unpackbits(bytes_view, bitorder="little")
    return np.flatnonzero(bits)
