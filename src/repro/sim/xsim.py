"""Three-valued (0/1/X) simulation and reset verification.

Power-on state is unknown: every flip-flop starts at ``X`` and a design
is only safely resettable if its reset sequence drives every state
element (and output) to a known value regardless of the initial state.
The two-valued engines assume reset-to-0 start state; this module
checks that assumption instead of baking it in.

Values are encoded dual-rail: ``(can_be_0, can_be_1)`` — ``X`` is
``(1, 1)``.  Gate evaluation is exact per cell (both truth-table
completions are enumerated), so the analysis is *pessimistic only
through reconvergence* (an X XOR with itself stays X), the standard
behaviour of 3-valued logic simulators.

:func:`reset_analysis` is the user-facing check: apply the reset
sequence from the all-X state and report any net still unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.netlist import Netlist
from repro.utils.errors import SimulationError

#: Dual-rail constants: (can_be_0, can_be_1).
ZERO = (True, False)
ONE = (False, True)
X = (True, True)

XValue = Tuple[bool, bool]


def _label(value: XValue) -> str:
    if value == ZERO:
        return "0"
    if value == ONE:
        return "1"
    return "X"


class XSimulator:
    """Cycle-accurate 3-valued simulator (flops start at X)."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = [
            netlist.gates[index]
            for index in netlist.topological_order()
            if not netlist.gates[index].is_sequential
        ]
        self._flops = netlist.sequential_gates()
        self._pi_names = netlist.input_names()
        self._pi_nets = netlist.input_nets()
        self.reset_to_unknown()

    def reset_to_unknown(self) -> None:
        """All nets (in particular all flop states) become X."""
        self.values: List[XValue] = [X] * self.netlist.n_nets

    def _evaluate(self, gate) -> XValue:
        """Exact 3-valued cell evaluation: enumerate completions of the
        X inputs and merge the possible outputs."""
        inputs = [self.values[net] for net in gate.inputs]
        unknown = [i for i, value in enumerate(inputs) if value == X]
        if len(unknown) > 6:
            return X  # too many unknowns: pessimistic short-cut
        can_be = [False, False]
        base = [0 if value == ZERO else 1 for value in inputs]
        for assignment in range(1 << len(unknown)):
            bits = list(base)
            for position, input_index in enumerate(unknown):
                bits[input_index] = (assignment >> position) & 1
            out = int(gate.cell.function(tuple(bits), 1)) & 1
            can_be[out] = True
            if can_be[0] and can_be[1]:
                return X
        return (can_be[0], can_be[1])

    def step(self, inputs: Mapping[str, int]) -> Dict[str, XValue]:
        """Advance one cycle; unknown inputs may be passed as ``"x"``."""
        for name, net in zip(self._pi_names, self._pi_nets):
            if name in inputs:
                value = inputs[name]
                if value in ("x", "X", None):
                    self.values[net] = X
                else:
                    self.values[net] = ONE if value else ZERO
        unknown_names = set(inputs) - set(self._pi_names)
        if unknown_names:
            raise SimulationError(f"unknown inputs {sorted(unknown_names)}")

        for gate in self._order:
            self.values[gate.output] = self._evaluate(gate)

        outputs = {
            name: self.values[net]
            for net, name in self.netlist.primary_outputs
        }

        next_states = [self._evaluate(gate) for gate in self._flops]
        for gate, state in zip(self._flops, next_states):
            self.values[gate.output] = state
        return outputs

    def unknown_flops(self) -> List[str]:
        """Node names of flops whose state is still X."""
        return [
            gate.node_name for gate in self._flops
            if self.values[gate.output] == X
        ]

    def unknown_nets(self) -> List[str]:
        """Names of all nets currently X."""
        return [
            net.name for net in self.netlist.nets
            if self.values[net.index] == X
        ]


@dataclass
class ResetReport:
    """Outcome of :func:`reset_analysis`."""

    design: str
    reset_cycles: int
    settle_cycles: int
    unknown_flops: List[str]
    unknown_outputs: List[str]

    @property
    def resettable(self) -> bool:
        """True when reset fully initializes state and outputs."""
        return not self.unknown_flops and not self.unknown_outputs


def reset_analysis(
    netlist: Netlist,
    reset_input: str = "reset",
    reset_cycles: int = 2,
    settle_cycles: int = 4,
    idle_inputs: Optional[Mapping[str, int]] = None,
) -> ResetReport:
    """Verify the reset sequence initializes the design from all-X.

    Applies ``reset_cycles`` of asserted reset with every other input
    X (the harshest environment — reset must not depend on them), then
    ``settle_cycles`` of deasserted reset in a *quiescent* environment
    (inputs at 0, overridable via ``idle_inputs``, e.g. an idle-high
    serial line), and reports flops and outputs still unknown.

    Unreset data-path registers (enable-only ``DFFE`` holding request
    attributes until first use) legitimately stay X — a finding, not
    necessarily a bug; control state should always initialize.
    """
    if reset_input not in netlist.input_names():
        raise SimulationError(
            f"design has no reset input {reset_input!r}"
        )
    simulator = XSimulator(netlist)
    simulator.reset_to_unknown()

    harsh: Dict[str, object] = {
        name: "x" for name in netlist.input_names()
    }
    quiescent: Dict[str, object] = {
        name: 0 for name in netlist.input_names()
    }
    if idle_inputs:
        harsh.update(idle_inputs)
        quiescent.update(idle_inputs)

    outputs: Dict[str, XValue] = {}
    for _ in range(reset_cycles):
        outputs = simulator.step({**harsh, reset_input: 1})
    for _ in range(settle_cycles):
        outputs = simulator.step({**quiescent, reset_input: 0})

    unknown_outputs = [
        name for name, value in outputs.items() if value == X
    ]
    return ResetReport(
        design=netlist.name,
        reset_cycles=reset_cycles,
        settle_cycles=settle_cycles,
        unknown_flops=simulator.unknown_flops(),
        unknown_outputs=unknown_outputs,
    )
