"""Logic simulation: scalar reference engine, 64-way bit-parallel
engine, stimulus containers, and per-design workload generators."""

from repro.sim.bitparallel import BitParallelSimulator, GoldenStats
from repro.sim.simulator import Driver, Simulator
from repro.sim.vcd import dump_vcd, trace_to_vcd
from repro.sim.xsim import ResetReport, XSimulator, reset_analysis
from repro.sim.waveform import Trace, Workload
from repro.sim.workloads import (
    DEFAULT_CYCLES,
    design_workloads,
    icfsm_workload,
    or1200_if_workload,
    random_workload,
    sdram_workload,
    uart_workload,
)

__all__ = [
    "BitParallelSimulator",
    "GoldenStats",
    "Driver",
    "Simulator",
    "ResetReport",
    "XSimulator",
    "reset_analysis",
    "dump_vcd",
    "trace_to_vcd",
    "Trace",
    "Workload",
    "DEFAULT_CYCLES",
    "design_workloads",
    "icfsm_workload",
    "or1200_if_workload",
    "random_workload",
    "sdram_workload",
    "uart_workload",
]
