"""Workload generation.

The paper trains on fault-injection results aggregated over *diverse
workloads*.  This module provides that diversity for each evaluation
design: protocol-aware closed-loop drivers (a host issuing memory
requests, a cache answering fetches, a bus interface delivering refill
beats) recorded into replayable vectors, plus constrained-random
stimulus for generic designs.

Every generator starts with a reset pulse and is fully deterministic
given its seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.sim.simulator import Simulator
from repro.sim.waveform import Workload
from repro.utils.rng import SeedLike, derive_rng

DEFAULT_CYCLES = 200


def random_workload(
    netlist: Netlist,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
    name: Optional[str] = None,
    reset_input: str = "reset",
    reset_cycles: int = 2,
    hold: int = 1,
    bias: float = 0.5,
) -> Workload:
    """Constrained-random stimulus: reset pulse, then random inputs.

    ``hold`` keeps each random vector stable for that many cycles
    (slower workloads exercise sequential behaviour differently), and
    ``bias`` sets P(bit == 1).
    """
    rng = derive_rng(seed, "random_workload", netlist.name)
    input_names = netlist.input_names()
    vectors = np.zeros((cycles, len(input_names)), dtype=np.uint8)
    cycle = reset_cycles
    while cycle < cycles:
        row = (rng.random(len(input_names)) < bias).astype(np.uint8)
        for repeat in range(hold):
            if cycle + repeat < cycles:
                vectors[cycle + repeat] = row
        cycle += hold
    if reset_input in input_names:
        reset_column = input_names.index(reset_input)
        vectors[:reset_cycles, :] = 0
        vectors[:reset_cycles, reset_column] = 1
        vectors[reset_cycles:, reset_column] = 0
    return Workload(
        name=name or f"random[{seed}]",
        input_names=input_names,
        vectors=vectors,
    )


# ----------------------------------------------------------------------
# SDRAM controller host driver
# ----------------------------------------------------------------------
def sdram_workload(
    netlist: Netlist,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
    name: Optional[str] = None,
    request_rate: float = 0.4,
    write_fraction: float = 0.5,
    address_bits: int = 22,
) -> Workload:
    """Host traffic for the SDRAM controller.

    Models a memory client: after reset it issues read/write requests
    with random addresses at ``request_rate``, holding ``req`` asserted
    until the controller acknowledges, then idling a random gap.
    """
    rng = derive_rng(seed, "sdram_workload", str(cycles))
    state: Dict[str, int] = {"phase": 0, "gap": 0, "addr": 0, "we": 0}

    def driver(cycle: int, outputs: Dict[str, int]) -> Dict[str, int]:
        row: Dict[str, int] = {"reset": 1 if cycle < 2 else 0}
        if cycle < 2:
            return row
        if state["phase"] == 1 and outputs.get("ack"):
            state["phase"] = 0
            state["gap"] = int(rng.integers(0, 6))
        if state["phase"] == 0:
            if state["gap"] > 0:
                state["gap"] -= 1
            elif rng.random() < request_rate:
                state["phase"] = 1
                state["addr"] = int(rng.integers(1 << address_bits))
                state["we"] = int(rng.random() < write_fraction)
        if state["phase"] == 1:
            row["req"] = 1
            row["we"] = state["we"]
            for bit in range(address_bits):
                row[f"haddr_{bit}"] = (state["addr"] >> bit) & 1
        return row

    simulator = Simulator(netlist)
    return simulator.run_driver(
        driver, cycles, name=name or f"sdram_host[{seed}]"
    )


# ----------------------------------------------------------------------
# OR1200 IF-stage cache/pipeline driver
# ----------------------------------------------------------------------
_OR1K_OPCODES = (
    0x00,  # l.j
    0x01,  # l.jal
    0x03,  # l.bnf
    0x04,  # l.bf
    0x05,  # l.nop
    0x06,  # l.movhi
    0x21,  # l.lwz
    0x35,  # l.sw
    0x38,  # l.add family
)


def or1200_if_workload(
    netlist: Netlist,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
    name: Optional[str] = None,
    hit_rate: float = 0.7,
    branch_rate: float = 0.15,
    stall_rate: float = 0.1,
    error_rate: float = 0.02,
    exception_rate: float = 0.02,
) -> Workload:
    """Instruction-cache plus pipeline-backpressure traffic for the IF
    stage: variable-latency acks, realistic OR1K opcodes, taken
    branches, stalls, occasional bus errors and exception redirects.
    """
    rng = derive_rng(seed, "or1200_if_workload", str(cycles))
    state = {"latency": 0}

    def driver(cycle: int, outputs: Dict[str, int]) -> Dict[str, int]:
        row: Dict[str, int] = {"reset": 1 if cycle < 2 else 0}
        if cycle < 2:
            return row
        stalled = rng.random() < stall_rate
        row["stall"] = int(stalled)

        if state["latency"] == 0:
            if rng.random() < hit_rate:
                state["latency"] = 1  # answer this cycle
            else:
                state["latency"] = int(rng.integers(2, 5))
        if state["latency"] == 1:
            if rng.random() < error_rate:
                row["icpu_err"] = 1
            else:
                row["icpu_ack"] = 1
                opcode = int(
                    _OR1K_OPCODES[rng.integers(len(_OR1K_OPCODES))]
                )
                word = (opcode << 26) | int(rng.integers(1 << 26))
                for bit in range(32):
                    row[f"icpu_dat_{bit}"] = (word >> bit) & 1
            state["latency"] = 0
        else:
            state["latency"] -= 1

        if rng.random() < branch_rate:
            row["branch_taken"] = 1
            target = int(rng.integers(1 << 30)) << 2  # word-aligned
            for bit in range(32):
                row[f"branch_addr_{bit}"] = (target >> bit) & 1
        if rng.random() < exception_rate:
            row["except_start"] = 1
            cause = int(rng.integers(1, 8))
            for bit in range(3):
                row[f"except_type_{bit}"] = (cause >> bit) & 1
        return row

    simulator = Simulator(netlist)
    return simulator.run_driver(
        driver, cycles, name=name or f"or1200_if[{seed}]"
    )


# ----------------------------------------------------------------------
# OR1200 ICFSM driver
# ----------------------------------------------------------------------
def icfsm_workload(
    netlist: Netlist,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
    name: Optional[str] = None,
    hit_rate: float = 0.6,
    inhibit_rate: float = 0.08,
    error_rate: float = 0.03,
    invalidate_rate: float = 0.02,
    fetch_rate: float = 0.75,
) -> Workload:
    """CPU fetch stream plus bus-interface responses for the cache FSM.

    Models the CPU side (strobes with random addresses, occasional
    cache-inhibited regions and invalidations) and the memory side
    (refill beats with variable latency, occasional bus errors).  Tag
    lookups answer with one of the two ways matching at ``hit_rate``.
    """
    rng = derive_rng(seed, "icfsm_workload", str(cycles))
    state = {"beat_wait": 0, "addr": 0, "fetching": 0}

    def disturbed(tag: int) -> int:
        return (tag ^ (1 + int(rng.integers(0xFF)))) & 0xFF

    def driver(cycle: int, outputs: Dict[str, int]) -> Dict[str, int]:
        row: Dict[str, int] = {"reset": 1 if cycle < 2 else 0}
        if cycle < 2:
            return row
        row["ic_en"] = 1

        if not state["fetching"] and rng.random() < fetch_rate:
            state["fetching"] = 1
            state["addr"] = int(rng.integers(1 << 14))
        if state["fetching"]:
            row["cycstb"] = 1
            for bit in range(14):
                row[f"addr_{bit}"] = (state["addr"] >> bit) & 1
            row["ci"] = int(rng.random() < inhibit_rate)
            if outputs.get("ack"):
                state["fetching"] = 0

        # Tag-array response: on a hit, one of the two ways matches the
        # request tag; the other (and both, on a miss) reads disturbed.
        tag = (state["addr"] >> 6) & 0xFF
        if rng.random() < hit_rate:
            if rng.random() < 0.5:
                way_tags = (tag, disturbed(tag))
            else:
                way_tags = (disturbed(tag), tag)
        else:
            way_tags = (disturbed(tag), disturbed(tag))
        for way, way_tag in enumerate(way_tags):
            for bit in range(8):
                row[f"tag{way}_in_{bit}"] = (way_tag >> bit) & 1
            row[f"tag{way}_v_in"] = int(rng.random() < 0.9)

        # Bus interface: when the FSM requests, deliver beats with
        # 1-3 cycle latency; rare errors.
        if outputs.get("biu_req"):
            if state["beat_wait"] == 0:
                state["beat_wait"] = int(rng.integers(1, 4))
            state["beat_wait"] -= 1
            if state["beat_wait"] == 0:
                if rng.random() < error_rate:
                    row["biudata_err"] = 1
                else:
                    row["biudata_valid"] = 1
        else:
            state["beat_wait"] = 0

        row["invalidate"] = int(rng.random() < invalidate_rate)
        return row

    simulator = Simulator(netlist)
    return simulator.run_driver(
        driver, cycles, name=name or f"icfsm[{seed}]"
    )


# ----------------------------------------------------------------------
# UART loopback driver
# ----------------------------------------------------------------------
def uart_workload(
    netlist: Netlist,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
    name: Optional[str] = None,
    send_rate: float = 0.6,
    noise_rate: float = 0.0,
    break_rate: float = 0.0,
) -> Workload:
    """Loopback traffic for the UART: the driver echoes ``txd`` back
    into ``rxd`` (a physical loopback plug), sends random bytes whenever
    the transmitter is free, and optionally injects line noise (bit
    flips) or break conditions (line held low)."""
    rng = derive_rng(seed, "uart_workload", str(cycles))
    state = {"breaking": 0}

    def driver(cycle: int, outputs: Dict[str, int]) -> Dict[str, int]:
        row: Dict[str, int] = {"reset": 1 if cycle < 2 else 0, "rxd": 1}
        if cycle < 2:
            return row
        line = outputs.get("txd", 1)
        if state["breaking"] > 0:
            state["breaking"] -= 1
            line = 0
        elif break_rate and rng.random() < break_rate:
            state["breaking"] = int(rng.integers(3, 10))
            line = 0
        elif noise_rate and rng.random() < noise_rate:
            line ^= 1
        row["rxd"] = line

        if not outputs.get("tx_busy") and rng.random() < send_rate:
            row["tx_start"] = 1
            byte = int(rng.integers(256))
            for bit in range(8):
                row[f"tx_data_{bit}"] = (byte >> bit) & 1
        return row

    simulator = Simulator(netlist)
    return simulator.run_driver(
        driver, cycles, name=name or f"uart[{seed}]"
    )


def _uart_suite(netlist, count, cycles, seed):
    """Loopback traffic mixes: clean streams at varied rates, noisy
    lines, and break storms."""
    profiles = [
        dict(send_rate=0.8, noise_rate=0.0, break_rate=0.0),   # busy clean
        dict(send_rate=0.2, noise_rate=0.0, break_rate=0.0),   # sparse
        dict(send_rate=0.6, noise_rate=0.02, break_rate=0.0),  # noisy line
        dict(send_rate=0.5, noise_rate=0.0, break_rate=0.02),  # breaks
        dict(send_rate=0.9, noise_rate=0.01, break_rate=0.01), # stressed
        dict(send_rate=0.4, noise_rate=0.0, break_rate=0.0),   # moderate
    ]
    workloads = []
    for index in range(count):
        profile = profiles[index % len(profiles)]
        workloads.append(uart_workload(
            netlist, cycles, seed=(seed, index),
            name=f"uart[{index}]", **profile,
        ))
    return workloads


def design_workloads(
    design_name: str,
    netlist: Netlist,
    count: int = 10,
    cycles: int = DEFAULT_CYCLES,
    seed: SeedLike = 0,
) -> List[Workload]:
    """The standard diverse workload suite for one evaluation design.

    Mixes the design's protocol driver across varied parameters with a
    couple of constrained-random workloads, mirroring the "diverse
    application workloads" of the paper's campaigns.
    """
    generators = {
        "sdram_controller": _sdram_suite,
        "or1200_if": _or1200_if_suite,
        "or1200_icfsm": _icfsm_suite,
        "uart": _uart_suite,
    }
    generator = generators.get(design_name, _generic_suite)
    return generator(netlist, count, cycles, seed)


def _sdram_suite(netlist, count, cycles, seed):
    """Mode-skewed host applications: read-only streaming, write-heavy
    bursts, sparse accesses, an idle refresh-dominated phase, and mixed
    traffic — different applications stress different logic cones, so
    node criticality genuinely depends on the workload mix."""
    profiles = [
        dict(request_rate=0.6, write_fraction=0.0),   # read streaming
        dict(request_rate=0.6, write_fraction=1.0),   # write bursts
        dict(request_rate=0.1, write_fraction=0.5),   # sparse mixed
        dict(request_rate=0.0, write_fraction=0.0),   # idle / refresh only
        dict(request_rate=0.4, write_fraction=0.25),  # read-mostly mix
        dict(request_rate=0.4, write_fraction=0.75),  # write-mostly mix
        dict(request_rate=0.9, write_fraction=0.5),   # saturating mix
        dict(request_rate=0.25, write_fraction=0.0),  # light reads
    ]
    workloads = []
    for index in range(count):
        profile = profiles[index % len(profiles)]
        workloads.append(sdram_workload(
            netlist, cycles, seed=(seed, index),
            name=f"sdram[{index}]"
                 f"(rq={profile['request_rate']},wr={profile['write_fraction']})",
            **profile,
        ))
    return workloads


def _or1200_if_suite(netlist, count, cycles, seed):
    """Mode-skewed instruction streams: straight-line code (no
    branches), branchy code, stall-heavy backpressure, an error-prone
    bus, exception storms, and clean high-hit-rate fetch."""
    profiles = [
        dict(hit_rate=0.95, branch_rate=0.0, stall_rate=0.0,
             error_rate=0.0, exception_rate=0.0),     # straight-line
        dict(hit_rate=0.8, branch_rate=0.35, stall_rate=0.0,
             error_rate=0.0, exception_rate=0.0),     # branchy
        dict(hit_rate=0.7, branch_rate=0.1, stall_rate=0.4,
             error_rate=0.0, exception_rate=0.0),     # stall-heavy
        dict(hit_rate=0.4, branch_rate=0.05, stall_rate=0.05,
             error_rate=0.15, exception_rate=0.0),    # flaky bus
        dict(hit_rate=0.8, branch_rate=0.05, stall_rate=0.05,
             error_rate=0.0, exception_rate=0.2),     # exception storm
        dict(hit_rate=0.3, branch_rate=0.0, stall_rate=0.0,
             error_rate=0.0, exception_rate=0.0),     # slow memory
        dict(hit_rate=0.9, branch_rate=0.15, stall_rate=0.1,
             error_rate=0.02, exception_rate=0.02),   # realistic mix
        dict(hit_rate=0.6, branch_rate=0.25, stall_rate=0.25,
             error_rate=0.05, exception_rate=0.05),   # stressed mix
    ]
    workloads = []
    for index in range(count):
        profile = profiles[index % len(profiles)]
        workloads.append(or1200_if_workload(
            netlist, cycles, seed=(seed, index),
            name=f"or1200_if[{index}]", **profile,
        ))
    return workloads


def _icfsm_suite(netlist, count, cycles, seed):
    """Mode-skewed fetch traffic: hot loops (all hits), cold-start miss
    storms, cache-inhibited regions, invalidation-heavy phases, and a
    flaky bus."""
    profiles = [
        dict(hit_rate=0.98, fetch_rate=0.9, inhibit_rate=0.0,
             error_rate=0.0, invalidate_rate=0.0),    # hot loop
        dict(hit_rate=0.1, fetch_rate=0.8, inhibit_rate=0.0,
             error_rate=0.0, invalidate_rate=0.0),    # cold misses
        dict(hit_rate=0.6, fetch_rate=0.7, inhibit_rate=0.5,
             error_rate=0.0, invalidate_rate=0.0),    # uncached region
        dict(hit_rate=0.7, fetch_rate=0.6, inhibit_rate=0.05,
             error_rate=0.0, invalidate_rate=0.3),    # invalidation storm
        dict(hit_rate=0.5, fetch_rate=0.7, inhibit_rate=0.05,
             error_rate=0.2, invalidate_rate=0.0),    # flaky bus
        dict(hit_rate=0.4, fetch_rate=0.2, inhibit_rate=0.05,
             error_rate=0.0, invalidate_rate=0.02),   # sparse fetches
        dict(hit_rate=0.7, fetch_rate=0.8, inhibit_rate=0.08,
             error_rate=0.03, invalidate_rate=0.02),  # realistic mix
        dict(hit_rate=0.3, fetch_rate=0.9, inhibit_rate=0.15,
             error_rate=0.08, invalidate_rate=0.08),  # stressed mix
    ]
    workloads = []
    for index in range(count):
        profile = profiles[index % len(profiles)]
        workloads.append(icfsm_workload(
            netlist, cycles, seed=(seed, index),
            name=f"icfsm[{index}]", **profile,
        ))
    return workloads


def _generic_suite(netlist, count, cycles, seed):
    return [
        random_workload(
            netlist, cycles, seed=(seed, index),
            hold=1 + index % 3, bias=0.3 + 0.1 * (index % 4),
            name=f"random[{index}]",
        )
        for index in range(count)
    ]
