"""Evaluation metrics: accuracy/confusion/TPR/FPR, ROC + AUC, and
regression/agreement scores."""

from repro.metrics.classification import (
    ConfusionMatrix,
    accuracy,
    balanced_accuracy,
)
from repro.metrics.regression import (
    classification_conformity,
    mae,
    mse,
    pearson,
    r2,
    spearman,
)
from repro.metrics.roc import RocCurve, auc_score, average_curves, roc_curve
from repro.metrics.significance import McNemarResult, mcnemar_test, pooled_mcnemar

__all__ = [
    "ConfusionMatrix",
    "accuracy",
    "balanced_accuracy",
    "classification_conformity",
    "mae",
    "mse",
    "pearson",
    "r2",
    "spearman",
    "RocCurve",
    "auc_score",
    "average_curves",
    "roc_curve",
    "McNemarResult",
    "mcnemar_test",
    "pooled_mcnemar",
]
