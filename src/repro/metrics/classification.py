"""Classification metrics (§4.1 "Performance Metrics")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.errors import ModelError


def _check(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ModelError("labels/predictions must be aligned 1-D arrays")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _check(y_true, y_pred)
    if len(y_true) == 0:
        raise ModelError("empty evaluation set")
    return float((y_true == y_pred).mean())


@dataclass
class ConfusionMatrix:
    """Binary confusion counts (class 1 = Critical = positive)."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @classmethod
    def from_predictions(cls, y_true: np.ndarray,
                         y_pred: np.ndarray) -> "ConfusionMatrix":
        y_true, y_pred = _check(y_true, y_pred)
        return cls(
            true_positive=int(((y_true == 1) & (y_pred == 1)).sum()),
            false_positive=int(((y_true == 0) & (y_pred == 1)).sum()),
            true_negative=int(((y_true == 0) & (y_pred == 0)).sum()),
            false_negative=int(((y_true == 1) & (y_pred == 0)).sum()),
        )

    @property
    def tpr(self) -> float:
        """True-positive rate (recall of the Critical class)."""
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def fpr(self) -> float:
        """False-positive rate."""
        denominator = self.false_positive + self.true_negative
        return self.false_positive / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        return self.tpr

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "TP": self.true_positive,
            "FP": self.false_positive,
            "TN": self.true_negative,
            "FN": self.false_negative,
            "TPR": round(self.tpr, 4),
            "FPR": round(self.fpr, 4),
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "F1": round(self.f1, 4),
        }


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of per-class recalls."""
    matrix = ConfusionMatrix.from_predictions(y_true, y_pred)
    return 0.5 * (matrix.tpr + (1.0 - matrix.fpr))
