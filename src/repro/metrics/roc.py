"""ROC curves and AUC (Figure 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.errors import ModelError


@dataclass
class RocCurve:
    """An ROC curve: FPR/TPR pairs sorted by threshold, plus AUC."""

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray
    auc: float

    def at_fpr(self, target_fpr: float) -> float:
        """Interpolated TPR at a given FPR (for operating-point picks)."""
        return float(np.interp(target_fpr, self.fpr, self.tpr))


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC curve of positive-class scores.

    Args:
        y_true: Binary labels (1 = Critical = positive).
        scores: Higher score = more likely positive.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ModelError("labels/scores must be aligned 1-D arrays")
    n_positive = int((y_true == 1).sum())
    n_negative = int((y_true == 0).sum())
    if n_positive == 0 or n_negative == 0:
        raise ModelError("ROC needs both classes present")

    order = np.argsort(-scores, kind="stable")
    sorted_labels = y_true[order]
    sorted_scores = scores[order]

    cumulative_tp = np.cumsum(sorted_labels == 1)
    cumulative_fp = np.cumsum(sorted_labels == 0)

    # Collapse ties: keep the last point of each distinct score.
    distinct = np.r_[sorted_scores[1:] != sorted_scores[:-1], True]
    tpr = np.r_[0.0, cumulative_tp[distinct] / n_positive]
    fpr = np.r_[0.0, cumulative_fp[distinct] / n_negative]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]

    auc = float(np.trapezoid(tpr, fpr))
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds, auc=auc)


def auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve."""
    return roc_curve(y_true, scores).auc


def average_curves(curves, grid_points: int = 101) -> RocCurve:
    """Vertically average ROC curves from repeated evaluations.

    TPR values are interpolated onto a common FPR grid and averaged;
    the reported AUC is the mean of the individual AUCs (the standard
    cross-validated ROC presentation).
    """
    curves = list(curves)
    if not curves:
        raise ModelError("no curves to average")
    grid = np.linspace(0.0, 1.0, grid_points)
    tpr = np.mean(
        [np.interp(grid, curve.fpr, curve.tpr) for curve in curves],
        axis=0,
    )
    tpr[0], tpr[-1] = 0.0, 1.0
    return RocCurve(
        fpr=grid,
        tpr=tpr,
        thresholds=np.full(grid_points, np.nan),
        auc=float(np.mean([curve.auc for curve in curves])),
    )
