"""Statistical significance tests for classifier comparisons.

Accuracy differences on small validation folds can be noise; McNemar's
exact test is the standard paired comparison for two classifiers
evaluated on the same examples — it looks only at the *discordant*
cases (one right, the other wrong).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import binom

from repro.utils.errors import ModelError


@dataclass
class McNemarResult:
    """Outcome of a paired McNemar comparison."""

    a_right_b_wrong: int
    a_wrong_b_right: int
    p_value: float

    @property
    def discordant(self) -> int:
        return self.a_right_b_wrong + self.a_wrong_b_right

    def describe(self) -> str:
        return (
            f"discordant {self.a_right_b_wrong}/"
            f"{self.a_wrong_b_right}, exact p = {self.p_value:.4f}"
        )


def mcnemar_test(
    y_true: np.ndarray,
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
) -> McNemarResult:
    """Exact (binomial) McNemar test on paired predictions.

    Under the null hypothesis the two classifiers are equally accurate,
    so each discordant example is a fair coin; the p-value is the
    two-sided exact binomial tail.  With zero discordant examples the
    classifiers are indistinguishable (p = 1).
    """
    y_true = np.asarray(y_true)
    predictions_a = np.asarray(predictions_a)
    predictions_b = np.asarray(predictions_b)
    if not (y_true.shape == predictions_a.shape == predictions_b.shape):
        raise ModelError("prediction arrays are misaligned")
    if y_true.ndim != 1 or len(y_true) == 0:
        raise ModelError("need a non-empty 1-D evaluation set")

    correct_a = predictions_a == y_true
    correct_b = predictions_b == y_true
    a_right_b_wrong = int((correct_a & ~correct_b).sum())
    a_wrong_b_right = int((~correct_a & correct_b).sum())
    discordant = a_right_b_wrong + a_wrong_b_right
    if discordant == 0:
        return McNemarResult(0, 0, 1.0)

    k = min(a_right_b_wrong, a_wrong_b_right)
    p_value = min(
        1.0, 2.0 * float(binom.cdf(k, discordant, 0.5))
    )
    return McNemarResult(a_right_b_wrong, a_wrong_b_right, p_value)


def pooled_mcnemar(
    y_true_folds,
    predictions_a_folds,
    predictions_b_folds,
) -> McNemarResult:
    """McNemar over concatenated folds (e.g. 5 validation splits):
    pooling discordant counts increases power while every example is
    still compared under identical conditions for both classifiers."""
    y_true = np.concatenate([np.asarray(f) for f in y_true_folds])
    predictions_a = np.concatenate(
        [np.asarray(f) for f in predictions_a_folds]
    )
    predictions_b = np.concatenate(
        [np.asarray(f) for f in predictions_b_folds]
    )
    return mcnemar_test(y_true, predictions_a, predictions_b)
