"""Regression and agreement metrics for criticality-score prediction."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ModelError


def _check(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or len(a) == 0:
        raise ModelError("inputs must be aligned non-empty 1-D arrays")
    return a, b


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(((y_true - y_pred) ** 2).mean())


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def r2(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _check(y_true, y_pred)
    residual = ((y_true - y_pred) ** 2).sum()
    total = ((y_true - y_true.mean()) ** 2).sum()
    if total == 0.0:
        return 0.0
    return float(1.0 - residual / total)


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation (0 when either input is constant)."""
    a, b = _check(a, b)
    std_a, std_b = a.std(), b.std()
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (std_a * std_b))


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    a, b = _check(a, b)
    return pearson(_rankdata(a), _rankdata(b))


def _rankdata(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks over ties.
    sorted_values = values[order]
    start = 0
    for position in range(1, len(values) + 1):
        if (position == len(values)
                or sorted_values[position] != sorted_values[start]):
            mean_rank = 0.5 * (start + 1 + position)
            ranks[order[start:position]] = mean_rank
            start = position
    return ranks


def classification_conformity(scores: np.ndarray, labels: np.ndarray,
                              threshold: float = 0.5) -> float:
    """Agreement between thresholded regression scores and class labels
    (the paper reports >85% conformity between the two heads)."""
    scores, _ = _check(scores, np.zeros_like(scores))
    labels = np.asarray(labels)
    if labels.shape != scores.shape:
        raise ModelError("labels misaligned with scores")
    return float(((scores >= threshold).astype(int) == labels).mean())
