"""Stage keys: the artifact store's content-addressing scheme.

Every cached artifact is addressed by a sha256 of its *full input
closure* — the stage name, every parameter that shapes the stage's
output bytes, and the keys of the upstream artifacts it was derived
from.  The scheme composes :func:`repro.utils.fingerprint.canonical_hash`
(the same primitive behind campaign-checkpoint fingerprints), so the
whole repo has exactly one artifact-identity story: equal keys mean
"produced from identical inputs by the same pipeline version", and any
input change — a netlist edit, a different seed, a new stimulus suite,
a schema bump — moves the key instead of silently aliasing stale bytes.

The key graph mirrors the pipeline DAG::

    netlist ─┬────────────────────────────► features ─┐
             ├─ workloads ─► campaign ─► dataset ─────┼─► graph
             │                                        │     │
             └────────────(vectors)───────────────────┘     ├─► classifier ─► explanations
                                                            ├─► regressor
                                                            ├─► gridsearch
                                                            └─► baselines
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.utils.fingerprint import (
    canonical_hash,
    netlist_fingerprint,
    workloads_fingerprint,
)

#: Bump to invalidate every existing store entry (layout or semantics
#: of any cached stage changed).
STORE_SCHEMA = 1


def stage_key(stage: str, params: dict,
              parents: Sequence[str] = ()) -> str:
    """The uniform key shape: schema + stage + params + parent keys."""
    return canonical_hash({
        "schema": STORE_SCHEMA,
        "stage": stage,
        "params": params,
        "parents": list(parents),
    })


def netlist_key(netlist) -> str:
    """Identity of a parsed design (structural, name-level)."""
    return stage_key("netlist",
                     {"fingerprint": netlist_fingerprint(netlist)})


def workloads_key(workloads) -> str:
    """Identity of a stimulus suite (names, shapes, vector bytes)."""
    return stage_key("workloads",
                     {"fingerprint": workloads_fingerprint(workloads)})


def workload_suite_key(netlist: str, *, design: str, count: int,
                       cycles: int, seed: int) -> str:
    """Identity of a *generated* suite by its generation recipe.

    ``design_workloads`` is deterministic in (design, netlist, count,
    cycles, seed), so the recipe identifies the vectors without paying
    for their generation — which for closed-loop suites means running
    the driver simulation.  This is what lets a warm run skip stimulus
    generation entirely.
    """
    return stage_key(
        "workload-suite",
        {"design": design, "count": int(count), "cycles": int(cycles),
         "seed": int(seed)},
        parents=(netlist,),
    )


def campaign_key(netlist: str, workloads: str, *, severity: float,
                 collapse: bool, observation: str) -> str:
    """Identity of a full-universe stuck-at FI campaign result.

    ``severity`` and ``observation`` must be the *resolved* policy
    (``"auto"`` settled against the design's registry), so the key is
    independent of how the caller spelled the default.
    """
    return stage_key(
        "campaign",
        {"severity": float(severity), "collapse": bool(collapse),
         "observation": observation},
        parents=[netlist, workloads],
    )


def features_key(netlist: str, workloads: Optional[str], *,
                 probability_source: str, extended: bool) -> str:
    """Identity of the §3.1 node feature matrix.

    ``workloads`` participates only for simulation-derived signal
    probabilities; COP features depend on the structure alone.
    """
    parents = [netlist]
    if probability_source == "simulation" and workloads is not None:
        parents.append(workloads)
    return stage_key(
        "features",
        {"probability_source": probability_source,
         "extended": bool(extended)},
        parents=parents,
    )


def dataset_key(campaign: str, *, threshold: float) -> str:
    """Identity of the Algorithm 1 score/label dataset."""
    return stage_key("dataset", {"threshold": float(threshold)},
                     parents=[campaign])


def graph_key(netlist: str, features: str, dataset: str) -> str:
    """Identity of the model-ready graph (edges + x + labels)."""
    return stage_key("graph", {}, parents=[netlist, features, dataset])


def _split_params(val_fraction: float, seed: int) -> dict:
    # The 80/20 split is cheap to recompute but shapes every trained
    # artifact, so its parameters ride inside each model's key.
    return {"val_fraction": float(val_fraction), "seed": int(seed)}


def classifier_key(graph: str, *, hidden_dims, dropout: float,
                   adjacency_mode: str, self_loops: bool, seed: int,
                   val_fraction: float, training: dict) -> str:
    """Identity of the trained Table 1 GCN classifier weights."""
    return stage_key(
        "classifier",
        {"hidden_dims": [int(d) for d in hidden_dims],
         "dropout": float(dropout), "adjacency_mode": adjacency_mode,
         "self_loops": bool(self_loops), "seed": int(seed),
         "split": _split_params(val_fraction, seed),
         "training": training},
        parents=[graph],
    )


def regressor_key(graph: str, *, hidden_dims, dropout: float,
                  adjacency_mode: str, self_loops: bool, seed: int,
                  val_fraction: float, training: dict) -> str:
    """Identity of the trained criticality-score regressor weights."""
    return stage_key(
        "regressor",
        {"hidden_dims": [int(d) for d in hidden_dims],
         "dropout": float(dropout), "adjacency_mode": adjacency_mode,
         "self_loops": bool(self_loops), "seed": int(seed),
         "split": _split_params(val_fraction, seed),
         "training": training},
        parents=[graph],
    )


def explanations_key(classifier: str, graph: str, *,
                     nodes: Sequence[int], seed: int,
                     explainer: dict) -> str:
    """Identity of a GNNExplainer report batch (order-sensitive)."""
    return stage_key(
        "explanations",
        {"nodes": [int(n) for n in nodes], "seed": int(seed),
         "explainer": explainer},
        parents=[classifier, graph],
    )


def gridsearch_key(graph: str, *, hidden_dim_options, dropout_options,
                   lr_options, epochs: int, seed: int,
                   val_fraction: float, fast_math: bool) -> str:
    """Identity of a §3.3.2 hyperparameter sweep ranking.

    ``jobs`` is deliberately absent (the ranking is bitwise identical
    for any fan-out); ``fast_math`` is present (it is not).
    """
    return stage_key(
        "gridsearch",
        {"hidden_dim_options": [
            [int(d) for d in dims] for dims in hidden_dim_options
         ],
         "dropout_options": [float(d) for d in dropout_options],
         "lr_options": [float(lr) for lr in lr_options],
         "epochs": int(epochs), "seed": int(seed),
         "split": _split_params(val_fraction, seed),
         "fast_math": bool(fast_math)},
        parents=[graph],
    )


def baselines_key(graph: str, *, names: Sequence[str], seed: int,
                  val_fraction: float) -> str:
    """Identity of the baseline-classifier accuracy table."""
    return stage_key(
        "baselines",
        {"names": list(names),
         "split": _split_params(val_fraction, seed)},
        parents=[graph],
    )
