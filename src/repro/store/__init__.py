"""Content-addressed artifact store: cross-invocation memoization of
every pipeline stage.

See :mod:`repro.store.store` for the on-disk contract,
:mod:`repro.store.keys` for the identity scheme, and
:mod:`repro.store.memo` for the analyzer glue.
"""

from repro.store.keys import (
    STORE_SCHEMA,
    baselines_key,
    campaign_key,
    classifier_key,
    dataset_key,
    explanations_key,
    features_key,
    graph_key,
    gridsearch_key,
    netlist_key,
    regressor_key,
    stage_key,
    workloads_key,
)
from repro.store.memo import (
    AnalysisMemo,
    ensure_netlist_cached,
    memoized_campaign,
)
from repro.store.store import (
    DEFAULT_BYTE_BUDGET,
    KIND_EXTENSIONS,
    ArtifactStore,
)

__all__ = [
    "ArtifactStore",
    "AnalysisMemo",
    "memoized_campaign",
    "ensure_netlist_cached",
    "DEFAULT_BYTE_BUDGET",
    "KIND_EXTENSIONS",
    "STORE_SCHEMA",
    "stage_key",
    "netlist_key",
    "workloads_key",
    "campaign_key",
    "features_key",
    "dataset_key",
    "graph_key",
    "classifier_key",
    "regressor_key",
    "explanations_key",
    "gridsearch_key",
    "baselines_key",
]
