"""Memoization glue between the analyzer pipeline and the store.

:class:`AnalysisMemo` owns one analyzer's stage keys (computed lazily,
cached — the key chain itself hashes workload vectors, so it is built
once per run) and wraps each expensive stage in get-or-compute-put.
Warm results are bitwise identical to cold ones: every artifact format
round-trips floats exactly (JSON shortest-repr, float64 ``.npz``), the
campaign's recorded ``simulation_seconds`` rides inside its artifact,
and all store diagnostics go through ``logging`` (stderr), never
stdout.

The campaign stage has one extra trick — the *ECO near-miss*: when the
exact campaign key misses, the store is probed for a campaign of a
*different* netlist run under the same stimulus suite and policy.  If
one is found and its design is diff-compatible with ours
(:func:`repro.fi.run_eco_campaign` accepts the pair), only the edit's
dirty region is re-simulated and the rest of the rows are merged from
the cached baseline — the persistent composition of ECO mode's
incremental win.  The merged rows are bitwise identical to a cold
campaign; only the recorded wall-clock differs, so near-miss results
are returned but *also* cached under their exact key for next time.
"""

from __future__ import annotations

import logging
from dataclasses import asdict
from typing import Callable, List, Optional, Sequence

from repro.store import keys as K
from repro.store.store import ArtifactStore
from repro.utils.errors import EcoError, ReproError, SerializationError

logger = logging.getLogger("repro.store")


def _write_json(payload: dict) -> Callable:
    import json

    def writer(path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)

    return writer


def _read_json(path) -> dict:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise SerializationError(
            f"store JSON artifact {path}: top level must be an object"
        )
    return payload


def _resolve_policy(netlist, severity) -> tuple:
    """Settle ``"auto"`` severity/observation exactly as the campaign
    runner does, so keys are spelling-independent."""
    from repro.fi.campaign import DEFAULT_SEVERITY
    from repro.fi.checkpoint import observation_key
    from repro.fi.observation import observation_for, severity_for

    resolved = (
        severity_for(netlist, DEFAULT_SEVERITY)
        if severity == "auto" else float(severity)
    )
    return resolved, observation_key(observation_for(netlist))


def ensure_netlist_cached(store: ArtifactStore, netlist) -> str:
    """Persist a design's Verilog under its structural key (the ECO
    near-miss probe's baseline source); returns the key."""
    from repro.netlist import to_verilog

    key = K.netlist_key(netlist)
    if not store.contains(key, "netlist"):
        text = to_verilog(netlist)

        def writer(path) -> None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)

        store.put(key, "netlist", writer,
                  meta={"design": netlist.name})
    return key


def _near_miss_campaign(store: ArtifactStore, netlist, workloads, *,
                        severity, collapse: bool,
                        netlist_key: str, workloads_key: str,
                        resolved_severity: float, observation: str):
    """Recover a campaign from a diff-compatible cached baseline.

    Probes campaigns with the same workload suite and policy but a
    different netlist; for each (most recently used first), loads its
    stored Verilog, and asks ECO mode to re-simulate only the dirty
    region and merge the rest.  Any refusal — missing baseline
    netlist, incompatible diff, ECO soundness check — falls through to
    the next candidate, then to a cold run.  Merged rows are bitwise
    identical to a cold campaign; the recorded wall-clock is the
    merge's own, so the result is *also* cached under its exact key.
    """
    from repro.fi import run_eco_campaign
    from repro.io import load_campaign
    from repro.netlist import from_verilog

    candidates = store.find(
        "campaign", workloads=workloads_key,
        severity=resolved_severity, collapse=bool(collapse),
        observation=observation,
    )
    for key, meta in candidates:
        if meta.get("netlist") in (None, netlist_key):
            continue
        base_netlist = store.get(
            meta["netlist"], "netlist",
            lambda path: from_verilog(
                open(path, encoding="utf-8").read()
            ),
        )
        if base_netlist is None:
            continue
        base = store.get(key, "campaign", load_campaign)
        if base is None:
            continue
        try:
            eco = run_eco_campaign(
                base_netlist, netlist, workloads, base=base,
                severity=severity, collapse=collapse,
            )
        except (EcoError, ReproError) as error:
            logger.info(
                "store near-miss: baseline %s not reusable (%s)",
                key[:12], error,
            )
            continue
        logger.info(
            "store near-miss: recovered campaign from baseline %s "
            "(%d/%d rows merged, %d re-simulated)",
            key[:12], eco.n_reused, eco.n_faults, eco.n_dirty,
        )
        return eco.result
    return None


def memoized_campaign(store: ArtifactStore, netlist, workloads, *,
                      severity="auto", collapse: bool = False,
                      compute: Callable,
                      netlist_key: Optional[str] = None,
                      workloads_key: Optional[str] = None):
    """Get-or-compute-put for one full-universe FI campaign.

    The shared engine behind :meth:`AnalysisMemo.campaign` and the
    ``repro campaign --store`` path: exact-key hit, then ECO
    near-miss recovery, then cold compute.  Partial campaigns (a
    non-empty failure ledger) are returned but never cached.
    """
    from repro.io import load_campaign, save_campaign

    resolved_severity, observation = _resolve_policy(netlist, severity)
    nk = netlist_key or K.netlist_key(netlist)
    wk = workloads_key or K.workloads_key(workloads)
    key = K.campaign_key(nk, wk, severity=resolved_severity,
                         collapse=bool(collapse),
                         observation=observation)
    hit = store.get(key, "campaign", load_campaign)
    if hit is not None:
        logger.info("store hit: campaign %s", key[:12])
        return hit
    # The exact key may address the suite by its generation recipe
    # (cheap on warm runs); the near-miss probe and the stored meta
    # always use the *content* identity of the vectors, which is what
    # decides ECO compatibility across netlists.
    content_wk = (
        wk if workloads_key is None else K.workloads_key(workloads)
    )
    result = _near_miss_campaign(
        store, netlist, workloads, severity=severity,
        collapse=collapse, netlist_key=nk, workloads_key=content_wk,
        resolved_severity=resolved_severity, observation=observation,
    )
    if result is None:
        result = compute()
    if result.failures:
        # A partial campaign must never be served as ground truth.
        logger.info("store skip: campaign %s has %d failed "
                    "workload(s) — not cached", key[:12],
                    len(result.failures))
        return result
    ensure_netlist_cached(store, netlist)
    store.put(
        key, "campaign",
        lambda path: save_campaign(result, path),
        meta={
            "design": netlist.name,
            "netlist": nk,
            "workloads": content_wk,
            "severity": resolved_severity,
            "collapse": bool(collapse),
            "observation": observation,
        },
    )
    return result


class AnalysisMemo:
    """Get-or-compute-put for every stage of one analyzer run."""

    def __init__(self, store: ArtifactStore, analyzer) -> None:
        self.store = store
        self.analyzer = analyzer
        self._key_cache: dict = {}

    # -- resolved policy ----------------------------------------------
    def _resolved_severity(self) -> float:
        from repro.fi.campaign import DEFAULT_SEVERITY
        from repro.fi.observation import severity_for

        severity = self.analyzer.config.severity
        if severity == "auto":
            return severity_for(self.analyzer.netlist, DEFAULT_SEVERITY)
        return float(severity)

    def _resolved_observation(self) -> str:
        from repro.fi.checkpoint import observation_key
        from repro.fi.observation import observation_for

        return observation_key(observation_for(self.analyzer.netlist))

    # -- stage keys (lazy; hashing workload bytes happens once) -------
    def _key(self, name: str, build: Callable[[], str]) -> str:
        if name not in self._key_cache:
            self._key_cache[name] = build()
        return self._key_cache[name]

    def netlist_key(self) -> str:
        return self._key(
            "netlist", lambda: K.netlist_key(self.analyzer.netlist)
        )

    def workloads_key(self) -> str:
        def build() -> str:
            analyzer = self.analyzer
            if analyzer.workloads_provided:
                # Caller-supplied suite: only its vectors identify it.
                return K.workloads_key(analyzer.workloads)
            # Generated suite: the recipe identifies the vectors
            # without generating them (closed-loop generation runs a
            # driver simulation — the single warm-path hotspot).
            return K.workload_suite_key(
                self.netlist_key(), design=analyzer.netlist.name,
                count=analyzer.config.n_workloads,
                cycles=analyzer.config.workload_cycles,
                seed=analyzer.config.seed,
            )

        return self._key("workloads", build)

    def campaign_key(self) -> str:
        return self._key("campaign", lambda: K.campaign_key(
            self.netlist_key(), self.workloads_key(),
            severity=self._resolved_severity(), collapse=False,
            observation=self._resolved_observation(),
        ))

    def features_key(self) -> str:
        config = self.analyzer.config
        return self._key("features", lambda: K.features_key(
            self.netlist_key(),
            self.workloads_key()
            if config.probability_source == "simulation" else None,
            probability_source=config.probability_source,
            extended=config.extended_features,
        ))

    def dataset_key(self) -> str:
        return self._key("dataset", lambda: K.dataset_key(
            self.campaign_key(),
            threshold=self.analyzer.config.criticality_threshold,
        ))

    def graph_key(self) -> str:
        return self._key("graph", lambda: K.graph_key(
            self.netlist_key(), self.features_key(),
            self.dataset_key(),
        ))

    def classifier_key(self) -> str:
        config = self.analyzer.config
        return self._key("classifier", lambda: K.classifier_key(
            self.graph_key(),
            hidden_dims=config.hidden_dims, dropout=config.dropout,
            adjacency_mode=config.adjacency_mode,
            self_loops=config.self_loops, seed=config.seed,
            val_fraction=config.val_fraction,
            training=asdict(config.training),
        ))

    def regressor_key(self) -> str:
        config = self.analyzer.config
        return self._key("regressor", lambda: K.regressor_key(
            self.graph_key(),
            hidden_dims=config.hidden_dims, dropout=config.dropout,
            adjacency_mode=config.adjacency_mode,
            self_loops=config.self_loops, seed=config.seed,
            val_fraction=config.val_fraction,
            training=asdict(config.regressor_training),
        ))

    # -- stages --------------------------------------------------------
    def workloads(self, compute: Callable):
        from repro.io import load_workloads, save_workloads

        if self.analyzer.workloads_provided:
            return compute()
        return self._stage(
            self.workloads_key(), "workloads", compute,
            reader=load_workloads,
            make_writer=lambda value: (
                lambda path: save_workloads(value, path)
            ),
        )

    def campaign(self, compute: Callable):
        from repro.io import load_campaign

        # Exact-hit fast path before touching ``analyzer.workloads``:
        # a warm rerun must not pay for stimulus generation.
        hit = self.store.get(self.campaign_key(), "campaign",
                             load_campaign)
        if hit is not None:
            logger.info("store hit: campaign %s",
                        self.campaign_key()[:12])
            return hit
        return memoized_campaign(
            self.store, self.analyzer.netlist,
            self.analyzer.workloads,
            severity=self.analyzer.config.severity,
            collapse=False, compute=compute,
            netlist_key=self.netlist_key(),
            workloads_key=self.workloads_key(),
        )

    def features(self, compute: Callable):
        from repro.io import load_features, save_features

        return self._stage(
            self.features_key(), "features", compute,
            reader=load_features,
            make_writer=lambda value: (
                lambda path: save_features(value, path)
            ),
        )

    def dataset(self, compute: Callable):
        from repro.io import load_dataset
        from repro.io import save_dataset as _save

        def writer_for(value):
            def writer(path) -> None:
                _save(value, path)

            return writer

        return self._stage(self.dataset_key(), "dataset", compute,
                           reader=load_dataset,
                           make_writer=writer_for)

    def data(self, compute: Callable):
        from repro.io import load_graph_data, save_graph_data

        return self._stage(
            self.graph_key(), "graph", compute,
            reader=load_graph_data,
            make_writer=lambda value: (
                lambda path: save_graph_data(value, path)
            ),
        )

    def classifier(self, compute: Callable):
        return self._model(self.classifier_key(), "classifier",
                           compute, seed_stream="gcn",
                           training=self.analyzer.config.training)

    def regressor(self, compute: Callable):
        return self._model(
            self.regressor_key(), "regressor", compute,
            seed_stream="gcn-regressor",
            training=self.analyzer.config.regressor_training,
        )

    def _model(self, key: str, kind: str, compute: Callable, *,
               seed_stream: str, training):
        from repro.io import load_gcn, save_gcn

        def reader(path):
            model = load_gcn(path, self.analyzer.data)
            # load_gcn restores architecture + weights; rebind the
            # run's seed/config so later transfer_to clones match a
            # cold-trained model exactly.
            model.seed = (self.analyzer.config.seed, seed_stream)
            model.config = training
            return model

        return self._stage(
            key, kind, compute, reader=reader,
            make_writer=lambda value: (
                lambda path: save_gcn(value, path)
            ),
        )

    def explanations(self, nodes: Sequence[int], compute: Callable):
        from repro.explain.gnn_explainer import ExplainerConfig
        from repro.io import load_explanations, save_explanations

        key = K.explanations_key(
            self.classifier_key(), self.graph_key(),
            nodes=nodes, seed=self.analyzer.config.seed,
            explainer=asdict(ExplainerConfig()),
        )
        return self._stage(
            key, "explanations", compute,
            reader=load_explanations,
            make_writer=lambda value: (
                lambda path: save_explanations(value, path)
            ),
        )

    def gridsearch(self, *, hidden_dim_options, dropout_options,
                   lr_options, epochs: int, fast_math: bool,
                   compute: Callable):
        from repro.nn.gridsearch import GridPoint, GridSearchResult

        key = K.gridsearch_key(
            self.graph_key(),
            hidden_dim_options=hidden_dim_options,
            dropout_options=dropout_options, lr_options=lr_options,
            epochs=epochs, seed=self.analyzer.config.seed,
            val_fraction=self.analyzer.config.val_fraction,
            fast_math=fast_math,
        )

        def reader(path) -> GridSearchResult:
            payload = _read_json(path)
            return GridSearchResult(points=[
                GridPoint(
                    hidden_dims=tuple(
                        int(d) for d in point["hidden_dims"]
                    ),
                    dropout=float(point["dropout"]),
                    lr=float(point["lr"]),
                    val_accuracy=float(point["val_accuracy"]),
                    best_epoch=int(point["best_epoch"]),
                )
                for point in payload["points"]
            ])

        def make_writer(value: GridSearchResult):
            return _write_json({"points": [
                {"hidden_dims": list(point.hidden_dims),
                 "dropout": point.dropout, "lr": point.lr,
                 "val_accuracy": point.val_accuracy,
                 "best_epoch": point.best_epoch}
                for point in value.points
            ]})

        return self._stage(key, "gridsearch", compute, reader=reader,
                           make_writer=make_writer)

    def baselines(self, names: Sequence[str], compute: Callable):
        key = K.baselines_key(
            self.graph_key(), names=names,
            seed=self.analyzer.config.seed,
            val_fraction=self.analyzer.config.val_fraction,
        )

        def reader(path) -> dict:
            payload = _read_json(path)
            accuracies = payload["accuracies"]
            if set(accuracies) != set(names):
                raise SerializationError(
                    "baseline artifact names drifted from request"
                )
            # Rebuild in request order (canonical JSON sorts keys).
            return {name: float(accuracies[name]) for name in names}

        def make_writer(value: dict):
            return _write_json({"accuracies": dict(value)})

        return self._stage(key, "baselines", compute, reader=reader,
                           make_writer=make_writer)

    # -- shared get-or-compute-put ------------------------------------
    def _stage(self, key: str, kind: str, compute: Callable, *,
               reader: Callable, make_writer: Callable):
        hit = self.store.get(key, kind, reader)
        if hit is not None:
            logger.info("store hit: %s %s", kind, key[:12])
            return hit
        value = compute()
        self.store.put(key, kind, make_writer(value),
                       meta={"design": self.analyzer.netlist.name})
        return value
