"""Content-addressed, size-capped on-disk artifact store.

Layout::

    <directory>/
        index.json                      advisory metadata + LRU clock
        objects/<key[:2]>/<key>.<kind>.<ext>

Objects are immutable once published: writers produce a unique temp
file, fsync it, and atomically rename it into place
(:func:`repro.io.durable_replace`), so a reader never observes a
partial artifact and two concurrent writers of the same key — which by
content addressing are writing identical bytes' worth of meaning —
leave exactly one valid object, whichever rename lands last.

The index is *advisory*: it carries per-entry size/sha256/LRU-tick
plus searchable ``meta`` (what the ECO near-miss probe matches on),
and it is rewritten atomically on every mutation.  A lost update from
a concurrent process, a crash between object rename and index write,
or a deleted/corrupt index never loses artifacts — :meth:`_load_index`
reconciles against a directory scan, adopting orphaned objects and
dropping ghost entries.  Validation failures on read (truncated zip,
bad JSON, sha256 mismatch, wrong shapes) are demoted to a logged miss:
the entry is deleted and the caller recomputes and rewrites it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import zipfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.io import atomic_write_text, durable_replace, fsync_directory
from repro.utils.errors import ReproError, SerializationError

PathLike = Union[str, Path]

logger = logging.getLogger("repro.store")

INDEX_NAME = "index.json"
INDEX_VERSION = 1

#: Default size cap: generous for the built-in designs (a full 4-design
#: warm pipeline is a few MiB) while bounding unattended growth.
DEFAULT_BYTE_BUDGET = 512 * 1024 * 1024

#: File extension per artifact kind (doubles as the scan-rebuild type
#: tag, so kind survives index loss).
KIND_EXTENSIONS: Dict[str, str] = {
    "netlist": "v",
    "workloads": "npz",
    "campaign": "npz",
    "features": "npz",
    "dataset": "json",
    "graph": "npz",
    "classifier": "npz",
    "regressor": "npz",
    "explanations": "npz",
    "gridsearch": "json",
    "baselines": "json",
}

#: Exceptions that mean "this entry is unusable", never "crash".
_READ_FAILURES = (
    SerializationError,
    ReproError,
    json.JSONDecodeError,
    UnicodeDecodeError,
    zipfile.BadZipFile,
    KeyError,
    ValueError,
    EOFError,
    OSError,
)


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """A directory of memoized pipeline-stage outputs, keyed by input
    closure and evicted LRU under a byte budget."""

    def __init__(self, directory: PathLike,
                 byte_budget: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.objects_dir = self.directory / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._index = self._load_index()
        if byte_budget is not None:
            self._index["byte_budget"] = int(byte_budget)
            self._write_index()

    # -- paths ---------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    def object_path(self, key: str, kind: str) -> Path:
        extension = KIND_EXTENSIONS[kind]
        return self.objects_dir / key[:2] / f"{key}.{kind}.{extension}"

    @property
    def byte_budget(self) -> int:
        return int(self._index["byte_budget"])

    # -- core API ------------------------------------------------------
    def get(self, key: str, kind: str,
            reader: Callable[[Path], object]) -> Optional[object]:
        """Load the artifact under ``key``, or ``None`` on a miss.

        A hit must fully survive ``reader`` (which is expected to
        validate the payload); any read failure — truncation, garbage
        bytes, sha256 drift, schema mismatch — deletes the entry and
        reports a miss so the caller transparently recomputes.
        """
        path = self.object_path(key, kind)
        entry = self._index["entries"].get(key)
        if not path.exists():
            if entry is not None:  # ghost entry: object lost
                self._drop_entry(key)
            self._count("misses")
            return None
        try:
            if entry is not None:
                size = path.stat().st_size
                if size != entry["size"]:
                    raise SerializationError(
                        f"size changed on disk ({size} vs recorded "
                        f"{entry['size']})"
                    )
                if _sha256_file(path) != entry["sha256"]:
                    raise SerializationError("sha256 mismatch")
            value = reader(path)
        except _READ_FAILURES as error:
            logger.warning(
                "store entry %s (%s) failed validation (%s: %s) — "
                "treating as miss and discarding",
                key[:12], kind, type(error).__name__, error,
            )
            self._evict(key, path)
            self._count("misses")
            return None
        if entry is None:
            # Another process published this object after our index
            # snapshot; adopt it so it participates in LRU accounting.
            self._adopt(key, kind, path)
        else:
            entry["tick"] = self._next_tick()
        self._count("hits")
        self._write_index()
        return value

    def put(self, key: str, kind: str,
            writer: Callable[[Path], None], *,
            meta: Optional[dict] = None) -> Path:
        """Publish an artifact: ``writer(temp_path)`` produces the
        bytes, which are fsynced and atomically renamed into place."""
        if kind not in KIND_EXTENSIONS:
            raise ReproError(f"unknown artifact kind {kind!r}")
        path = self.object_path(key, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name keeps the final extension (np.savez appends
        # ".npz" to anything else) and is unique per process, so
        # concurrent writers of one key never collide pre-rename.
        temporary = path.parent / (
            f".tmp-{os.getpid()}-{path.name}"
        )
        try:
            writer(temporary)
            descriptor = os.open(str(temporary), os.O_RDONLY)
            try:
                os.fsync(descriptor)
            finally:
                os.close(descriptor)
            durable_replace(temporary, path)
        finally:
            if temporary.exists():
                temporary.unlink()
        self._index["entries"][key] = {
            "kind": kind,
            "size": path.stat().st_size,
            "sha256": _sha256_file(path),
            "tick": self._next_tick(),
            "meta": dict(meta or {}),
        }
        self._gc_locked()
        self._write_index()
        return path

    def contains(self, key: str, kind: str) -> bool:
        return self.object_path(key, kind).exists()

    def find(self, kind: str, **meta_filter) -> List[Tuple[str, dict]]:
        """Entries of ``kind`` whose meta matches every filter item,
        most recently used first (the near-miss probe's ordering)."""
        matches = [
            (key, entry) for key, entry in self._index["entries"].items()
            if entry["kind"] == kind and all(
                entry["meta"].get(name) == value
                for name, value in meta_filter.items()
            )
        ]
        matches.sort(key=lambda item: -item[1]["tick"])
        return [(key, dict(entry["meta"])) for key, entry in matches]

    # -- maintenance ---------------------------------------------------
    def gc(self, byte_budget: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used entries until under budget.

        Returns ``(entries_evicted, bytes_freed)``.  With an explicit
        ``byte_budget`` the store's persistent budget is updated first.
        """
        if byte_budget is not None:
            self._index["byte_budget"] = int(byte_budget)
        evicted, freed = self._gc_locked()
        self._write_index()
        return evicted, freed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        count = 0
        for key, entry in list(self._index["entries"].items()):
            self._evict(key, self.object_path(key, entry["kind"]))
            count += 1
        self._write_index()
        return count

    def stats(self) -> Dict[str, object]:
        entries = self._index["entries"]
        by_kind: Dict[str, int] = {}
        for entry in entries.values():
            by_kind[entry["kind"]] = by_kind.get(entry["kind"], 0) + 1
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(entry["size"] for entry in entries.values()),
            "byte_budget": self.byte_budget,
            "hits": int(self._index["hits"]),
            "misses": int(self._index["misses"]),
            "by_kind": dict(sorted(by_kind.items())),
        }

    def entries(self) -> List[Dict[str, object]]:
        """Index rows for ``repro store ls`` (most recent first)."""
        rows = [
            {"key": key, "kind": entry["kind"], "size": entry["size"],
             "tick": entry["tick"], "meta": dict(entry["meta"])}
            for key, entry in self._index["entries"].items()
        ]
        rows.sort(key=lambda row: -int(row["tick"]))
        return rows

    # -- internals -----------------------------------------------------
    def _next_tick(self) -> int:
        self._index["tick"] = int(self._index["tick"]) + 1
        return self._index["tick"]

    def _count(self, counter: str) -> None:
        self._index[counter] = int(self._index[counter]) + 1

    def _drop_entry(self, key: str) -> None:
        self._index["entries"].pop(key, None)

    def _evict(self, key: str, path: Path) -> None:
        self._drop_entry(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def _adopt(self, key: str, kind: str, path: Path) -> None:
        self._index["entries"][key] = {
            "kind": kind,
            "size": path.stat().st_size,
            "sha256": _sha256_file(path),
            "tick": self._next_tick(),
            "meta": {},
        }

    def _gc_locked(self) -> Tuple[int, int]:
        entries = self._index["entries"]
        total = sum(entry["size"] for entry in entries.values())
        budget = self.byte_budget
        evicted = freed = 0
        for key in sorted(entries, key=lambda k: entries[k]["tick"]):
            if total <= budget:
                break
            size = entries[key]["size"]
            self._evict(key, self.object_path(key, entries[key]["kind"]))
            total -= size
            freed += size
            evicted += 1
        if evicted:
            logger.info("store gc: evicted %d entr%s (%d bytes) to "
                        "fit %d-byte budget", evicted,
                        "y" if evicted == 1 else "ies", freed, budget)
        return evicted, freed

    def _write_index(self) -> None:
        atomic_write_text(
            self.index_path,
            json.dumps(self._index, indent=1, sort_keys=True),
        )

    def _load_index(self) -> dict:
        index = self._fresh_index()
        try:
            loaded = json.loads(
                self.index_path.read_text(encoding="utf-8")
            )
            if (isinstance(loaded, dict)
                    and loaded.get("version") == INDEX_VERSION
                    and isinstance(loaded.get("entries"), dict)):
                index.update(loaded)
            else:
                logger.warning(
                    "store index %s is unusable — rebuilding from "
                    "directory scan", self.index_path,
                )
        except FileNotFoundError:
            pass
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            logger.warning(
                "store index %s is corrupt (%s) — rebuilding from "
                "directory scan", self.index_path, error,
            )
        self._index = index
        self._reconcile()
        return index

    def _reconcile(self) -> None:
        """Sync index entries with the objects actually on disk."""
        on_disk: Dict[str, Tuple[str, Path]] = {}
        for path in self.objects_dir.glob("*/*"):
            if path.name.startswith(".tmp-"):
                continue
            parts = path.name.split(".")
            if len(parts) < 3:
                continue
            key, kind = parts[0], parts[1]
            if kind in KIND_EXTENSIONS:
                on_disk[key] = (kind, path)
        entries = self._index["entries"]
        for key in [k for k in entries if k not in on_disk]:
            del entries[key]
        for key, (kind, path) in on_disk.items():
            if key not in entries:
                self._adopt(key, kind, path)

    def _fresh_index(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "byte_budget": DEFAULT_BYTE_BUDGET,
            "tick": 0,
            "hits": 0,
            "misses": 0,
            "entries": {},
        }
