"""Simulation-based sequential equivalence checking.

Compares two netlists' observable behaviour under shared random
stimulus: same primary-input names, same primary-output names (order
may differ), identical per-cycle output values from reset.  Used to
validate behaviour-preserving transforms — Verilog round-trips, TMR
hardening, re-encodes — with a concrete counterexample when the claim
fails.

This is *simulation* equivalence (bounded, stimulus-based), the
industry smoke test before formal methods; confidence grows with
``workloads × cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError
from repro.utils.rng import SeedLike


@dataclass
class Counterexample:
    """A stimulus separating the two designs."""

    workload_name: str
    cycle: int
    output: str
    value_a: int
    value_b: int

    def describe(self) -> str:
        return (
            f"output {self.output!r} differs at cycle {self.cycle} of "
            f"{self.workload_name!r}: {self.value_a} vs {self.value_b}"
        )


@dataclass
class EquivalenceResult:
    """Outcome of :func:`check_equivalence`."""

    design_a: str
    design_b: str
    workloads_run: int
    cycles_per_workload: int
    counterexample: Optional[Counterexample] = None

    @property
    def equivalent(self) -> bool:
        return self.counterexample is None


def check_equivalence(
    design_a: Netlist,
    design_b: Netlist,
    workloads: int = 8,
    cycles: int = 100,
    seed: SeedLike = 0,
    reset_input: str = "reset",
    stop_at_first: bool = True,
    outputs: Optional[Sequence[str]] = None,
) -> EquivalenceResult:
    """Check ``design_a`` and ``design_b`` for bounded sequential
    equivalence under shared constrained-random stimulus.

    ``outputs`` restricts the comparison to a subset of the shared
    output ports — ECO verification uses this to compare only the
    cone-affected outputs of an edited design cheaply.

    Raises :class:`NetlistError` when the interfaces are incomparable
    (different input or output name sets, or ``outputs`` names an
    unknown port).
    """
    from repro.sim.simulator import Simulator
    from repro.sim.waveform import Workload
    from repro.sim.workloads import random_workload

    inputs_a = design_a.input_names()
    inputs_b = design_b.input_names()
    if set(inputs_a) != set(inputs_b):
        raise NetlistError(
            "designs have different primary inputs: "
            f"{sorted(set(inputs_a) ^ set(inputs_b))[:6]}"
        )
    outputs_a = design_a.output_names()
    outputs_b = design_b.output_names()
    if set(outputs_a) != set(outputs_b):
        raise NetlistError(
            "designs have different primary outputs: "
            f"{sorted(set(outputs_a) ^ set(outputs_b))[:6]}"
        )

    if outputs is None:
        compare_names = list(outputs_a)
    else:
        unknown = [name for name in outputs if name not in set(outputs_a)]
        if unknown:
            raise NetlistError(
                f"outputs subset names unknown ports: {unknown[:6]}"
            )
        compare_names = list(outputs)

    simulator_a = Simulator(design_a)
    simulator_b = Simulator(design_b)
    column_a = [outputs_a.index(name) for name in compare_names]
    column_b = [outputs_b.index(name) for name in compare_names]

    counterexample: Optional[Counterexample] = None
    for index in range(workloads):
        stimulus = random_workload(
            design_a, cycles=cycles, seed=(seed, "equiv", index),
            reset_input=reset_input, name=f"equiv[{index}]",
        )
        trace_a = simulator_a.run(stimulus)
        # Re-map the stimulus columns onto design B's input order.
        remapped = Workload(
            name=stimulus.name,
            input_names=inputs_b,
            vectors=stimulus.vectors[
                :, [inputs_a.index(name) for name in inputs_b]
            ],
        )
        trace_b = simulator_b.run(remapped)

        aligned_a = trace_a.outputs[:, column_a]
        aligned_b = trace_b.outputs[:, column_b]
        difference = aligned_a != aligned_b
        if difference.any():
            cycle, position = np.argwhere(difference)[0]
            counterexample = Counterexample(
                workload_name=stimulus.name,
                cycle=int(cycle),
                output=compare_names[int(position)],
                value_a=int(aligned_a[cycle, position]),
                value_b=int(aligned_b[cycle, position]),
            )
            if stop_at_first:
                return EquivalenceResult(
                    design_a=design_a.name, design_b=design_b.name,
                    workloads_run=index + 1,
                    cycles_per_workload=cycles,
                    counterexample=counterexample,
                )

    return EquivalenceResult(
        design_a=design_a.name, design_b=design_b.name,
        workloads_run=workloads, cycles_per_workload=cycles,
        counterexample=counterexample,
    )
