"""Netlist optimization: constant folding and dead-code elimination.

A light synthesis-cleanup pass, run before analysis if desired:

* **Constant folding** — nets provably constant (driven by tie cells,
  or by gates whose output is the same for every completion of their
  non-constant inputs, e.g. ``AND(x, 0)``) are replaced by shared
  ``TIE0``/``TIE1`` cells.
* **Dead-code elimination** — gates whose outputs can no longer reach
  a primary output (directly or through live flip-flops) are removed.

The pass is behaviour-preserving at the primary outputs (checked with
the equivalence checker in the tests) and conservative: flip-flops are
never folded (their value varies across the reset sequence even when
the steady state is constant).

Note that optimization changes the fault universe — folded/removed
gates no longer exist as fault sites.  That is the correct semantics
for criticality analysis of the *optimized* implementation; analyze the
original netlist if its redundant sites matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Set

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError


@dataclass
class OptimizeReport:
    """What the pass did."""

    design: str
    gates_before: int
    gates_after: int
    folded_constants: List[str] = field(default_factory=list)
    removed_dead: List[str] = field(default_factory=list)

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after


def _constant_output(gate, const: Dict[int, Optional[int]]
                     ) -> Optional[int]:
    """The gate's output value if it is the same for every completion
    of its unknown inputs, else None."""
    known = [const.get(net) for net in gate.inputs]
    unknown = [i for i, value in enumerate(known) if value is None]
    if len(unknown) > 6:
        return None
    outputs = set()
    for assignment in product((0, 1), repeat=len(unknown)):
        bits = list(known)
        for position, input_index in enumerate(unknown):
            bits[input_index] = assignment[position]
        outputs.add(int(gate.cell.function(tuple(bits), 1)) & 1)
        if len(outputs) > 1:
            return None
    return outputs.pop()


def optimize_netlist(netlist: Netlist):
    """Return ``(optimized_netlist, report)``.

    The input netlist is not modified.  Kept gates retain their
    instance names, so node identities survive the pass.
    """
    # ------------------------------------------------------------------
    # 1. constant analysis (combinational only, topological order)
    # ------------------------------------------------------------------
    const: Dict[int, Optional[int]] = {}
    order = netlist.topological_order()
    for gate_index in order:
        gate = netlist.gates[gate_index]
        if gate.is_sequential:
            const[gate.output] = None
            continue
        const[gate.output] = _constant_output(gate, const)

    # ------------------------------------------------------------------
    # 2. liveness: backwards from POs; const nets need no driver.
    # ------------------------------------------------------------------
    live_gates: Set[int] = set()
    frontier: List[int] = []

    def require(net_index: int) -> None:
        if const.get(net_index) is not None:
            return  # becomes a tie, its cone is dead
        driver = netlist.nets[net_index].driver
        if driver is not None and driver not in live_gates:
            live_gates.add(driver)
            frontier.append(driver)

    for net_index, _ in netlist.primary_outputs:
        require(net_index)
    while frontier:
        gate = netlist.gates[frontier.pop()]
        for net_index in gate.inputs:
            if net_index == gate.output:
                continue  # self-feedback (DFFE)
            require(net_index)

    # ------------------------------------------------------------------
    # 3. rebuild
    # ------------------------------------------------------------------
    optimized = Netlist(netlist.name)
    net_map: Dict[int, int] = {}
    tie_nets: Dict[int, int] = {}

    def tie(value: int) -> int:
        if value not in tie_nets:
            tie_nets[value] = optimized.add_gate(
                "TIE1" if value else "TIE0", [],
                instance=f"opt_tie{value}",
            )
        return tie_nets[value]

    for net in netlist.nets:
        if net.is_primary_input:
            net_map[net.index] = optimized.add_input(net.name)

    # Flop outputs first (legal sequential feedback), then the
    # combinational gates in topological order, then flop inputs.
    live_flops = [
        netlist.gates[i] for i in sorted(live_gates)
        if netlist.gates[i].is_sequential
    ]
    for gate in live_flops:
        net_map[gate.output] = optimized._new_net(  # noqa: SLF001
            netlist.nets[gate.output].name
        )

    def mapped(net_index: int) -> int:
        value = const.get(net_index)
        if value is not None:
            return tie(value)
        if net_index not in net_map:
            raise NetlistError("optimizer ordering bug")  # pragma: no cover
        return net_map[net_index]

    report = OptimizeReport(
        design=netlist.name,
        gates_before=netlist.n_gates,
        gates_after=0,
    )
    for gate_index in order:
        gate = netlist.gates[gate_index]
        if gate.is_sequential:
            continue
        if gate_index not in live_gates:
            if const.get(gate.output) is not None and any(
                True for _ in netlist.nets[gate.output].sinks
            ):
                report.folded_constants.append(gate.node_name)
            elif gate.cell.n_inputs > 0:
                report.removed_dead.append(gate.node_name)
            continue
        net_map[gate.output] = optimized.add_gate(
            gate.cell.name,
            [mapped(net) for net in gate.inputs],
            instance=gate.instance,
            output_name=netlist.nets[gate.output].name,
        )

    from repro.netlist.cells import FEEDBACK_PORTS

    for gate in live_flops:
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        wired = gate.inputs[:-1] if feedback else gate.inputs
        optimized.attach_gate(
            gate.cell.name,
            [mapped(net) for net in wired],
            net_map[gate.output],
            gate.instance,
        )

    for gate in netlist.sequential_gates():
        if gate.index not in live_gates:
            report.removed_dead.append(gate.node_name)

    for net_index, port in netlist.primary_outputs:
        optimized.add_output(mapped(net_index), port)

    report.gates_after = optimized.n_gates
    return optimized, report
