"""Gate-level netlist substrate: cells, data model, Verilog I/O."""

from repro.netlist.cells import (
    Cell,
    LIBRARY,
    combinational_cells,
    get_cell,
    sequential_cells,
)
from repro.netlist.diff import GateChange, NetlistDiff, diff_netlists
from repro.netlist.netlist import Gate, GateAdjacency, Net, Netlist
from repro.netlist.stats import NetlistStats, summarize
from repro.netlist.equivalence import (
    Counterexample,
    EquivalenceResult,
    check_equivalence,
)
from repro.netlist.optimize import OptimizeReport, optimize_netlist
from repro.netlist.transform import harden_nodes, hardened_node_names
from repro.netlist.validate import check, validate
from repro.netlist.verilog import (
    from_verilog,
    read_verilog,
    to_verilog,
    write_verilog,
)

__all__ = [
    "Cell",
    "LIBRARY",
    "combinational_cells",
    "get_cell",
    "sequential_cells",
    "Gate",
    "GateAdjacency",
    "GateChange",
    "Net",
    "Netlist",
    "NetlistDiff",
    "diff_netlists",
    "NetlistStats",
    "summarize",
    "Counterexample",
    "EquivalenceResult",
    "check_equivalence",
    "OptimizeReport",
    "optimize_netlist",
    "harden_nodes",
    "hardened_node_names",
    "check",
    "validate",
    "from_verilog",
    "read_verilog",
    "to_verilog",
    "write_verilog",
]
