"""Structural netlist diffing.

Compares two gate-level designs *by name*, following the
:func:`~repro.netlist.equivalence.check_equivalence` conventions: gates
match by instance name, nets and ports by their declared names.  The
result is an engineering-change-order (ECO) description — which gates
were added, removed, or changed, and which nets/ports were re-driven —
that :mod:`repro.fi.eco` turns into a dirty region for incremental
fault re-analysis.

The diff is purely structural: two designs with an empty diff are the
same circuit graph (up to net/gate index permutation), while a
non-empty diff lists exactly the edit seeds whose fanout cones can
behave differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlist.netlist import Gate, Netlist


@dataclass(frozen=True)
class GateChange:
    """One instance present in both designs with a different definition.

    Input/output connections are compared by *net name* (net indices
    are layout details); the cell by its library name.
    """

    instance: str
    old_cell: str
    new_cell: str
    old_inputs: Tuple[str, ...]
    new_inputs: Tuple[str, ...]
    old_output: str
    new_output: str

    @property
    def cell_changed(self) -> bool:
        return self.old_cell != self.new_cell

    def describe(self) -> str:
        parts = []
        if self.cell_changed:
            parts.append(f"cell {self.old_cell}->{self.new_cell}")
        if self.old_inputs != self.new_inputs:
            parts.append(
                f"inputs {list(self.old_inputs)}->{list(self.new_inputs)}"
            )
        if self.old_output != self.new_output:
            parts.append(
                f"output {self.old_output}->{self.new_output}"
            )
        return f"{self.instance}: " + ", ".join(parts)


@dataclass(frozen=True)
class NetlistDiff:
    """Structural difference between two designs.

    Attributes:
        old_name / new_name: The two design names.
        added_gates: Instance names present only in the new design.
        removed_gates: Instance names present only in the old design.
        changed_gates: Instances present in both with a different
            cell, input connection list, or output net name.
        redriven_nets: Net names present in both designs whose driver
            identity differs (different driving instance, or primary
            input on one side and gate output on the other).
        added_inputs / removed_inputs: Primary-input net names present
            on one side only.
        added_outputs / removed_outputs: Output port names present on
            one side only.
        redriven_outputs: Output ports present in both designs but
            bound to a differently-named net.
    """

    old_name: str
    new_name: str
    added_gates: Tuple[str, ...]
    removed_gates: Tuple[str, ...]
    changed_gates: Tuple[GateChange, ...]
    redriven_nets: Tuple[str, ...]
    added_inputs: Tuple[str, ...]
    removed_inputs: Tuple[str, ...]
    added_outputs: Tuple[str, ...]
    removed_outputs: Tuple[str, ...]
    redriven_outputs: Tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        """True when the designs are structurally identical."""
        return not (
            self.added_gates or self.removed_gates or self.changed_gates
            or self.redriven_nets or self.added_inputs
            or self.removed_inputs or self.added_outputs
            or self.removed_outputs or self.redriven_outputs
        )

    @property
    def n_edits(self) -> int:
        """Total number of differing items across all categories."""
        return (
            len(self.added_gates) + len(self.removed_gates)
            + len(self.changed_gates) + len(self.redriven_nets)
            + len(self.added_inputs) + len(self.removed_inputs)
            + len(self.added_outputs) + len(self.removed_outputs)
            + len(self.redriven_outputs)
        )

    def summary(self) -> str:
        if self.is_empty:
            return (
                f"{self.old_name} -> {self.new_name}: no structural "
                "differences"
            )
        parts = []
        for label, items in (
            ("added", self.added_gates),
            ("removed", self.removed_gates),
            ("changed", tuple(c.instance for c in self.changed_gates)),
            ("redriven nets", self.redriven_nets),
            ("+PI", self.added_inputs),
            ("-PI", self.removed_inputs),
            ("+PO", self.added_outputs),
            ("-PO", self.removed_outputs),
            ("redriven PO", self.redriven_outputs),
        ):
            if items:
                shown = ", ".join(items[:4])
                more = f", +{len(items) - 4}" if len(items) > 4 else ""
                parts.append(f"{label}: {shown}{more}")
        return f"{self.old_name} -> {self.new_name}: " + "; ".join(parts)


def _driver_identity(netlist: Netlist, net_name: str) -> Optional[str]:
    """Driving instance name for a net, or None for a primary input."""
    net = netlist.nets[netlist.net_index(net_name)]
    if net.driver is None:
        return None
    return netlist.gates[net.driver].instance


def _input_net_names(netlist: Netlist, gate: Gate) -> Tuple[str, ...]:
    return tuple(netlist.nets[n].name for n in gate.inputs)


def diff_netlists(old: Netlist, new: Netlist) -> NetlistDiff:
    """Structural diff of two designs, matched by instance/net name."""
    old_instances = {gate.instance: gate for gate in old.gates}
    new_instances = {gate.instance: gate for gate in new.gates}

    added_gates = tuple(
        name for name in new_instances if name not in old_instances
    )
    removed_gates = tuple(
        name for name in old_instances if name not in new_instances
    )

    changed: List[GateChange] = []
    for name, old_gate in old_instances.items():
        new_gate = new_instances.get(name)
        if new_gate is None:
            continue
        change = GateChange(
            instance=name,
            old_cell=old_gate.cell.name,
            new_cell=new_gate.cell.name,
            old_inputs=_input_net_names(old, old_gate),
            new_inputs=_input_net_names(new, new_gate),
            old_output=old.nets[old_gate.output].name,
            new_output=new.nets[new_gate.output].name,
        )
        if (change.cell_changed
                or change.old_inputs != change.new_inputs
                or change.old_output != change.new_output):
            changed.append(change)

    new_net_names = {net.name for net in new.nets}
    redriven_nets = tuple(
        name
        for name in (net.name for net in old.nets)
        if name in new_net_names
        and _driver_identity(old, name) != _driver_identity(new, name)
    )

    old_inputs = set(old.input_names())
    new_inputs = set(new.input_names())
    old_ports: Dict[str, str] = {
        port: old.nets[net].name for net, port in old.primary_outputs
    }
    new_ports: Dict[str, str] = {
        port: new.nets[net].name for net, port in new.primary_outputs
    }

    return NetlistDiff(
        old_name=old.name,
        new_name=new.name,
        added_gates=added_gates,
        removed_gates=removed_gates,
        changed_gates=tuple(changed),
        redriven_nets=redriven_nets,
        added_inputs=tuple(sorted(new_inputs - old_inputs)),
        removed_inputs=tuple(sorted(old_inputs - new_inputs)),
        added_outputs=tuple(
            port for port in new_ports if port not in old_ports
        ),
        removed_outputs=tuple(
            port for port in old_ports if port not in new_ports
        ),
        redriven_outputs=tuple(
            port for port, net_name in old_ports.items()
            if port in new_ports and new_ports[port] != net_name
        ),
    )
