"""Netlist transformations: selective TMR hardening — extension.

The paper's motivation for criticality scores is "prioritizing
resources towards critical nodes".  This module provides the resource:
:func:`harden_nodes` applies triple-modular redundancy to selected
gates — two replicas plus a 2-of-3 majority voter absorb any single
fault inside the triplet — so the closed-loop experiment (predict
critical nodes, harden them, re-run the campaign, measure the failure-
probability drop) is runnable end to end.

Hardening is non-destructive: the input netlist is deep-copied (via its
Verilog form) and the copy is transformed.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError


def _copy_netlist(netlist: Netlist) -> Netlist:
    from repro.netlist.verilog import from_verilog, to_verilog

    return from_verilog(to_verilog(netlist))


def _majority(netlist: Netlist, a: int, b: int, c: int,
              prefix: str) -> int:
    """2-of-3 majority voter: (a&b) | (a&c) | (b&c)."""
    ab = netlist.add_gate("AN2", [a, b], instance=f"{prefix}_vab")
    ac = netlist.add_gate("AN2", [a, c], instance=f"{prefix}_vac")
    bc = netlist.add_gate("AN2", [b, c], instance=f"{prefix}_vbc")
    return netlist.add_gate("OR3", [ab, ac, bc],
                            instance=f"{prefix}_vote")


def harden_nodes(netlist: Netlist,
                 node_names: Sequence[str]) -> Netlist:
    """Return a copy of ``netlist`` with the named gates triplicated
    behind majority voters.

    Each hardened gate gets two replicas driven by the same input nets;
    every original sink (and primary output) of the gate's output net
    is rewired to the voter.  A stuck-at fault on any single replica's
    output is outvoted; the voter itself becomes new (small) logic with
    its own fault population — selective hardening is a trade, not a
    free lunch, and the campaign measures it honestly.
    """
    hardened = _copy_netlist(netlist)
    hardened.name = netlist.name  # keep FuSa policy/workload bindings

    for node_name in node_names:
        gate = hardened.gate_by_node_name(node_name)
        prefix = f"tmr_{gate.instance}"
        feedback_free_inputs = list(gate.inputs)
        from repro.netlist.cells import FEEDBACK_PORTS

        if FEEDBACK_PORTS.get(gate.cell.name):
            feedback_free_inputs = feedback_free_inputs[:-1]

        replica_one = hardened.add_gate(
            gate.cell.name, feedback_free_inputs,
            instance=f"{prefix}_r1",
        )
        replica_two = hardened.add_gate(
            gate.cell.name, feedback_free_inputs,
            instance=f"{prefix}_r2",
        )
        voter = _majority(hardened, gate.output, replica_one,
                          replica_two, prefix)

        # Rewire every original consumer of the gate's output (the
        # replicas and voter read it legitimately) onto the voter.
        original_net = gate.output
        voter_gate_index = hardened.nets[voter].driver
        replica_gates = {
            hardened.nets[replica_one].driver,
            hardened.nets[replica_two].driver,
        }
        protected = set(replica_gates)
        # The voter's first AND reads the original net.
        for sink_gate, port in list(hardened.nets[original_net].sinks):
            if sink_gate in protected:
                continue
            sink = hardened.gates[sink_gate]
            if sink.instance.startswith(prefix):
                continue  # voter internals
            _rewire(hardened, sink_gate, port, voter)

        for position, (net, port_name) in enumerate(
            hardened.primary_outputs
        ):
            if net == original_net:
                hardened.primary_outputs[position] = (voter, port_name)

    hardened.invalidate_structure()
    return hardened


def _rewire(netlist: Netlist, gate_index: int, port: int,
            new_net: int) -> None:
    gate = netlist.gates[gate_index]
    old_net = gate.inputs[port]
    netlist.nets[old_net].sinks.remove((gate_index, port))
    inputs = list(gate.inputs)
    inputs[port] = new_net
    gate.inputs = tuple(inputs)
    netlist.nets[new_net].sinks.append((gate_index, port))


def hardened_node_names(original: Netlist,
                        hardened: Netlist) -> List[str]:
    """Node names added by hardening (replicas and voter gates)."""
    original_names = set(original.node_names())
    return [
        name for name in hardened.node_names()
        if name not in original_names
    ]
