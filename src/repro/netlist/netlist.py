"""Gate-level netlist data model.

A :class:`Netlist` is the central design representation: a set of named
nets, a set of gate instances (each an instantiation of a library
:class:`~repro.netlist.cells.Cell`), primary inputs and primary outputs.
Netlists are built programmatically (see :mod:`repro.circuits.builder`)
or parsed from structural Verilog (:mod:`repro.netlist.verilog`).

Conventions:

* Every net has exactly one driver: a primary input or a gate output.
* A single implicit clock drives every flip-flop; clock and reset
  distribution is abstracted away, exactly as in the paper's gate-level
  fault model (faults are injected on logic nodes, not the clock tree).
* The paper's graph nodes are *gates*; a gate's canonical node name is
  ``{CELL}_{instance}``, matching Table 2 names such as ``ND2_U393``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.cells import Cell, FEEDBACK_PORTS, get_cell
from repro.utils.errors import NetlistError


@dataclass(frozen=True)
class GateAdjacency:
    """Cached CSR gate-to-gate connectivity for one netlist snapshot.

    Both directions preserve the ordering semantics of the list-based
    :meth:`Netlist.fanout_gates` / :meth:`Netlist.fanin_gates` (distinct
    gates, self-feedback excluded; fanout in sink first-appearance
    order, fanin in port order), so graph construction stays bitwise
    stable.  ``fanin_connections`` / ``fanout_connections`` mirror
    :meth:`Netlist.fanin_count` / :meth:`Netlist.fanout_count` — they
    count *connections* (including primary-output ports and duplicate
    sink ports), not distinct neighbour gates.

    Attributes:
        fanout_indptr: ``(n_gates + 1,)`` int64 row pointers.
        fanout_indices: Reader-gate indices, CSR-packed.
        fanin_indptr: ``(n_gates + 1,)`` int64 row pointers.
        fanin_indices: Driver-gate indices, CSR-packed.
        fanin_connections: ``(n_gates,)`` wired-input counts.
        fanout_connections: ``(n_gates,)`` sink + PO-port counts.
    """

    fanout_indptr: np.ndarray
    fanout_indices: np.ndarray
    fanin_indptr: np.ndarray
    fanin_indices: np.ndarray
    fanin_connections: np.ndarray
    fanout_connections: np.ndarray

    def fanout_row(self, gate_index: int) -> np.ndarray:
        start, end = self.fanout_indptr[gate_index:gate_index + 2]
        return self.fanout_indices[start:end]

    def fanin_row(self, gate_index: int) -> np.ndarray:
        start, end = self.fanin_indptr[gate_index:gate_index + 2]
        return self.fanin_indices[start:end]


@dataclass
class Net:
    """A single-bit wire.

    Attributes:
        index: Dense integer id, stable for array-based simulation.
        name: Unique net name.
        driver: Index of the driving gate, or ``None`` for primary inputs.
        sinks: ``(gate_index, port_position)`` pairs reading this net.
    """

    index: int
    name: str
    driver: Optional[int] = None
    sinks: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_primary_input(self) -> bool:
        return self.driver is None


@dataclass
class Gate:
    """One instantiated library cell.

    Attributes:
        index: Dense integer id.
        instance: Instance name, e.g. ``"U393"``.
        cell: The library cell.
        inputs: Net indices in cell port order.
        output: Net index driven by this gate.
    """

    index: int
    instance: str
    cell: Cell
    inputs: Tuple[int, ...]
    output: int

    @property
    def node_name(self) -> str:
        """Canonical graph-node name, ``{CELL}_{instance}``."""
        return f"{self.cell.name}_{self.instance}"

    @property
    def is_sequential(self) -> bool:
        return self.cell.sequential


class Netlist:
    """A mutable gate-level design.

    >>> design = Netlist("demo")
    >>> a = design.add_input("a")
    >>> b = design.add_input("b")
    >>> y = design.add_gate("ND2", [a, b])
    >>> design.add_output(y, "y")
    >>> design.n_gates, design.n_nets
    (1, 3)
    """

    def __init__(self, name: str):
        self.name = name
        self.nets: List[Net] = []
        self.gates: List[Gate] = []
        self._net_by_name: Dict[str, int] = {}
        self._gate_by_instance: Dict[str, int] = {}
        self.primary_inputs: List[int] = []
        #: (net_index, port_name) pairs; one net may feed several outputs.
        self.primary_outputs: List[Tuple[int, str]] = []
        self._instance_counter = 0
        self._levels_cache: Optional[List[int]] = None
        self._adjacency_cache: Optional[GateAdjacency] = None

    def invalidate_structure(self) -> None:
        """Drop connectivity-derived caches after a mutation.

        Every code path that edits nets, gate pins, or primary outputs
        must call this (construction helpers do so automatically); the
        levelization and CSR adjacency caches are rebuilt lazily on
        next use.
        """
        self._levels_cache = None
        self._adjacency_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_net(self, name: str) -> int:
        if name in self._net_by_name:
            raise NetlistError(f"duplicate net name {name!r}")
        index = len(self.nets)
        self.nets.append(Net(index=index, name=name))
        self._net_by_name[name] = index
        self.invalidate_structure()
        return index

    def add_input(self, name: str) -> int:
        """Declare a primary input and return its net index."""
        return self._new_net(name)

    def add_output(self, net: int, name: Optional[str] = None) -> None:
        """Mark ``net`` as a primary output, optionally naming the port."""
        self._check_net(net)
        port = name if name is not None else self.nets[net].name
        if any(existing == port for _, existing in self.primary_outputs):
            raise NetlistError(f"duplicate output port {port!r}")
        self.primary_outputs.append((net, port))
        # Fanout connection counts include PO ports.
        self._adjacency_cache = None

    def _fresh_instance(self) -> str:
        while True:
            self._instance_counter += 1
            candidate = f"U{self._instance_counter}"
            if candidate not in self._gate_by_instance:
                return candidate

    def add_gate(
        self,
        cell_name: str,
        inputs: Sequence[int],
        instance: Optional[str] = None,
        output_name: Optional[str] = None,
    ) -> int:
        """Instantiate ``cell_name`` and return the output net index.

        ``inputs`` are net indices in cell port order.  For cells with a
        feedback port (``DFFE``), omit the feedback input: it is wired to
        the gate's own output automatically.
        """
        cell = get_cell(cell_name)
        feedback_port = FEEDBACK_PORTS.get(cell_name)
        expected = cell.n_inputs - (1 if feedback_port else 0)
        if len(inputs) != expected:
            raise NetlistError(
                f"cell {cell_name} expects {expected} wired inputs, "
                f"got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)

        if instance is None:
            instance = self._fresh_instance()
        if instance in self._gate_by_instance:
            raise NetlistError(f"duplicate instance name {instance!r}")

        gate_index = len(self.gates)
        output_net = self._new_net(
            output_name if output_name is not None else f"n_{instance}"
        )
        self.nets[output_net].driver = gate_index

        wired = list(inputs)
        if feedback_port:
            # Feedback port is declared last in the cell port list.
            wired.append(output_net)

        gate = Gate(
            index=gate_index,
            instance=instance,
            cell=cell,
            inputs=tuple(wired),
            output=output_net,
        )
        self.gates.append(gate)
        self._gate_by_instance[instance] = gate_index
        for position, net in enumerate(gate.inputs):
            self.nets[net].sinks.append((gate_index, position))
        self.invalidate_structure()
        return output_net

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.nets):
            raise NetlistError(f"net index {net} out of range")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_inputs(self) -> int:
        return sum(1 for net in self.nets if net.is_primary_input)

    @property
    def n_outputs(self) -> int:
        return len(self.primary_outputs)

    def net_index(self, name: str) -> int:
        """Net index for ``name``; raises NetlistError when unknown."""
        try:
            return self._net_by_name[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r}") from None

    def gate_by_instance(self, instance: str) -> Gate:
        """Gate for instance name; raises NetlistError when unknown."""
        try:
            return self.gates[self._gate_by_instance[instance]]
        except KeyError:
            raise NetlistError(f"unknown instance {instance!r}") from None

    def gate_by_node_name(self, node_name: str) -> Gate:
        """Gate for a canonical ``{CELL}_{instance}`` node name."""
        cell_name, _, instance = node_name.partition("_")
        gate = self.gate_by_instance(instance)
        if gate.cell.name != cell_name:
            raise NetlistError(
                f"node {node_name!r} names cell {cell_name}, but instance "
                f"{instance} is a {gate.cell.name}"
            )
        return gate

    def input_nets(self) -> List[int]:
        """Primary-input net indices in declaration order."""
        return [net.index for net in self.nets if net.is_primary_input]

    def input_names(self) -> List[str]:
        """Primary-input net names in declaration order."""
        return [net.name for net in self.nets if net.is_primary_input]

    def output_names(self) -> List[str]:
        """Primary-output port names in declaration order."""
        return [name for _, name in self.primary_outputs]

    def sequential_gates(self) -> List[Gate]:
        """All flip-flop gates."""
        return [gate for gate in self.gates if gate.is_sequential]

    def combinational_gates(self) -> List[Gate]:
        """All non-flip-flop gates."""
        return [gate for gate in self.gates if not gate.is_sequential]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {self.n_gates} gates, "
            f"{self.n_nets} nets, {self.n_inputs} PIs, "
            f"{self.n_outputs} POs)"
        )

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------
    def levelize(self) -> List[int]:
        """Topological level per gate.

        Flip-flops sit at level 0 (their outputs behave like primary
        inputs within a cycle); a combinational gate with combinational
        drivers sits one level above the deepest of them, and a gate
        fed only by primary inputs or flops sits at level 0.  Raises
        :class:`NetlistError` on a combinational loop.
        """
        if self._levels_cache is not None:
            return list(self._levels_cache)

        levels = [0] * self.n_gates
        # Count unresolved combinational fanins per gate.
        pending = [0] * self.n_gates
        ready: List[int] = []
        for gate in self.gates:
            if gate.is_sequential:
                ready.append(gate.index)
                continue
            unresolved = 0
            for net in gate.inputs:
                driver = self.nets[net].driver
                if driver is not None and not self.gates[driver].is_sequential:
                    unresolved += 1
            pending[gate.index] = unresolved
            if unresolved == 0:
                ready.append(gate.index)

        order: List[int] = []
        cursor = 0
        while cursor < len(ready):
            gate_index = ready[cursor]
            cursor += 1
            order.append(gate_index)
            gate = self.gates[gate_index]
            if gate.is_sequential:
                continue
            for sink_gate, _ in self.nets[gate.output].sinks:
                sink = self.gates[sink_gate]
                if sink.is_sequential:
                    continue
                pending[sink_gate] -= 1
                if pending[sink_gate] == 0:
                    levels[sink_gate] = 1 + max(
                        (
                            levels[self.nets[net].driver]
                            for net in sink.inputs
                            if self.nets[net].driver is not None
                            and not self.gates[
                                self.nets[net].driver
                            ].is_sequential
                        ),
                        default=0,
                    )
                    ready.append(sink_gate)

        if len(order) != self.n_gates:
            stuck = [
                self.gates[i].node_name
                for i in range(self.n_gates)
                if i not in set(order)
            ]
            raise NetlistError(
                f"combinational loop involving gates: {stuck[:8]}"
            )
        self._levels_cache = levels
        return list(levels)

    def topological_order(self) -> List[int]:
        """Gate indices sorted so combinational drivers precede sinks."""
        levels = self.levelize()
        return sorted(range(self.n_gates), key=lambda i: (levels[i], i))

    def depth(self) -> int:
        """Maximum combinational level in the design."""
        levels = self.levelize()
        return max(levels) if levels else 0

    def gate_adjacency(self) -> GateAdjacency:
        """Cached CSR fanin/fanout gate adjacency.

        Built once per structural state and dropped by
        :meth:`invalidate_structure`; all hot connectivity paths
        (feature extraction, cone BFS, graph construction) share it
        instead of re-scanning Python sink lists per call.
        """
        if self._adjacency_cache is not None:
            return self._adjacency_cache

        n = self.n_gates
        po_ports = [0] * self.n_nets
        for net, _ in self.primary_outputs:
            po_ports[net] += 1

        fanout_lists: List[List[int]] = []
        fanin_lists: List[List[int]] = []
        fanin_connections = np.zeros(n, dtype=np.int64)
        fanout_connections = np.zeros(n, dtype=np.int64)
        for gate in self.gates:
            feedback = FEEDBACK_PORTS.get(gate.cell.name)
            fanin_connections[gate.index] = (
                len(gate.inputs) - (1 if feedback else 0)
            )
            drivers: List[int] = []
            for net in gate.inputs:
                driver = self.nets[net].driver
                if (driver is not None and driver != gate.index
                        and driver not in drivers):
                    drivers.append(driver)
            fanin_lists.append(drivers)

            readers: List[int] = []
            connections = 0
            for sink_gate, _ in self.nets[gate.output].sinks:
                if sink_gate == gate.index:
                    continue
                connections += 1
                if sink_gate not in readers:
                    readers.append(sink_gate)
            fanout_lists.append(readers)
            fanout_connections[gate.index] = (
                connections + po_ports[gate.output]
            )

        def pack(rows: List[List[int]]):
            indptr = np.zeros(n + 1, dtype=np.int64)
            for i, row in enumerate(rows):
                indptr[i + 1] = indptr[i] + len(row)
            flat = [g for row in rows for g in row]
            return indptr, np.asarray(flat, dtype=np.int64)

        fanout_indptr, fanout_indices = pack(fanout_lists)
        fanin_indptr, fanin_indices = pack(fanin_lists)
        self._adjacency_cache = GateAdjacency(
            fanout_indptr=fanout_indptr,
            fanout_indices=fanout_indices,
            fanin_indptr=fanin_indptr,
            fanin_indices=fanin_indices,
            fanin_connections=fanin_connections,
            fanout_connections=fanout_connections,
        )
        return self._adjacency_cache

    def fanin_count(self, gate: Gate) -> int:
        """Number of wired input connections of ``gate`` (feedback port
        of DFFE excluded, matching what a designer would count)."""
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        n = len(gate.inputs)
        return n - 1 if feedback else n

    def fanout_count(self, gate: Gate) -> int:
        """Number of sink connections on the gate's output net, plus one
        per primary-output port it drives.  Self-feedback (DFFE) is not
        counted."""
        return int(
            self.gate_adjacency().fanout_connections[gate.index]
        )

    def fanout_gates(self, gate: Gate) -> List[int]:
        """Indices of distinct gates reading ``gate``'s output."""
        return self.gate_adjacency().fanout_row(gate.index).tolist()

    def fanin_gates(self, gate: Gate) -> List[int]:
        """Indices of distinct gates driving ``gate``'s inputs."""
        return self.gate_adjacency().fanin_row(gate.index).tolist()

    def node_names(self) -> List[str]:
        """Canonical node names for all gates, in gate-index order."""
        return [gate.node_name for gate in self.gates]
