"""Gate-level netlist data model.

A :class:`Netlist` is the central design representation: a set of named
nets, a set of gate instances (each an instantiation of a library
:class:`~repro.netlist.cells.Cell`), primary inputs and primary outputs.
Netlists are built programmatically (see :mod:`repro.circuits.builder`)
or parsed from structural Verilog (:mod:`repro.netlist.verilog`).

Conventions:

* Every net has exactly one driver: a primary input or a gate output.
* A single implicit clock drives every flip-flop; clock and reset
  distribution is abstracted away, exactly as in the paper's gate-level
  fault model (faults are injected on logic nodes, not the clock tree).
* The paper's graph nodes are *gates*; a gate's canonical node name is
  ``{CELL}_{instance}``, matching Table 2 names such as ``ND2_U393``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.cells import Cell, FEEDBACK_PORTS, get_cell
from repro.utils.errors import NetlistError


def csr_gather(indptr: np.ndarray, indices: np.ndarray,
               rows: np.ndarray) -> np.ndarray:
    """Concatenate the CSR rows selected by ``rows``, in row order.

    The vectorized equivalent of ``np.concatenate([indices[indptr[r]:
    indptr[r + 1]] for r in rows])`` without the per-row Python loop;
    shared by every frontier-BFS and graph-construction hot path.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(0, dtype=indices.dtype)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=indices.dtype)
    # Positions: for each selected row, starts[i] + (0..counts[i]-1).
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    positions = np.arange(total, dtype=np.int64) - offsets
    return indices[np.repeat(starts, counts) + positions]


def _dedup_rows(rows: np.ndarray, values: np.ndarray,
                n_rows: int) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-pack ``(rows, values)`` pairs, deduplicated per row with
    first-appearance order preserved.

    ``rows`` must be non-decreasing (row-major entry order), which every
    caller guarantees by building entries with :func:`np.repeat`.
    """
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    if rows.size == 0:
        return indptr, np.asarray([], dtype=np.int64)
    key = rows * np.int64(n_rows) + values
    _, first = np.unique(key, return_index=True)
    first.sort()
    kept_rows = rows[first]
    indptr[1:] = np.cumsum(np.bincount(kept_rows, minlength=n_rows))
    return indptr, values[first].astype(np.int64, copy=False)


@dataclass(frozen=True)
class GateArrays:
    """Cached per-gate and per-net attribute arrays for one snapshot.

    One linear pass over the Python ``Gate``/``Net`` objects turns the
    pointer-chasing representation into flat numpy arrays; every
    downstream O(V+E) pass (adjacency packing, levelization, edge and
    feature extraction) then runs vectorized on these instead of
    re-walking Python lists per gate.

    Attributes:
        sequential: ``(n_gates,)`` bool, True for flip-flops.
        inverting: ``(n_gates,)`` bool, True for negating cells.
        output_net: ``(n_gates,)`` driven net index per gate.
        wired_inputs: ``(n_gates,)`` input connection counts with the
            DFFE feedback port excluded (what :meth:`Netlist.fanin_count`
            reports).
        input_indptr / input_nets: CSR of every gate's input pins in
            cell port order (feedback pins included).
        net_driver: ``(n_nets,)`` driving gate index, ``-1`` for PIs.
        sink_indptr / sink_gates: CSR of each net's reader gates in
            sink-list order (one entry per connection, duplicates kept).
    """

    sequential: np.ndarray
    inverting: np.ndarray
    output_net: np.ndarray
    wired_inputs: np.ndarray
    input_indptr: np.ndarray
    input_nets: np.ndarray
    net_driver: np.ndarray
    sink_indptr: np.ndarray
    sink_gates: np.ndarray

    def input_rows(self, gate_indices: np.ndarray) -> np.ndarray:
        """Concatenated input-pin nets of the selected gates."""
        return csr_gather(self.input_indptr, self.input_nets, gate_indices)

    def sink_rows(self, net_indices: np.ndarray) -> np.ndarray:
        """Concatenated reader gates of the selected nets."""
        return csr_gather(self.sink_indptr, self.sink_gates, net_indices)


@dataclass(frozen=True)
class GateAdjacency:
    """Cached CSR gate-to-gate connectivity for one netlist snapshot.

    Both directions preserve the ordering semantics of the list-based
    :meth:`Netlist.fanout_gates` / :meth:`Netlist.fanin_gates` (distinct
    gates, self-feedback excluded; fanout in sink first-appearance
    order, fanin in port order), so graph construction stays bitwise
    stable.  ``fanin_connections`` / ``fanout_connections`` mirror
    :meth:`Netlist.fanin_count` / :meth:`Netlist.fanout_count` — they
    count *connections* (including primary-output ports and duplicate
    sink ports), not distinct neighbour gates.

    Attributes:
        fanout_indptr: ``(n_gates + 1,)`` int64 row pointers.
        fanout_indices: Reader-gate indices, CSR-packed.
        fanin_indptr: ``(n_gates + 1,)`` int64 row pointers.
        fanin_indices: Driver-gate indices, CSR-packed.
        fanin_connections: ``(n_gates,)`` wired-input counts.
        fanout_connections: ``(n_gates,)`` sink + PO-port counts.
    """

    fanout_indptr: np.ndarray
    fanout_indices: np.ndarray
    fanin_indptr: np.ndarray
    fanin_indices: np.ndarray
    fanin_connections: np.ndarray
    fanout_connections: np.ndarray

    def fanout_row(self, gate_index: int) -> np.ndarray:
        start, end = self.fanout_indptr[gate_index:gate_index + 2]
        return self.fanout_indices[start:end]

    def fanin_row(self, gate_index: int) -> np.ndarray:
        start, end = self.fanin_indptr[gate_index:gate_index + 2]
        return self.fanin_indices[start:end]

    def fanout_rows(self, gate_indices: np.ndarray) -> np.ndarray:
        """Concatenated fanout rows of the selected gates."""
        return csr_gather(self.fanout_indptr, self.fanout_indices,
                          gate_indices)

    def fanin_rows(self, gate_indices: np.ndarray) -> np.ndarray:
        """Concatenated fanin rows of the selected gates."""
        return csr_gather(self.fanin_indptr, self.fanin_indices,
                          gate_indices)


@dataclass
class Net:
    """A single-bit wire.

    Attributes:
        index: Dense integer id, stable for array-based simulation.
        name: Unique net name.
        driver: Index of the driving gate, or ``None`` for primary inputs.
        sinks: ``(gate_index, port_position)`` pairs reading this net.
    """

    index: int
    name: str
    driver: Optional[int] = None
    sinks: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_primary_input(self) -> bool:
        return self.driver is None


@dataclass
class Gate:
    """One instantiated library cell.

    Attributes:
        index: Dense integer id.
        instance: Instance name, e.g. ``"U393"``.
        cell: The library cell.
        inputs: Net indices in cell port order.
        output: Net index driven by this gate.
    """

    index: int
    instance: str
    cell: Cell
    inputs: Tuple[int, ...]
    output: int

    @property
    def node_name(self) -> str:
        """Canonical graph-node name, ``{CELL}_{instance}``."""
        return f"{self.cell.name}_{self.instance}"

    @property
    def is_sequential(self) -> bool:
        return self.cell.sequential


class Netlist:
    """A mutable gate-level design.

    >>> design = Netlist("demo")
    >>> a = design.add_input("a")
    >>> b = design.add_input("b")
    >>> y = design.add_gate("ND2", [a, b])
    >>> design.add_output(y, "y")
    >>> design.n_gates, design.n_nets
    (1, 3)
    """

    def __init__(self, name: str):
        self.name = name
        self.nets: List[Net] = []
        self.gates: List[Gate] = []
        self._net_by_name: Dict[str, int] = {}
        self._gate_by_instance: Dict[str, int] = {}
        self.primary_inputs: List[int] = []
        #: (net_index, port_name) pairs; one net may feed several outputs.
        self.primary_outputs: List[Tuple[int, str]] = []
        self._output_ports: set = set()
        self._instance_counter = 0
        self._levels_cache: Optional[List[int]] = None
        self._adjacency_cache: Optional[GateAdjacency] = None
        self._arrays_cache: Optional[GateArrays] = None
        self._input_nets_cache: Optional[List[int]] = None
        self._bulk_depth = 0
        self._structure_dirty = False

    def invalidate_structure(self) -> None:
        """Drop connectivity-derived caches after a mutation.

        Every code path that edits nets, gate pins, or primary outputs
        must call this (construction helpers do so automatically); the
        levelization, CSR adjacency, and attribute-array caches are
        rebuilt lazily on next use.  Inside a :meth:`building` block the
        drop is deferred: construction helpers may call this once per
        gate, so bulk construction marks the caches dirty in O(1) and
        clears them when the block exits (or on the next cached read).
        """
        if self._bulk_depth:
            self._structure_dirty = True
            return
        self._clear_caches()

    def _clear_caches(self) -> None:
        self._levels_cache = None
        self._adjacency_cache = None
        self._arrays_cache = None
        self._input_nets_cache = None

    def _flush_dirty(self) -> None:
        """Apply a deferred invalidation before serving a cached read."""
        if self._structure_dirty:
            self._structure_dirty = False
            self._clear_caches()

    @contextmanager
    def building(self):
        """Bulk-construction mode: defer cache invalidation.

        Wrap loops that add many gates (parsers, generators,
        :class:`~repro.circuits.builder.CircuitBuilder` programs) so the
        per-gate ``invalidate_structure`` calls collapse into a single
        deferred drop.  Nests safely; cached reads issued inside the
        block still see fresh data because every cache accessor flushes
        the dirty flag first.
        """
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._flush_dirty()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_net(self, name: str) -> int:
        if name in self._net_by_name:
            raise NetlistError(f"duplicate net name {name!r}")
        index = len(self.nets)
        self.nets.append(Net(index=index, name=name))
        self._net_by_name[name] = index
        self.invalidate_structure()
        return index

    def add_input(self, name: str) -> int:
        """Declare a primary input and return its net index."""
        return self._new_net(name)

    def add_output(self, net: int, name: Optional[str] = None) -> None:
        """Mark ``net`` as a primary output, optionally naming the port."""
        self._check_net(net)
        port = name if name is not None else self.nets[net].name
        # Set-based duplicate check: bulk output declaration (wide output
        # buses, auto-exported dangling nets) stays O(1) per port.
        if port in self._output_ports:
            raise NetlistError(f"duplicate output port {port!r}")
        self._output_ports.add(port)
        self.primary_outputs.append((net, port))
        # Fanout connection counts include PO ports.
        self._adjacency_cache = None

    def _fresh_instance(self) -> str:
        while True:
            self._instance_counter += 1
            candidate = f"U{self._instance_counter}"
            if candidate not in self._gate_by_instance:
                return candidate

    def add_gate(
        self,
        cell_name: str,
        inputs: Sequence[int],
        instance: Optional[str] = None,
        output_name: Optional[str] = None,
    ) -> int:
        """Instantiate ``cell_name`` and return the output net index.

        ``inputs`` are net indices in cell port order.  For cells with a
        feedback port (``DFFE``), omit the feedback input: it is wired to
        the gate's own output automatically.
        """
        cell = get_cell(cell_name)
        feedback_port = FEEDBACK_PORTS.get(cell_name)
        expected = cell.n_inputs - (1 if feedback_port else 0)
        if len(inputs) != expected:
            raise NetlistError(
                f"cell {cell_name} expects {expected} wired inputs, "
                f"got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)

        if instance is None:
            instance = self._fresh_instance()
        if instance in self._gate_by_instance:
            raise NetlistError(f"duplicate instance name {instance!r}")

        gate_index = len(self.gates)
        output_net = self._new_net(
            output_name if output_name is not None else f"n_{instance}"
        )
        self.nets[output_net].driver = gate_index

        wired = list(inputs)
        if feedback_port:
            # Feedback port is declared last in the cell port list.
            wired.append(output_net)

        gate = Gate(
            index=gate_index,
            instance=instance,
            cell=cell,
            inputs=tuple(wired),
            output=output_net,
        )
        self.gates.append(gate)
        self._gate_by_instance[instance] = gate_index
        for position, net in enumerate(gate.inputs):
            self.nets[net].sinks.append((gate_index, position))
        self.invalidate_structure()
        return output_net

    def attach_gate(
        self,
        cell_name: str,
        inputs: Sequence[int],
        output: int,
        instance: str,
    ) -> int:
        """Instantiate ``cell_name`` driving the *existing* net ``output``.

        The second phase of two-phase sequential construction: state
        nets are created first so combinational logic may reference them
        freely, then the flip-flops that drive them are attached.  Used
        by the Verilog parser and :meth:`from_gates`.
        """
        cell = get_cell(cell_name)
        feedback_port = FEEDBACK_PORTS.get(cell_name)
        expected = cell.n_inputs - (1 if feedback_port else 0)
        if len(inputs) != expected:
            raise NetlistError(
                f"cell {cell_name} expects {expected} wired inputs, "
                f"got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)
        self._check_net(output)
        if self.nets[output].driver is not None:
            raise NetlistError(
                f"net {self.nets[output].name!r} has two drivers"
            )
        if instance in self._gate_by_instance:
            raise NetlistError(f"duplicate instance name {instance!r}")

        gate_index = len(self.gates)
        wired = list(inputs)
        if feedback_port:
            wired.append(output)
        gate = Gate(
            index=gate_index,
            instance=instance,
            cell=cell,
            inputs=tuple(wired),
            output=output,
        )
        self.gates.append(gate)
        self._gate_by_instance[instance] = gate_index
        self.nets[output].driver = gate_index
        for position, net in enumerate(gate.inputs):
            self.nets[net].sinks.append((gate_index, position))
        self.invalidate_structure()
        return output

    @classmethod
    def from_gates(
        cls,
        name: str,
        inputs: Sequence[str],
        gates: Sequence[Tuple[str, str, Sequence[str], str]],
        outputs: Sequence[Tuple[str, str]] = (),
    ) -> "Netlist":
        """Bulk-construct a netlist from name-level gate descriptions.

        The fast path behind the Verilog reader: one
        :meth:`building` block, two linear passes, no per-gate cache
        invalidation.  ``gates`` entries are ``(cell_name, instance,
        input_net_names, output_net_name)`` in final gate-index order;
        ``outputs`` entries are ``(net_name, port_name)``.

        Sequential cells' output nets are created up front (in gate
        order) so combinational logic and flop data pins may reference
        state nets regardless of position; combinational gates create
        their own output net and must therefore appear after the gates
        driving their inputs (topological order for the combinational
        core).  DFFE feedback pins are wired automatically and must be
        omitted from ``input_net_names``.
        """
        netlist = cls(name)
        with netlist.building():
            for input_name in inputs:
                netlist.add_input(input_name)
            for cell_name, _, _, output_name in gates:
                if get_cell(cell_name).sequential:
                    netlist._new_net(output_name)
            for cell_name, instance, input_names, output_name in gates:
                input_nets = [netlist.net_index(n) for n in input_names]
                if get_cell(cell_name).sequential:
                    netlist.attach_gate(
                        cell_name, input_nets,
                        netlist.net_index(output_name), instance,
                    )
                else:
                    netlist.add_gate(
                        cell_name, input_nets, instance=instance,
                        output_name=output_name,
                    )
            for net_name, port in outputs:
                netlist.add_output(netlist.net_index(net_name), port)
        return netlist

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.nets):
            raise NetlistError(f"net index {net} out of range")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_inputs(self) -> int:
        return len(self._input_net_list())

    @property
    def n_outputs(self) -> int:
        return len(self.primary_outputs)

    def net_index(self, name: str) -> int:
        """Net index for ``name``; raises NetlistError when unknown."""
        try:
            return self._net_by_name[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r}") from None

    def gate_by_instance(self, instance: str) -> Gate:
        """Gate for instance name; raises NetlistError when unknown."""
        try:
            return self.gates[self._gate_by_instance[instance]]
        except KeyError:
            raise NetlistError(f"unknown instance {instance!r}") from None

    def gate_by_node_name(self, node_name: str) -> Gate:
        """Gate for a canonical ``{CELL}_{instance}`` node name."""
        cell_name, _, instance = node_name.partition("_")
        gate = self.gate_by_instance(instance)
        if gate.cell.name != cell_name:
            raise NetlistError(
                f"node {node_name!r} names cell {cell_name}, but instance "
                f"{instance} is a {gate.cell.name}"
            )
        return gate

    def _input_net_list(self) -> List[int]:
        """The cached primary-input net list (internal, not a copy).

        Cached because simulators and feature extractors call
        :meth:`input_nets`/:attr:`n_inputs` repeatedly and a fresh
        O(n_nets) scan per call dominates on large designs; dropped by
        :meth:`invalidate_structure` (every net creation and driver
        assignment goes through a path that calls it).
        """
        self._flush_dirty()
        if self._input_nets_cache is None:
            self._input_nets_cache = [
                net.index for net in self.nets if net.is_primary_input
            ]
        return self._input_nets_cache

    def input_nets(self) -> List[int]:
        """Primary-input net indices in declaration order."""
        return list(self._input_net_list())

    def input_names(self) -> List[str]:
        """Primary-input net names in declaration order."""
        return [self.nets[net].name for net in self._input_net_list()]

    def output_names(self) -> List[str]:
        """Primary-output port names in declaration order."""
        return [name for _, name in self.primary_outputs]

    def sequential_gates(self) -> List[Gate]:
        """All flip-flop gates."""
        return [gate for gate in self.gates if gate.is_sequential]

    def combinational_gates(self) -> List[Gate]:
        """All non-flip-flop gates."""
        return [gate for gate in self.gates if not gate.is_sequential]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {self.n_gates} gates, "
            f"{self.n_nets} nets, {self.n_inputs} PIs, "
            f"{self.n_outputs} POs)"
        )

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------
    def gate_arrays(self) -> GateArrays:
        """Cached flat attribute arrays (see :class:`GateArrays`).

        Built in one linear pass per structural state and dropped by
        :meth:`invalidate_structure`; the vectorized adjacency,
        levelization, edge, and feature paths all read these instead of
        walking the Python object graph.
        """
        self._flush_dirty()
        if self._arrays_cache is not None:
            return self._arrays_cache

        n_gates, n_nets = self.n_gates, self.n_nets
        sequential: List[bool] = []
        inverting: List[bool] = []
        output_net: List[int] = []
        wired_inputs: List[int] = []
        input_indptr = np.zeros(n_gates + 1, dtype=np.int64)
        input_flat: List[int] = []
        for gate in self.gates:
            cell = gate.cell
            sequential.append(cell.sequential)
            inverting.append(cell.inverting)
            output_net.append(gate.output)
            wired_inputs.append(
                len(gate.inputs) - (1 if cell.name in FEEDBACK_PORTS else 0)
            )
            input_flat.extend(gate.inputs)
            input_indptr[gate.index + 1] = len(input_flat)

        net_driver = np.full(n_nets, -1, dtype=np.int64)
        sink_indptr = np.zeros(n_nets + 1, dtype=np.int64)
        sink_flat: List[int] = []
        for net in self.nets:
            if net.driver is not None:
                net_driver[net.index] = net.driver
            sink_flat.extend(sink_gate for sink_gate, _ in net.sinks)
            sink_indptr[net.index + 1] = len(sink_flat)

        self._arrays_cache = GateArrays(
            sequential=np.asarray(sequential, dtype=bool),
            inverting=np.asarray(inverting, dtype=bool),
            output_net=np.asarray(output_net, dtype=np.int64),
            wired_inputs=np.asarray(wired_inputs, dtype=np.int64),
            input_indptr=input_indptr,
            input_nets=np.asarray(input_flat, dtype=np.int64),
            net_driver=net_driver,
            sink_indptr=sink_indptr,
            sink_gates=np.asarray(sink_flat, dtype=np.int64),
        )
        return self._arrays_cache

    def levelize(self) -> List[int]:
        """Topological level per gate.

        Flip-flops sit at level 0 (their outputs behave like primary
        inputs within a cycle); a combinational gate with combinational
        drivers sits one level above the deepest of them, and a gate
        fed only by primary inputs or flops sits at level 0.  Raises
        :class:`NetlistError` on a combinational loop.

        Computed as a level-synchronous Kahn frontier BFS over the
        cached CSR arrays — O(V+E) with vectorized per-level work, so
        deep combinational chains levelize in linear time.
        """
        self._flush_dirty()
        if self._levels_cache is not None:
            return list(self._levels_cache)

        n_gates = self.n_gates
        arrays = self.gate_arrays()
        combinational = ~arrays.sequential

        # Pending count per gate: input pins of combinational gates
        # whose driver is a combinational gate (duplicate connections
        # count once per pin, matching one decrement per sink entry).
        pin_gate = np.repeat(
            np.arange(n_gates, dtype=np.int64),
            np.diff(arrays.input_indptr),
        )
        pin_driver = arrays.net_driver[arrays.input_nets]
        driven = pin_driver >= 0
        contributes = np.zeros(pin_gate.shape, dtype=bool)
        contributes[driven] = (
            combinational[pin_driver[driven]]
            & combinational[pin_gate[driven]]
        )
        pending = np.bincount(
            pin_gate[contributes], minlength=n_gates
        ).astype(np.int64)

        levels = np.zeros(n_gates, dtype=np.int64)
        done = arrays.sequential.copy()
        frontier = np.flatnonzero(combinational & (pending == 0))
        done[frontier] = True
        level = 0
        while frontier.size:
            # One decrement per sink connection of the frontier's
            # output nets; newly-exhausted gates sit one level deeper.
            sinks = arrays.sink_rows(arrays.output_net[frontier])
            if sinks.size:
                sinks = sinks[combinational[sinks]]
            decrement = np.bincount(sinks, minlength=n_gates)
            pending -= decrement
            newly = np.flatnonzero(
                (decrement > 0) & (pending == 0) & ~done
            )
            level += 1
            levels[newly] = level
            done[newly] = True
            frontier = newly

        if not bool(done.all()):
            stuck = [
                self.gates[i].node_name
                for i in np.flatnonzero(~done)
            ]
            raise NetlistError(
                f"combinational loop involving gates: {stuck[:8]}"
            )
        self._levels_cache = levels.tolist()
        return list(self._levels_cache)

    def topological_order(self) -> List[int]:
        """Gate indices sorted so combinational drivers precede sinks."""
        levels = np.asarray(self.levelize(), dtype=np.int64)
        order = np.lexsort(
            (np.arange(self.n_gates, dtype=np.int64), levels)
        )
        return order.tolist()

    def depth(self) -> int:
        """Maximum combinational level in the design."""
        levels = self.levelize()
        return max(levels) if levels else 0

    def gate_adjacency(self) -> GateAdjacency:
        """Cached CSR fanin/fanout gate adjacency.

        Built once per structural state and dropped by
        :meth:`invalidate_structure`; all hot connectivity paths
        (feature extraction, cone BFS, graph construction) share it
        instead of re-scanning Python sink lists per call.
        """
        self._flush_dirty()
        if self._adjacency_cache is not None:
            return self._adjacency_cache

        n = self.n_gates
        arrays = self.gate_arrays()

        # Fanin: one candidate edge per wired input pin, in port order;
        # drop undriven pins and self-loops (DFFE feedback), then dedup
        # keeping first appearance per gate.
        pin_gate = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(arrays.input_indptr)
        )
        pin_driver = arrays.net_driver[arrays.input_nets]
        keep = (pin_driver >= 0) & (pin_driver != pin_gate)
        fanin_indptr, fanin_indices = _dedup_rows(
            pin_gate[keep], pin_driver[keep], n
        )
        fanin_connections = arrays.wired_inputs.copy()

        # Fanout: one candidate edge per sink connection of each gate's
        # output net, in sink-list order (rewiring can reorder sink
        # lists, so CSR order must follow the lists, not gate index).
        sink_counts = np.diff(arrays.sink_indptr)
        out_rows = np.repeat(
            np.arange(n, dtype=np.int64), sink_counts[arrays.output_net]
        )
        out_sinks = arrays.sink_rows(arrays.output_net)
        keep = out_sinks != out_rows
        po_ports = np.zeros(self.n_nets, dtype=np.int64)
        if self.primary_outputs:
            po_nets = np.asarray(
                [net for net, _ in self.primary_outputs], dtype=np.int64
            )
            po_ports = np.bincount(
                po_nets, minlength=self.n_nets
            ).astype(np.int64)
        fanout_connections = (
            np.bincount(out_rows[keep], minlength=n).astype(np.int64)
            + po_ports[arrays.output_net]
        )
        fanout_indptr, fanout_indices = _dedup_rows(
            out_rows[keep], out_sinks[keep], n
        )
        self._adjacency_cache = GateAdjacency(
            fanout_indptr=fanout_indptr,
            fanout_indices=fanout_indices,
            fanin_indptr=fanin_indptr,
            fanin_indices=fanin_indices,
            fanin_connections=fanin_connections,
            fanout_connections=fanout_connections,
        )
        return self._adjacency_cache

    def fanin_count(self, gate: Gate) -> int:
        """Number of wired input connections of ``gate`` (feedback port
        of DFFE excluded, matching what a designer would count)."""
        feedback = FEEDBACK_PORTS.get(gate.cell.name)
        n = len(gate.inputs)
        return n - 1 if feedback else n

    def fanout_count(self, gate: Gate) -> int:
        """Number of sink connections on the gate's output net, plus one
        per primary-output port it drives.  Self-feedback (DFFE) is not
        counted."""
        return int(
            self.gate_adjacency().fanout_connections[gate.index]
        )

    def fanout_gates(self, gate: Gate) -> List[int]:
        """Indices of distinct gates reading ``gate``'s output."""
        return self.gate_adjacency().fanout_row(gate.index).tolist()

    def fanin_gates(self, gate: Gate) -> List[int]:
        """Indices of distinct gates driving ``gate``'s inputs."""
        return self.gate_adjacency().fanin_row(gate.index).tolist()

    def node_names(self) -> List[str]:
        """Canonical node names for all gates, in gate-index order."""
        return [gate.node_name for gate in self.gates]
