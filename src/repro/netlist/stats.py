"""Netlist statistics used in experiment reports.

The paper characterizes each evaluation design by its "design
complexity"; :func:`summarize` produces the equivalent profile: gate
and net counts, sequential depth, cell-type histogram, fanout
distribution, and estimated area.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.netlist.netlist import Netlist


@dataclass
class NetlistStats:
    """Aggregate structural profile of one design."""

    name: str
    n_gates: int
    n_nets: int
    n_inputs: int
    n_outputs: int
    n_flops: int
    depth: int
    area: float
    cell_histogram: Dict[str, int] = field(default_factory=dict)
    mean_fanout: float = 0.0
    max_fanout: int = 0
    mean_fanin: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "design": self.name,
            "gates": self.n_gates,
            "nets": self.n_nets,
            "PIs": self.n_inputs,
            "POs": self.n_outputs,
            "flops": self.n_flops,
            "depth": self.depth,
            "area": round(self.area, 1),
            "mean fanout": round(self.mean_fanout, 2),
            "max fanout": self.max_fanout,
        }


def summarize(netlist: Netlist) -> NetlistStats:
    """Compute a :class:`NetlistStats` profile for ``netlist``."""
    histogram = Counter(gate.cell.name for gate in netlist.gates)
    fanouts = [netlist.fanout_count(gate) for gate in netlist.gates]
    fanins = [netlist.fanin_count(gate) for gate in netlist.gates]
    return NetlistStats(
        name=netlist.name,
        n_gates=netlist.n_gates,
        n_nets=netlist.n_nets,
        n_inputs=netlist.n_inputs,
        n_outputs=netlist.n_outputs,
        n_flops=len(netlist.sequential_gates()),
        depth=netlist.depth(),
        area=float(sum(gate.cell.area for gate in netlist.gates)),
        cell_histogram=dict(sorted(histogram.items())),
        mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
        max_fanout=int(max(fanouts)) if fanouts else 0,
        mean_fanin=float(np.mean(fanins)) if fanins else 0.0,
    )
