"""Netlist structural validation.

``validate(netlist)`` raises :class:`~repro.utils.errors.NetlistError`
describing every rule the design violates; ``check(netlist)`` returns
the list of violations without raising, for use in reporting flows.

Rules enforced:

* every net is driven by exactly one source (PI or gate output);
* every net is read by at least one sink or exported as a primary
  output (no dangling logic);
* primary outputs reference existing nets;
* the combinational core is acyclic (feedback only through flip-flops);
* every gate instantiates a known library cell with correct arity.
"""

from __future__ import annotations

from typing import List

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError


def check(netlist: Netlist) -> List[str]:
    """Return a list of human-readable violations (empty when clean)."""
    problems: List[str] = []

    driven_by: dict = {}
    for gate in netlist.gates:
        if gate.output in driven_by:
            problems.append(
                f"net {netlist.nets[gate.output].name!r} driven by both "
                f"{netlist.gates[driven_by[gate.output]].node_name} and "
                f"{gate.node_name}"
            )
        driven_by[gate.output] = gate.index
        if len(gate.inputs) != gate.cell.n_inputs:
            problems.append(
                f"gate {gate.node_name} wires {len(gate.inputs)} inputs "
                f"to a {gate.cell.n_inputs}-input {gate.cell.name}"
            )

    exported = {net for net, _ in netlist.primary_outputs}
    for net in netlist.nets:
        if net.driver is None and net.index in driven_by:
            problems.append(
                f"net {net.name!r} is a primary input but also gate-driven"
            )
        if not net.sinks and net.index not in exported:
            problems.append(f"net {net.name!r} is dangling (no sink, no PO)")

    for net_index, port in netlist.primary_outputs:
        if not 0 <= net_index < netlist.n_nets:
            problems.append(f"primary output {port!r} references a bad net")

    try:
        netlist.levelize()
    except NetlistError as error:
        problems.append(str(error))

    return problems


def validate(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` listing all violations, if any."""
    problems = check(netlist)
    if problems:
        raise NetlistError(
            f"netlist {netlist.name!r} failed validation:\n  "
            + "\n  ".join(problems)
        )
