"""Generic standard-cell library.

The library models the cell set that appears in the paper's evaluation
(Table 2 names nodes such as ``ND2_U393``, ``AO3_U373``, ``IV_U112``,
``NR4_U129``): inverters/buffers, 2-4 input AND/NAND/OR/NOR, XOR/XNOR,
a 2:1 mux, AND-OR-INVERT / OR-AND-INVERT complex cells, tie cells, and
D flip-flops (plain, with synchronous reset, and with enable).

Every cell's logic is a pure bitwise function so the same definition
drives the scalar reference simulator (operating on Python ints with
``ones == 1``) and the 64-way bit-parallel simulator (operating on
``numpy.uint64`` words with ``ones == 0xFFFF...F``).  Inversion is
expressed as ``x ^ ones`` rather than ``~x`` so Python ints never go
negative.

Sequential cells are modeled uniformly: their function computes the
*next state* from the input values; the simulator owns the state
register and exposes the current state as the cell's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, Sequence, Tuple

from repro.utils.errors import NetlistError

# A cell function maps (input_words, ones_mask) -> output_word.  Inputs
# arrive in declared port order.
CellFunction = Callable[[Sequence[object], object], object]

# Memoized truth tables, keyed by the (frozen, hashable) cell itself.
_TRUTH_TABLE_CACHE: Dict["Cell", Tuple] = {}


@dataclass(frozen=True)
class Cell:
    """Immutable description of one library cell.

    Attributes:
        name: Library name, e.g. ``"ND2"``.
        ports: Input port names in positional order.
        function: Bitwise evaluation function (next-state for flops).
        inverting: True when the cell logically negates (the paper's
            "Boolean tag, if gate negates logic" feature).
        sequential: True for state elements (D flip-flops).
        area: Relative area estimate in gate-equivalents, used only by
            netlist statistics.
        description: Human-readable summary.
    """

    name: str
    ports: Tuple[str, ...]
    function: CellFunction
    inverting: bool = False
    sequential: bool = False
    area: float = 1.0
    description: str = ""

    @property
    def n_inputs(self) -> int:
        """Number of input ports."""
        return len(self.ports)

    def evaluate(self, inputs: Sequence[object], ones: object = 1) -> object:
        """Evaluate the cell on bitwise input words.

        For sequential cells this returns the *next state*.
        """
        if len(inputs) != self.n_inputs:
            raise NetlistError(
                f"cell {self.name} expects {self.n_inputs} inputs, "
                f"got {len(inputs)}"
            )
        return self.function(inputs, ones)

    def truth_table(self) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
        """Enumerate the full truth table as ((inputs...), output) rows.

        Only meaningful for combinational cells with at least one input;
        used by analytic signal-probability propagation.  Memoized per
        cell: probability propagation calls this once per gate per
        fixpoint iteration, so recomputing 2^n rows each time dominated
        large-design feature extraction.
        """
        cached = _TRUTH_TABLE_CACHE.get(self)
        if cached is None:
            rows = []
            for bits in product((0, 1), repeat=self.n_inputs):
                rows.append((bits, int(self.function(bits, 1)) & 1))
            cached = tuple(rows)
            _TRUTH_TABLE_CACHE[self] = cached
        return cached

    def output_probability(self, input_probabilities: Sequence[float]) -> float:
        """P(output == 1) given independent P(input_i == 1) values.

        Computed exactly from the truth table (cells have at most four
        inputs, so at most 16 minterms).
        """
        if len(input_probabilities) != self.n_inputs:
            raise NetlistError(
                f"cell {self.name} expects {self.n_inputs} probabilities, "
                f"got {len(input_probabilities)}"
            )
        total = 0.0
        for bits, out in self.truth_table():
            if not out:
                continue
            term = 1.0
            for bit, probability in zip(bits, input_probabilities):
                term *= probability if bit else (1.0 - probability)
            total += term
        # Minterm accumulation can overshoot 1.0 by an ulp (e.g. ND4
        # with mixed 0/irrational inputs); the true value is a
        # probability, so clamp the rounding error away.
        return min(1.0, max(0.0, total))


def _ports(count: int) -> Tuple[str, ...]:
    return tuple(f"A{index}" for index in range(count))


def _and(values: Sequence[object]) -> object:
    out = values[0]
    for value in values[1:]:
        out = out & value
    return out


def _or(values: Sequence[object]) -> object:
    out = values[0]
    for value in values[1:]:
        out = out | value
    return out


def _build_library() -> Dict[str, Cell]:
    cells: Dict[str, Cell] = {}

    def add(cell: Cell) -> None:
        if cell.name in cells:
            raise NetlistError(f"duplicate cell {cell.name}")
        cells[cell.name] = cell

    add(Cell("IV", _ports(1), lambda v, ones: v[0] ^ ones,
             inverting=True, area=0.7, description="inverter"))
    add(Cell("BUF", _ports(1), lambda v, ones: v[0],
             area=1.0, description="buffer"))

    for width in (2, 3, 4):
        add(Cell(f"AN{width}", _ports(width),
                 lambda v, ones: _and(v),
                 area=1.0 + 0.3 * width, description=f"{width}-input AND"))
        add(Cell(f"ND{width}", _ports(width),
                 lambda v, ones: _and(v) ^ ones,
                 inverting=True, area=0.8 + 0.3 * width,
                 description=f"{width}-input NAND"))
        add(Cell(f"OR{width}", _ports(width),
                 lambda v, ones: _or(v),
                 area=1.0 + 0.3 * width, description=f"{width}-input OR"))
        add(Cell(f"NR{width}", _ports(width),
                 lambda v, ones: _or(v) ^ ones,
                 inverting=True, area=0.8 + 0.3 * width,
                 description=f"{width}-input NOR"))

    add(Cell("XOR2", _ports(2), lambda v, ones: v[0] ^ v[1],
             area=2.0, description="2-input XOR"))
    add(Cell("XNR2", _ports(2), lambda v, ones: (v[0] ^ v[1]) ^ ones,
             inverting=True, area=2.0, description="2-input XNOR"))

    # MUX2 ports: (A, B, S) -> S ? B : A
    add(Cell("MUX2", ("A", "B", "S"),
             lambda v, ones: (v[0] & (v[2] ^ ones)) | (v[1] & v[2]),
             area=2.2, description="2:1 multiplexer"))

    # Complex AOI/OAI cells, named after the compact LSI-style convention
    # the paper's Table 2 uses (AO2, AO3).
    add(Cell("AO2", _ports(4),
             lambda v, ones: ((v[0] & v[1]) | (v[2] & v[3])) ^ ones,
             inverting=True, area=2.0,
             description="2x2 AND-OR-INVERT: ~((A0&A1)|(A2&A3))"))
    add(Cell("AO3", _ports(3),
             lambda v, ones: ((v[0] & v[1]) | v[2]) ^ ones,
             inverting=True, area=1.6,
             description="2-1 AND-OR-INVERT: ~((A0&A1)|A2)"))
    add(Cell("OA2", _ports(4),
             lambda v, ones: ((v[0] | v[1]) & (v[2] | v[3])) ^ ones,
             inverting=True, area=2.0,
             description="2x2 OR-AND-INVERT: ~((A0|A1)&(A2|A3))"))
    add(Cell("OA3", _ports(3),
             lambda v, ones: ((v[0] | v[1]) & v[2]) ^ ones,
             inverting=True, area=1.6,
             description="2-1 OR-AND-INVERT: ~((A0|A1)&A2)"))

    add(Cell("TIE0", (), lambda v, ones: ones ^ ones,
             area=0.3, description="constant 0"))
    add(Cell("TIE1", (), lambda v, ones: ones,
             area=0.3, description="constant 1"))

    # Sequential cells compute next-state; output is the registered state.
    add(Cell("DFF", ("D",), lambda v, ones: v[0],
             sequential=True, area=4.0, description="D flip-flop"))
    add(Cell("DFFR", ("D", "R"),
             lambda v, ones: v[0] & (v[1] ^ ones),
             sequential=True, area=4.5,
             description="D flip-flop with synchronous reset (R=1 -> 0)"))
    add(Cell("DFFE", ("D", "E", "QFB"),
             lambda v, ones: (v[0] & v[1]) | (v[2] & (v[1] ^ ones)),
             sequential=True, area=5.0,
             description="D flip-flop with enable; port QFB is the fed-back "
                         "current state, wired automatically by Netlist"))
    return cells


LIBRARY: Dict[str, Cell] = _build_library()

#: Cells whose output feeds back their own state (the builder must wire
#: the flop's output net to this input port).
FEEDBACK_PORTS: Dict[str, str] = {"DFFE": "QFB"}


def get_cell(name: str) -> Cell:
    """Look up a cell by library name, raising NetlistError if unknown."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise NetlistError(
            f"unknown cell {name!r}; known cells: {sorted(LIBRARY)}"
        ) from None


def combinational_cells() -> Tuple[str, ...]:
    """Names of all combinational (non-sequential, non-tie) cells."""
    return tuple(
        name for name, cell in LIBRARY.items()
        if not cell.sequential and cell.n_inputs > 0
    )


def sequential_cells() -> Tuple[str, ...]:
    """Names of all sequential cells."""
    return tuple(name for name, cell in LIBRARY.items() if cell.sequential)
