"""Finite-state-machine synthesis.

The two OR1200 modules and the SDRAM controller are control-dominated
designs; this module provides the synthesis path from a symbolic FSM
specification (states, guarded transitions, Moore/Mealy outputs) to
gates, supporting both one-hot and binary state encodings.

Transition guards are boolean expressions over the FSM's condition
inputs, written in a tiny Verilog-like language::

    req & ~refresh_due | timeout

with operators ``~`` (not), ``&`` (and), ``|`` (or) and parentheses.
Guards declared earlier on the same source state take priority, exactly
like an RTL ``if/else if`` chain, so later guards need not be mutually
exclusive with earlier ones.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.builder import Bus, CircuitBuilder
from repro.utils.errors import NetlistError


# ----------------------------------------------------------------------
# guard expression parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*|[~&|()])")


class _Parser:
    """Recursive-descent parser building gates for a guard expression."""

    def __init__(self, text: str, builder: CircuitBuilder,
                 signals: Dict[str, int]):
        self.tokens = self._tokenize(text)
        self.position = 0
        self.builder = builder
        self.signals = signals
        self.text = text

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if not match:
                if text[position:].strip():
                    raise NetlistError(
                        f"bad guard syntax near {text[position:]!r}"
                    )
                break
            tokens.append(match.group(1))
            position = match.end()
        return tokens

    def _peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise NetlistError(f"unexpected end of guard {self.text!r}")
        self.position += 1
        return token

    def parse(self) -> int:
        net = self._expr()
        if self._peek() is not None:
            raise NetlistError(
                f"trailing tokens in guard {self.text!r}: {self._peek()!r}"
            )
        return net

    def _expr(self) -> int:
        terms = [self._term()]
        while self._peek() == "|":
            self._take()
            terms.append(self._term())
        return self.builder.or_(*terms) if len(terms) > 1 else terms[0]

    def _term(self) -> int:
        factors = [self._factor()]
        while self._peek() == "&":
            self._take()
            factors.append(self._factor())
        return (
            self.builder.and_(*factors) if len(factors) > 1 else factors[0]
        )

    def _factor(self) -> int:
        token = self._take()
        if token == "~":
            return self.builder.not_(self._factor())
        if token == "(":
            net = self._expr()
            if self._take() != ")":
                raise NetlistError(f"missing ')' in guard {self.text!r}")
            return net
        if token in self.signals:
            return self.signals[token]
        raise NetlistError(
            f"unknown signal {token!r} in guard {self.text!r}; "
            f"known: {sorted(self.signals)}"
        )


def parse_guard(text: str, builder: CircuitBuilder,
                signals: Dict[str, int]) -> int:
    """Elaborate guard expression ``text`` into gates; returns the net."""
    return _Parser(text, builder, signals).parse()


# ----------------------------------------------------------------------
# FSM specification
# ----------------------------------------------------------------------
@dataclass
class _Transition:
    source: str
    destination: str
    guard: Optional[str]  # None = default ("otherwise") transition


@dataclass
class FsmSpec:
    """Symbolic FSM description.

    >>> spec = FsmSpec("demo", states=["IDLE", "RUN"], reset_state="IDLE")
    >>> spec.transition("IDLE", "RUN", when="go")
    >>> spec.transition("RUN", "IDLE", when="done")
    >>> spec.moore_output("busy", states=["RUN"])
    """

    name: str
    states: List[str]
    reset_state: str
    transitions: List[_Transition] = field(default_factory=list)
    moore_outputs: Dict[str, List[str]] = field(default_factory=dict)
    mealy_outputs: Dict[str, List[Tuple[str, str]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if len(set(self.states)) != len(self.states):
            raise NetlistError(f"FSM {self.name}: duplicate state names")
        if self.reset_state not in self.states:
            raise NetlistError(
                f"FSM {self.name}: reset state {self.reset_state!r} "
                "not in state list"
            )

    def _check_state(self, state: str) -> None:
        if state not in self.states:
            raise NetlistError(
                f"FSM {self.name}: unknown state {state!r}"
            )

    def transition(self, source: str, destination: str,
                   when: Optional[str] = None) -> None:
        """Add a guarded transition.

        ``when=None`` marks the default transition taken when no guard
        on ``source`` matches.  Without a default, the FSM stays in
        ``source``.
        """
        self._check_state(source)
        self._check_state(destination)
        if when is None:
            defaults = [
                t for t in self.transitions
                if t.source == source and t.guard is None
            ]
            if defaults:
                raise NetlistError(
                    f"FSM {self.name}: state {source} already has a "
                    "default transition"
                )
        self.transitions.append(_Transition(source, destination, when))

    def moore_output(self, name: str, states: Sequence[str]) -> None:
        """Output asserted exactly in the listed states."""
        for state in states:
            self._check_state(state)
        self.moore_outputs[name] = list(states)

    def mealy_output(self, name: str,
                     terms: Sequence[Tuple[str, str]]) -> None:
        """Output asserted when (in state, guard true) for any term."""
        for state, _ in terms:
            self._check_state(state)
        self.mealy_outputs[name] = list(terms)


@dataclass
class FsmInstance:
    """Result of synthesizing an :class:`FsmSpec`.

    Attributes:
        state_bits: Current-state indicator net per state name (one-hot
            decoded view, valid for both encodings).
        outputs: Net per declared Moore/Mealy output.
        state_register: The raw state register nets (one-hot bits or
            binary code bits depending on encoding).
    """

    spec: FsmSpec
    state_bits: Dict[str, int]
    outputs: Dict[str, int]
    state_register: Bus


def synthesize_fsm(
    spec: FsmSpec,
    builder: CircuitBuilder,
    inputs: Dict[str, int],
    reset: int,
    encoding: str = "one-hot",
) -> FsmInstance:
    """Elaborate ``spec`` into gates inside ``builder``.

    Args:
        spec: The FSM description.
        builder: Target circuit builder.
        inputs: Condition signals visible to guards.
        reset: Synchronous reset net (restores ``spec.reset_state``).
        encoding: ``"one-hot"`` or ``"binary"``.

    Returns:
        An :class:`FsmInstance` with per-state indicator nets and outputs.
    """
    if encoding not in ("one-hot", "binary"):
        raise NetlistError(f"unknown FSM encoding {encoding!r}")

    n_states = len(spec.states)
    state_index = {state: i for i, state in enumerate(spec.states)}

    # --- current-state indicator nets (filled below per encoding) ------
    if encoding == "one-hot":
        current = _onehot_state_register_placeholder(builder, spec, reset)
    else:
        current = _binary_state_register_placeholder(builder, spec, reset)

    # The placeholder helpers return (indicator_nets, commit) where
    # commit(next_onehot) wires the next-state logic into the register.
    indicators, commit, register_bits = current

    # --- next-state one-hot computation --------------------------------
    # Per source state, apply guard priority: effective_i = g_i & ~g_<i.
    arriving: Dict[str, List[int]] = {state: [] for state in spec.states}
    for source in spec.states:
        outgoing = [t for t in spec.transitions if t.source == source]
        guarded = [t for t in outgoing if t.guard is not None]
        defaults = [t for t in outgoing if t.guard is None]
        source_net = indicators[source]

        blocked: Optional[int] = None  # OR of earlier guards
        guard_nets: List[int] = []
        for transition in guarded:
            raw = parse_guard(transition.guard, builder, inputs)
            effective = (
                raw if blocked is None
                else builder.and_(raw, builder.not_(blocked))
            )
            arriving[transition.destination].append(
                builder.and_(source_net, effective)
            )
            guard_nets.append(raw)
            blocked = raw if blocked is None else builder.or_(blocked, raw)

        otherwise_target = defaults[0].destination if defaults else source
        if blocked is None:
            arriving[otherwise_target].append(source_net)
        else:
            arriving[otherwise_target].append(
                builder.and_(source_net, builder.not_(blocked))
            )

    commit(arriving)

    # --- outputs --------------------------------------------------------
    outputs: Dict[str, int] = {}
    for name, states in spec.moore_outputs.items():
        nets = [indicators[state] for state in states]
        outputs[name] = builder.or_(*nets) if len(nets) > 1 else nets[0]
    for name, terms in spec.mealy_outputs.items():
        nets = [
            builder.and_(indicators[state],
                         parse_guard(guard, builder, inputs))
            for state, guard in terms
        ]
        outputs[name] = builder.or_(*nets) if len(nets) > 1 else nets[0]

    return FsmInstance(
        spec=spec,
        state_bits=dict(indicators),
        outputs=outputs,
        state_register=register_bits,
    )


def _onehot_state_register_placeholder(builder: CircuitBuilder,
                                       spec: FsmSpec, reset: int):
    """One-hot register built with forward-referenced next-state nets.

    Because flop inputs must exist before ``add_gate`` is called, the
    register is created by buffering placeholder nets; we instead build
    it in two steps using DFFE's feedback-free cousins: here we create
    the flops *after* next-state logic by returning a commit callback,
    and expose the *current* state via the flop output nets created in
    the callback.  To let guards reference the current state before the
    flops exist, indicator nets are pre-created as BUF-of-flop, which
    requires the flop net first — so instead we create one DFFR per
    state up front with a temporary constant input, then rewire.

    Simpler and loop-free: flop inputs are the next-state nets, which
    depend only on flop *outputs* — a legal sequential cycle.  We create
    the flops last; guards reference indicator nets that are plain
    forward declarations realized as the flop outputs via a two-phase
    build below.
    """
    # Phase 1: create the flops with dummy const inputs; indicator nets
    # are their outputs (inverted for the reset state so reset -> 1).
    dummy = reset  # temporary data pin, rewired by commit()
    flop_nets: List[int] = []
    indicators: Dict[str, int] = {}
    for state in spec.states:
        flop = builder.netlist.add_gate("DFFR", [dummy, reset])
        flop_nets.append(flop)
        if state == spec.reset_state:
            indicators[state] = builder.not_(flop)
        else:
            indicators[state] = flop

    def commit(arriving: Dict[str, List[int]]) -> None:
        for state, flop_net in zip(spec.states, flop_nets):
            terms = arriving[state]
            if not terms:
                # Unreachable state (no transition targets it): its
                # next value is constant 0.
                next_net = builder.const0()
            elif len(terms) > 1:
                next_net = builder.or_(*terms)
            else:
                next_net = terms[0]
            stored = (
                builder.not_(next_net)
                if state == spec.reset_state else next_net
            )
            _rewire_input(builder, flop_net, port_position=0, new_net=stored)

    return indicators, commit, flop_nets


def _binary_state_register_placeholder(builder: CircuitBuilder,
                                       spec: FsmSpec, reset: int):
    """Binary-encoded register; decode provides indicator nets.

    States are assigned codes ``1..n`` (code 0 is left illegal), so
    every state sets at least one code bit and every arriving-term gate
    is consumed by some next-code OR — no dead logic, and an all-zero
    register (e.g. a stuck-at fault on the state bits) is detectably
    outside the state set.
    """
    n_states = len(spec.states)
    width = max(1, n_states.bit_length())
    codes = {state: i + 1 for i, state in enumerate(spec.states)}
    reset_code = codes[spec.reset_state]

    dummy = reset  # temporary data pin, rewired by commit()
    flop_nets: List[int] = []
    code_bits: List[int] = []
    for bit in range(width):
        flop = builder.netlist.add_gate("DFFR", [dummy, reset])
        flop_nets.append(flop)
        # Invert storage for bits set in the reset code so that a reset
        # lands on the reset state's code.
        if (reset_code >> bit) & 1:
            code_bits.append(builder.not_(flop))
        else:
            code_bits.append(flop)

    indicators = {
        state: builder.equals_const(code_bits, codes[state])
        for state in spec.states
    }

    def commit(arriving: Dict[str, List[int]]) -> None:
        for bit in range(width):
            # Flatten arriving terms across all states whose code sets
            # this bit; no per-state intermediate OR is required.
            sources = [
                term
                for state in spec.states
                if (codes[state] >> bit) & 1
                for term in arriving[state]
            ]
            if sources:
                next_bit = (
                    builder.or_(*sources) if len(sources) > 1 else sources[0]
                )
            else:
                next_bit = builder.const0()
            stored = (
                builder.not_(next_bit)
                if (reset_code >> bit) & 1 else next_bit
            )
            _rewire_input(builder, flop_nets[bit], port_position=0,
                          new_net=stored)

    return indicators, commit, flop_nets


def _rewire_input(builder: CircuitBuilder, gate_output_net: int,
                  port_position: int, new_net: int) -> None:
    """Replace one input connection of the gate driving
    ``gate_output_net`` (used to patch forward-referenced flop data
    pins)."""
    netlist = builder.netlist
    gate_index = netlist.nets[gate_output_net].driver
    if gate_index is None:
        raise NetlistError("cannot rewire a primary input")
    gate = netlist.gates[gate_index]
    old_net = gate.inputs[port_position]
    netlist.nets[old_net].sinks.remove((gate_index, port_position))
    new_inputs = list(gate.inputs)
    new_inputs[port_position] = new_net
    gate.inputs = tuple(new_inputs)
    netlist.nets[new_net].sinks.append((gate_index, port_position))
    netlist.invalidate_structure()
