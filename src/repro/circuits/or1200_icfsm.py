"""OR1200 instruction-cache FSM (ICFSM) module (evaluation case 3).

Functional re-implementation of the OR1200 instruction-cache control
state machine, upgraded to the 2-way set-associative configuration the
OR1200 supports: it sequences tag lookup across both ways, streams hits
back to the CPU, runs the 4-word burst line refill into the
least-recently-used way on a miss, maintains the per-set LRU state,
bypasses the cache for inhibited regions, and latches bus errors.
Alongside the raw FSM it contains the datapath slivers the controller
owns: the requested-address register, the burst word counter, the
per-way tag comparators, the per-set LRU array and the bus-address
multiplexer — "all the signals to a processor, data array, and the
primary memory", as the paper puts it.

Interface:
    reset            synchronous reset
    ic_en            cache enable
    cycstb           CPU fetch strobe
    ci               cache-inhibit for the current address
    addr_*           14-bit fetch address: {tag[7:0], set[3:0], word[1:0]}
    tag0_in_*        8-bit tag read from way 0 of the tag array
    tag0_v_in        way-0 valid bit
    tag1_in_*        8-bit tag read from way 1 of the tag array
    tag1_v_in        way-1 valid bit
    biudata_valid    bus-interface data-valid strobe
    biudata_err      bus-interface error strobe
    invalidate       flush request

Outputs: CPU ``ack``/``err``/``hit``, array controls ``tag_we0/1``,
``data_we``/``data_we0/1``, ``way_sel``, ``tag_v_out``, bus controls
``biu_req``, ``burst``, ``biu_adr_*``, and the ``refill_word_*``
counter.
"""

from __future__ import annotations

from repro.circuits.builder import CircuitBuilder
from repro.circuits.fsm import FsmSpec, _rewire_input, synthesize_fsm
from repro.circuits.library import up_counter
from repro.netlist.netlist import Netlist

WORD_BITS = 2
SET_BITS = 4
TAG_BITS = 8
ADDR_BITS = TAG_BITS + SET_BITS + WORD_BITS
N_SETS = 1 << SET_BITS
WORDS_PER_LINE = 1 << WORD_BITS

STATES = ["IDLE", "CFETCH", "LFETCH", "BFETCH", "ERRLOCK"]


def build_or1200_icfsm(encoding: str = "binary") -> Netlist:
    """Elaborate the instruction-cache FSM; returns the netlist."""
    builder = CircuitBuilder("or1200_icfsm")
    reset = builder.input("reset")
    ic_en = builder.input("ic_en")
    cycstb = builder.input("cycstb")
    ci = builder.input("ci")
    addr = builder.input_bus("addr", ADDR_BITS)
    tag0_in = builder.input_bus("tag0_in", TAG_BITS)
    tag0_v_in = builder.input("tag0_v_in")
    tag1_in = builder.input_bus("tag1_in", TAG_BITS)
    tag1_v_in = builder.input("tag1_v_in")
    biudata_valid = builder.input("biudata_valid")
    biudata_err = builder.input("biudata_err")
    invalidate = builder.input("invalidate")

    addr_tag = addr[ADDR_BITS - TAG_BITS:]

    # Per-way tag comparators.
    usable = builder.not_(invalidate)
    hit0 = builder.and_(builder.equals(tag0_in, addr_tag), tag0_v_in,
                        usable)
    hit1 = builder.and_(builder.equals(tag1_in, addr_tag), tag1_v_in,
                        usable)
    hit = builder.or_(hit0, hit1)
    miss = builder.not_(hit)

    # Deferred control nets patched to FSM state bits after synthesis.
    placeholder = reset  # temporary input, rewired below
    in_lfetch = builder.buf(placeholder)
    in_cfetch_entry = builder.buf(placeholder)
    ack_hit_deferred = builder.buf(placeholder)
    tag_we_deferred = builder.buf(placeholder)

    refill_ctr = up_counter(
        builder, WORD_BITS, reset,
        enable=builder.and_(in_lfetch, biudata_valid),
        clear=builder.not_(in_lfetch),
    )
    last_word = builder.and_(
        builder.equals_const(refill_ctr.value, WORDS_PER_LINE - 1),
        biudata_valid,
    )

    saved_addr = builder.register(addr, enable=in_cfetch_entry)
    saved_set = saved_addr[WORD_BITS:WORD_BITS + SET_BITS]

    # ------------------------------------------------------------------
    # Per-set LRU array: bit s points at the least-recently-used way of
    # set s (the refill victim).  A streaming hit marks the *other* way
    # LRU; completing a refill into the victim flips it.
    # ------------------------------------------------------------------
    set_select = builder.decode(saved_set)
    victim_terms = []
    lru_bits = []
    for index in range(N_SETS):
        flop = builder.netlist.add_gate("DFFR", [reset, reset])
        lru_bits.append(flop)
        victim_terms.append(builder.and_(set_select[index], flop))
    victim = builder.or_(*victim_terms)  # 1 = way 1 is the victim

    new_lru = builder.or_(
        builder.and_(ack_hit_deferred, hit0),           # way0 used -> LRU=1
        builder.and_(tag_we_deferred, builder.not_(victim)),
    )
    lru_update = builder.or_(ack_hit_deferred, tag_we_deferred)
    for index in range(N_SETS):
        enable = builder.and_(lru_update, set_select[index])
        held = builder.mux(enable, lru_bits[index], new_lru)
        _rewire_input(builder, lru_bits[index], 0, held)

    spec = FsmSpec("icfsm", states=STATES, reset_state="IDLE")
    spec.transition("IDLE", "CFETCH", when="ic_en & cycstb")
    spec.transition("CFETCH", "BFETCH", when="ci & cycstb")
    spec.transition("CFETCH", "IDLE", when="~cycstb")
    spec.transition("CFETCH", "LFETCH", when="miss")
    spec.transition("LFETCH", "ERRLOCK", when="biudata_err")
    spec.transition("LFETCH", "CFETCH", when="last_word")
    spec.transition("BFETCH", "ERRLOCK", when="biudata_err")
    spec.transition("BFETCH", "IDLE", when="biudata_valid")
    spec.transition("ERRLOCK", "IDLE", when="~cycstb")
    spec.moore_output("biu_req", states=["LFETCH", "BFETCH"])
    spec.moore_output("burst", states=["LFETCH"])
    spec.moore_output("err", states=["ERRLOCK"])

    fsm = synthesize_fsm(
        spec,
        builder,
        inputs={
            "ic_en": ic_en,
            "cycstb": cycstb,
            "ci": ci,
            "miss": miss,
            "last_word": last_word,
            "biudata_err": biudata_err,
            "biudata_valid": biudata_valid,
        },
        reset=reset,
        encoding=encoding,
    )
    state = fsm.state_bits

    _rewire_input(builder, in_lfetch, 0, state["LFETCH"])
    _rewire_input(
        builder, in_cfetch_entry, 0,
        builder.and_(
            cycstb,
            builder.or_(
                state["IDLE"],
                builder.and_(state["CFETCH"], hit),
            ),
        ),
    )

    # CPU acknowledge: streaming hit, refill delivering the requested
    # word (word counter equals the saved word offset), or an uncached
    # single fetch completing.
    requested_word = builder.equals(refill_ctr.value,
                                    saved_addr[:WORD_BITS])
    ack_hit = builder.and_(state["CFETCH"], hit, cycstb,
                           builder.not_(ci))
    ack_refill = builder.and_(state["LFETCH"], biudata_valid,
                              requested_word)
    ack_bypass = builder.and_(state["BFETCH"], biudata_valid)
    ack = builder.or_(ack_hit, ack_refill, ack_bypass)
    _rewire_input(builder, ack_hit_deferred, 0, ack_hit)

    # Array write controls, steered to the victim way during refill.
    data_we = builder.and_(state["LFETCH"], biudata_valid)
    tag_we = builder.and_(state["LFETCH"], last_word)
    _rewire_input(builder, tag_we_deferred, 0, tag_we)
    tag_we0 = builder.and_(tag_we, builder.not_(victim))
    tag_we1 = builder.and_(tag_we, victim)
    data_we0 = builder.and_(data_we, builder.not_(victim))
    data_we1 = builder.and_(data_we, victim)
    tag_v_out = builder.not_(invalidate)

    # Way select back to the data array: hit way while streaming, the
    # refill victim during a line fill.
    way_sel = builder.mux(state["LFETCH"], hit1, victim)

    # Bus address: saved line address with the word offset replaced by
    # the refill counter during a burst.
    biu_adr = list(saved_addr)
    for bit in range(WORD_BITS):
        biu_adr[bit] = builder.mux(state["LFETCH"], saved_addr[bit],
                                   refill_ctr.value[bit])

    builder.output(ack, "ack")
    builder.output(hit, "hit")
    builder.output(fsm.outputs["err"], "err")
    builder.output(fsm.outputs["biu_req"], "biu_req")
    builder.output(fsm.outputs["burst"], "burst")
    builder.output(data_we, "data_we")
    builder.output(data_we0, "data_we0")
    builder.output(data_we1, "data_we1")
    builder.output(tag_we0, "tag_we0")
    builder.output(tag_we1, "tag_we1")
    builder.output(way_sel, "way_sel")
    builder.output(tag_v_out, "tag_v_out")
    builder.output_bus(biu_adr, "biu_adr")
    builder.output_bus(refill_ctr.value, "refill_word")

    return builder.netlist
