"""Reusable word-level blocks built on :class:`CircuitBuilder`.

These are the datapath idioms the three evaluation designs share:
counters, down-counting timers, shift registers, and LFSRs.  Each block
returns the nets a caller needs to wire it into control logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuits.builder import Bus, CircuitBuilder
from repro.utils.errors import NetlistError


@dataclass
class CounterPorts:
    """Nets exposed by :func:`up_counter`."""

    value: Bus
    wrap: Optional[int]  # increment carry-out (None unless with_wrap)


def up_counter(
    builder: CircuitBuilder,
    width: int,
    reset: int,
    enable: Optional[int] = None,
    clear: Optional[int] = None,
    with_wrap: bool = False,
) -> CounterPorts:
    """Free-running (or enabled) up-counter with synchronous clear.

    Priority: reset > clear > enable.  The counter wraps modulo
    ``2**width``; with ``with_wrap=True`` the ``wrap`` net pulses on the
    overflow step (otherwise it is ``None`` and no carry gate is built).
    """
    if width < 1:
        raise NetlistError("counter width must be >= 1")
    # Two-phase build: create flops with dummy inputs, then wire the
    # increment of their outputs back in.
    dummy = reset  # temporary data pin, rewired below
    value: Bus = [
        builder.netlist.add_gate("DFFR", [dummy, reset]) for _ in range(width)
    ]
    incremented, wrap = builder.increment(value, enable, carry_out=with_wrap)
    next_value = incremented
    if clear is not None:
        zero = builder.constant(0, width)
        next_value = builder.bmux(clear, incremented, zero)
    from repro.circuits.fsm import _rewire_input

    for flop_net, data_net in zip(value, next_value):
        _rewire_input(builder, flop_net, port_position=0, new_net=data_net)
    return CounterPorts(value=value, wrap=wrap)


@dataclass
class TimerPorts:
    """Nets exposed by :func:`down_timer`."""

    value: Bus
    done: int  # high while the count sits at zero


def down_timer(
    builder: CircuitBuilder,
    width: int,
    load_value: int,
    load: int,
    reset: int,
) -> TimerPorts:
    """Down-counting timer: ``load`` reloads ``load_value``; the count
    then decrements to zero and holds; ``done`` is high at zero.

    Decrement is implemented as add-with-all-ones (two's complement -1).
    """
    if load_value >= (1 << width):
        raise NetlistError(
            f"load value {load_value} does not fit in {width} bits"
        )
    dummy = reset  # temporary data pin, rewired below
    value: Bus = [
        builder.netlist.add_gate("DFFR", [dummy, reset]) for _ in range(width)
    ]
    done = builder.is_zero(value)
    ones = builder.constant((1 << width) - 1, width)
    decremented, _ = builder.add(value, ones, carry_out=False)
    held = builder.bmux(done, decremented, value)
    loaded = builder.constant(load_value, width)
    next_value = builder.bmux(load, held, loaded)
    from repro.circuits.fsm import _rewire_input

    for flop_net, data_net in zip(value, next_value):
        _rewire_input(builder, flop_net, port_position=0, new_net=data_net)
    return TimerPorts(value=value, done=done)


def shift_register(
    builder: CircuitBuilder,
    serial_in: int,
    width: int,
    reset: int,
    enable: Optional[int] = None,
) -> Bus:
    """Serial-in shift register; index 0 is the most recent bit."""
    stages: Bus = []
    data = serial_in
    for _ in range(width):
        if enable is not None:
            gated = builder.and_(data, builder.not_(reset))
            load = builder.or_(enable, reset)
            stage = builder.dffe(gated, load)
        else:
            stage = builder.dffr(data, reset)
        stages.append(stage)
        data = stage
    return stages


def lfsr(
    builder: CircuitBuilder,
    width: int,
    taps: List[int],
    reset: int,
) -> Bus:
    """Fibonacci LFSR used by self-test workload circuits.

    Resets to the all-ones state (stored inverted so DFFR's reset-to-0
    lands on all-ones), guaranteeing a nonzero seed.
    """
    if any(tap >= width or tap < 0 for tap in taps):
        raise NetlistError(f"taps {taps} out of range for width {width}")
    dummy = reset  # temporary data pin, rewired below
    flops: Bus = [
        builder.netlist.add_gate("DFFR", [dummy, reset]) for _ in range(width)
    ]
    state = [builder.not_(flop) for flop in flops]  # inverted storage
    feedback = state[taps[0]]
    for tap in taps[1:]:
        feedback = builder.xor(feedback, state[tap])
    shifted = [feedback] + state[:-1]
    from repro.circuits.fsm import _rewire_input

    for flop_net, data_net in zip(flops, shifted):
        _rewire_input(builder, flop_net, port_position=0,
                      new_net=builder.not_(data_net))
    return state


@dataclass
class FifoPorts:
    """Nets exposed by :func:`fifo_controller`."""

    full: int
    empty: int
    count: Bus
    read_pointer: Bus
    write_pointer: Bus


def fifo_controller(
    builder: CircuitBuilder,
    depth_bits: int,
    write: int,
    read: int,
    reset: int,
) -> FifoPorts:
    """Synchronous FIFO *control* logic (pointers, counter, flags).

    Storage lives outside (a RAM macro in a real design); this block
    owns what a controller owns: gated read/write pointers, the
    occupancy counter, and full/empty flags.  Writes when full and
    reads when empty are ignored (safe interface).
    """
    if depth_bits < 1:
        raise NetlistError("FIFO depth must be at least 2 entries")
    from repro.circuits.fsm import _rewire_input

    # Occupancy counter: up on write-only, down on read-only.
    dummy = reset
    count: Bus = [
        builder.netlist.add_gate("DFFR", [dummy, reset])
        for _ in range(depth_bits + 1)
    ]
    empty = builder.is_zero(count)
    full = builder.equals_const(count, 1 << depth_bits)

    do_write = builder.and_(write, builder.not_(full))
    do_read = builder.and_(read, builder.not_(empty))
    write_only = builder.and_(do_write, builder.not_(do_read))
    read_only = builder.and_(do_read, builder.not_(do_write))

    incremented, _ = builder.increment(count, carry_out=False)
    ones = builder.constant((1 << (depth_bits + 1)) - 1,
                            depth_bits + 1)
    decremented, _ = builder.add(count, ones, carry_out=False)
    stepped = builder.bmux(read_only,
                           builder.bmux(write_only, count, incremented),
                           decremented)
    for flop, data in zip(count, stepped):
        _rewire_input(builder, flop, 0, data)

    def pointer(advance: int) -> Bus:
        flops: Bus = [
            builder.netlist.add_gate("DFFR", [dummy, reset])
            for _ in range(depth_bits)
        ]
        bumped, _ = builder.increment(flops, carry_out=False)
        held = builder.bmux(advance, flops, bumped)
        for flop, data in zip(flops, held):
            _rewire_input(builder, flop, 0, data)
        return flops

    return FifoPorts(
        full=full,
        empty=empty,
        count=count,
        read_pointer=pointer(do_read),
        write_pointer=pointer(do_write),
    )
