"""Random netlist generation for tests and robustness experiments.

Generates valid, acyclic-through-combinational-logic netlists with a
controllable mix of combinational and sequential cells.  Used by
property-based tests (simulator cross-checks, round-trip I/O) and by
scaling benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.netlist.cells import LIBRARY
from repro.netlist.netlist import Netlist
from repro.utils.rng import SeedLike, rng_from_seed

#: Combinational cells eligible for random instantiation, grouped by arity.
_COMBINATIONAL_CHOICES = [
    name
    for name, cell in LIBRARY.items()
    if not cell.sequential and cell.n_inputs >= 1
]


def random_netlist(
    n_inputs: int = 8,
    n_gates: int = 64,
    n_flops: int = 8,
    n_outputs: int = 6,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Netlist:
    """Generate a random, structurally valid sequential netlist.

    Flip-flops are created first with placeholder fanin and rewired to
    randomly chosen nets at the end, so state feedback loops occur
    naturally while the combinational core stays acyclic (each
    combinational gate only reads nets created before it).
    """
    rng = rng_from_seed(seed)
    netlist = Netlist(name or f"random_{n_gates}g")
    with netlist.building():
        return _populate(netlist, rng, n_inputs, n_gates, n_flops,
                         n_outputs)


def _populate(
    netlist: Netlist,
    rng,
    n_inputs: int,
    n_gates: int,
    n_flops: int,
    n_outputs: int,
) -> Netlist:
    available = [netlist.add_input(f"in_{i}") for i in range(n_inputs)]
    if not available:
        raise ValueError("random_netlist needs at least one input")

    reset = available[0]

    flop_outputs = []
    for index in range(n_flops):
        flop = netlist.add_gate(
            "DFFR", [available[0], reset], instance=f"R{index}"
        )
        flop_outputs.append(flop)
        available.append(flop)

    for index in range(n_gates):
        cell_name = _COMBINATIONAL_CHOICES[
            int(rng.integers(len(_COMBINATIONAL_CHOICES)))
        ]
        cell = LIBRARY[cell_name]
        inputs = [
            available[int(rng.integers(len(available)))]
            for _ in range(cell.n_inputs)
        ]
        available.append(
            netlist.add_gate(cell_name, inputs, instance=f"G{index}")
        )

    # Rewire flop data pins onto random nets (any net is legal).
    from repro.circuits.fsm import _rewire_input
    from repro.circuits.builder import CircuitBuilder

    shim = CircuitBuilder.__new__(CircuitBuilder)
    shim.netlist = netlist
    for flop in flop_outputs:
        target = available[int(rng.integers(len(available)))]
        _rewire_input(shim, flop, port_position=0, new_net=target)

    # Outputs: prefer the last-created nets so deep logic is observable.
    chosen = rng.choice(
        len(available), size=min(n_outputs, len(available)), replace=False
    )
    for position, net_position in enumerate(sorted(chosen)):
        netlist.add_output(available[net_position], f"out_{position}")

    # Guarantee no dangling nets: any net without sinks becomes a PO.
    exported = {net for net, _ in netlist.primary_outputs}
    extra = 0
    for net in netlist.nets:
        if not net.sinks and net.index not in exported:
            netlist.add_output(net.index, f"aux_out_{extra}")
            extra += 1
    return netlist
