"""Parameterized FSM×datapath grid families.

Large synthetic designs for scaling the design corpus and for
benchmarking the ingestion front end: a ``rows × cols`` grid of tiles,
each combining a small control block with a ``width``-bit datapath
(adder, xor/mux network, accumulator register).  Data flows east along
each row and control flows south along each column, so the grid is one
connected sequential design with deep combinational paths — the same
shape as a flattened synthesized SoC block, at whatever size the
caller asks for.

Tile logic varies deterministically with ``(row, col, seed)``: state
encodings alternate by tile parity and predicate constants are drawn
from a seeded RNG, so two grids with the same parameters are identical
netlists and different seeds give structurally different family
members.

At the default ``width=8`` a tile elaborates to roughly 115 gates;
``build_fsm_grid(32, 32)`` is a ~100k-gate design.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.circuits.builder import Bus, CircuitBuilder
from repro.netlist.netlist import Netlist

N_STATES = 4


def _tile(
    builder: CircuitBuilder,
    row: int,
    col: int,
    rst: int,
    west: Bus,
    north: int,
    rng: random.Random,
) -> Tuple[Bus, int]:
    """Elaborate one tile; returns ``(east_bus, south_net)``."""
    width = len(west)
    tag = f"t{row}_{col}"

    # Control: fire when the north neighbour raises its flag or the
    # west word matches this tile's (seeded) magic constant.
    sel_width = max(2, width // 2)
    predicate = builder.equals_const(
        west[:sel_width], rng.randrange(1 << sel_width)
    )
    advance = builder.and_(builder.or_(north, predicate),
                           builder.not_(rst))

    if (row + col) % 2 == 0:
        # One-hot-style control: four enable-held state bits, each
        # sampling a different mix of the west word.
        state: Bus = [
            builder.dffe(
                builder.xor(west[i % width], west[(i + 1) % width]),
                advance,
                instance=f"{tag}_st{i}",
            )
            for i in range(N_STATES)
        ]
        active = builder.aoi22(state[0], state[1], state[2], state[3])
    else:
        # Binary-encoded control: two reset flops plus an incrementer.
        state = [
            builder.dffr(west[i % width], rst, instance=f"{tag}_st{i}")
            for i in range(2)
        ]
        nxt, _ = builder.increment(state, enable=advance, carry_out=False)
        active = builder.xor(nxt[0], nxt[1])

    # Datapath: adder + xor/mux folding network + accumulator register.
    total, carry = builder.add(
        west, [builder.xor(w, active) for w in west]
    )
    folded = builder.bmux(active, total, builder.bxor(west, total))
    acc = builder.register(folded, reset=rst, enable=advance)

    east = [
        builder.xor(a, builder.mux(active, w, t))
        for a, w, t in zip(acc, west, total)
    ]
    south = builder.or_(
        carry, builder.and_(active, state[0], state[1])
    )
    return east, south


def build_fsm_grid(
    rows: int,
    cols: int,
    width: int = 8,
    seed: int = 0,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``rows × cols`` FSM×datapath grid netlist.

    ``width`` is the datapath word width; gate count scales as roughly
    ``rows * cols * (14 * width + 20)``.  The result is deterministic
    in ``(rows, cols, width, seed)`` and passes
    :func:`repro.netlist.validate`.
    """
    rng = random.Random(f"fsm_grid:{rows}:{cols}:{width}:{seed}")
    builder = CircuitBuilder(
        name or f"fsm_grid_r{rows}c{cols}w{width}s{seed}"
    )
    with builder.bulk():
        rst = builder.input("rst")
        west_edges = [builder.input_bus(f"d{r}", width) for r in range(rows)]
        north_edges = [builder.input(f"c{c}") for c in range(cols)]

        south: List[int] = list(north_edges)
        for r in range(rows):
            word = west_edges[r]
            for c in range(cols):
                word, south[c] = _tile(builder, r, c, rst, word,
                                       south[c], rng)
            builder.output_bus(word, f"e{r}")
        for c in range(cols):
            builder.output(south[c], f"s{c}")

        # Export any dangling nets so the design validates (same policy
        # as random_circuits): every net is either consumed or observed.
        netlist = builder.netlist
        exported = {net for net, _ in netlist.primary_outputs}
        extra = 0
        for net in netlist.nets:
            if not net.sinks and net.index not in exported:
                netlist.add_output(net.index, f"aux_out_{extra}")
                extra += 1
    return netlist
