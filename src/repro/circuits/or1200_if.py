"""OR1200 instruction-fetch (IF) stage (evaluation case 2).

Functional re-implementation of the OR1200 fetch stage: the program
counter datapath (PC+4 incrementer, branch-target and exception-vector
multiplexers), the fetch/cache handshake, the instruction register with
bus-error NOP substitution, a branch-pending save mechanism for stalls,
and simple opcode classification logic on the fetched instruction.

Interface:
    reset               synchronous reset
    stall               pipeline freeze from later stages
    branch_taken        redirect request from EX stage
    branch_addr_*       32-bit branch target
    except_start        exception redirect request (wins over branch)
    except_type_*       3-bit exception cause, selects the vector
    icpu_ack            instruction-cache acknowledge
    icpu_err            instruction-side bus error
    icpu_dat_*          32-bit instruction data from the cache

Outputs: ``icpu_adr_*`` (next fetch address), ``if_insn_*``,
``if_pc_*``, ``if_valid``, ``icpu_req``, ``if_stall``, and branch
classification flags decoded from the fetched opcode.
"""

from __future__ import annotations

from typing import List

from repro.circuits.builder import Bus, CircuitBuilder
from repro.circuits.fsm import _rewire_input
from repro.netlist.netlist import Netlist

WORD = 32
RESET_VECTOR = 0x00000100

#: l.nop 0x15000000 — substituted on bus error / invalid fetch.
NOP_INSTRUCTION = 0x15000000

#: Exception vectors sit at ``cause << 8`` (OR1K-style spacing).
VECTOR_STRIDE_SHIFT = 8


def _register_with_reset_value(
    builder: CircuitBuilder, width: int, reset: int, reset_value: int
):
    """Word register resetting to ``reset_value``.

    Bits set in ``reset_value`` are stored inverted (DFFR resets to 0),
    so the architectural view resets to the requested constant.
    Returns ``(view_bus, commit)``; call ``commit(next_bus)`` once the
    next-value logic exists.
    """
    dummy = reset  # temporary data pin, rewired by commit()
    flops: Bus = [
        builder.netlist.add_gate("DFFR", [dummy, reset]) for _ in range(width)
    ]
    view: Bus = [
        builder.not_(flop) if (reset_value >> bit) & 1 else flop
        for bit, flop in enumerate(flops)
    ]

    def commit(next_bus: Bus) -> None:
        for bit, (flop, next_net) in enumerate(zip(flops, next_bus)):
            stored = (
                builder.not_(next_net)
                if (reset_value >> bit) & 1 else next_net
            )
            _rewire_input(builder, flop, port_position=0, new_net=stored)

    return view, commit


def _plus_four(builder: CircuitBuilder, word: Bus) -> Bus:
    """``word + 4`` as a half-adder carry chain starting at bit 2."""
    out = list(word[:2])
    carry = builder.const1()
    last = len(word) - 1
    for bit in range(2, len(word)):
        out.append(builder.xor(word[bit], carry))
        if bit < last:
            carry = builder.and_(word[bit], carry)
    return out


def build_or1200_if() -> Netlist:
    """Elaborate the OR1200 IF stage; returns the gate-level netlist."""
    builder = CircuitBuilder("or1200_if")
    reset = builder.input("reset")
    stall = builder.input("stall")
    branch_taken = builder.input("branch_taken")
    branch_addr = builder.input_bus("branch_addr", WORD)
    except_start = builder.input("except_start")
    except_type = builder.input_bus("except_type", 3)
    icpu_ack = builder.input("icpu_ack")
    icpu_err = builder.input("icpu_err")
    icpu_dat = builder.input_bus("icpu_dat", WORD)

    run = builder.not_(stall)

    # ------------------------------------------------------------------
    # Branch-pending capture: a redirect arriving while stalled is
    # saved and replayed once the pipeline unfreezes.
    # ------------------------------------------------------------------
    save_branch = builder.and_(branch_taken, stall)
    pending_feedback = builder.buf(reset)  # patched below
    branch_pending_next = builder.and_(
        builder.or_(save_branch, pending_feedback), stall
    )
    branch_pending = builder.dffr(branch_pending_next, reset)
    _rewire_input(builder, pending_feedback, 0, branch_pending)
    saved_branch_addr = builder.register(branch_addr, enable=save_branch)

    take_branch = builder.and_(
        run, builder.or_(branch_taken, branch_pending)
    )
    effective_branch_addr = builder.bmux(
        branch_pending, branch_addr, saved_branch_addr
    )

    # ------------------------------------------------------------------
    # PC datapath.
    # ------------------------------------------------------------------
    pc, commit_pc = _register_with_reset_value(
        builder, WORD, reset, RESET_VECTOR
    )
    pc_inc = _plus_four(builder, pc)

    vector: Bus = (
        builder.constant(0, VECTOR_STRIDE_SHIFT)
        + list(except_type)
        + builder.constant(0, WORD - VECTOR_STRIDE_SHIFT - 3)
    )

    advance = builder.and_(run, builder.or_(icpu_ack, icpu_err))
    npc_seq = builder.bmux(advance, pc, pc_inc)
    npc_branch = builder.bmux(take_branch, npc_seq, effective_branch_addr)
    npc = builder.bmux(except_start, npc_branch, vector)
    commit_pc(npc)

    # ------------------------------------------------------------------
    # Instruction register and validity tracking.
    # ------------------------------------------------------------------
    fetch_good = builder.and_(icpu_ack, builder.not_(icpu_err), run)
    fetch_err = builder.and_(icpu_err, run)
    capture = builder.or_(fetch_good, fetch_err)

    nop_word = builder.constant(NOP_INSTRUCTION, WORD)
    insn_next = builder.bmux(fetch_err, icpu_dat, nop_word)
    if_insn = builder.register(insn_next, reset=reset, enable=capture)
    if_pc = builder.register(pc, enable=capture)
    if_valid = builder.dffr(fetch_good, reset)

    # ------------------------------------------------------------------
    # Opcode classification: opcode = insn[31:26] (OR1K major opcodes).
    # ------------------------------------------------------------------
    opcode = if_insn[26:32]
    is_j = builder.equals_const(opcode, 0x00)      # l.j
    is_jal = builder.equals_const(opcode, 0x01)    # l.jal
    is_bnf = builder.equals_const(opcode, 0x03)    # l.bnf
    is_bf = builder.equals_const(opcode, 0x04)     # l.bf
    is_nop = builder.equals_const(opcode, 0x05)    # l.nop
    is_branch = builder.or_(is_j, is_jal, is_bnf, is_bf)

    icpu_req = run
    if_stall = builder.and_(run, builder.nor(icpu_ack, icpu_err))

    builder.output_bus(npc, "icpu_adr")
    builder.output_bus(if_insn, "if_insn")
    builder.output_bus(if_pc, "if_pc")
    builder.output(if_valid, "if_valid")
    builder.output(icpu_req, "icpu_req")
    builder.output(if_stall, "if_stall")
    builder.output(is_branch, "if_branch_op")
    builder.output(is_nop, "if_nop_op")

    return builder.netlist
