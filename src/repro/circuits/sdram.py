"""SDRAM controller design (evaluation case 1).

A functional re-implementation of the open SDRAM-controller class of
designs the paper evaluates: a JEDEC-style command state machine with
power-up initialization (precharge, double auto-refresh, mode-register
load), a refresh scheduler, request latching, burst read/write
sequencing, and the row/column address multiplexer.

Host interface (all synchronous to the implicit clock):
    reset        synchronous reset
    req          access request, held until ``ack``
    we           1 = write, 0 = read (sampled with ``req``)
    haddr_*      host address: {bank[1:0], row[11:0], col[7:0]}

SDRAM-side pins: ``cs_n, ras_n, cas_n, we_n, cke, dqm, ba_*, a_*`` plus
host-side ``ready``, ``ack`` and ``busy``.
"""

from __future__ import annotations

from repro.circuits.builder import CircuitBuilder
from repro.circuits.fsm import FsmSpec, synthesize_fsm
from repro.circuits.library import up_counter
from repro.netlist.netlist import Netlist

ROW_BITS = 12
COL_BITS = 8
BANK_BITS = 2

#: Cycle counts for the timing counters (scaled-down JEDEC timings so
#: workloads exercise every state within short simulations).
INIT_WAIT_CYCLES = 10
T_RP = 2
T_RFC = 5
T_MRD = 1
T_RCD = 2
BURST_LENGTH = 4
REFRESH_INTERVAL = 50

#: Mode-register value driven on the address pins during INIT_MODE
#: (burst length 4, sequential, CAS latency 2).
MODE_REGISTER_VALUE = 0x022

STATES = [
    "INIT_WAIT",
    "INIT_PRE",
    "INIT_REF1",
    "INIT_REF2",
    "INIT_MODE",
    "IDLE",
    "REFRESH",
    "ACTIVATE",
    "READ",
    "WRITE",
    "PRECHARGE",
]


def build_sdram_controller(encoding: str = "one-hot") -> Netlist:
    """Elaborate the SDRAM controller; returns the gate-level netlist."""
    builder = CircuitBuilder("sdram_controller")
    reset = builder.input("reset")
    req = builder.input("req")
    we = builder.input("we")
    haddr = builder.input_bus("haddr", BANK_BITS + ROW_BITS + COL_BITS)

    col = haddr[:COL_BITS]
    row = haddr[COL_BITS:COL_BITS + ROW_BITS]
    bank = haddr[COL_BITS + ROW_BITS:]

    # ------------------------------------------------------------------
    # FSM skeleton: built first with placeholder condition inputs that
    # are wired to counters afterwards.  The counters depend on state
    # bits, so conditions are realized as registered "done" flags fed by
    # counters whose enables come from state indicators — a legal
    # sequential cycle.  To avoid forward references entirely, the FSM
    # conditions reference *input* nets created here and driven by
    # combinational logic over counters, which themselves consume FSM
    # state bits; netlist construction order only requires nets to
    # exist, and counters are created after the FSM via rewiring
    # helpers.  We use the simpler pattern: conditions come from
    # counters built on registered copies of the state indicators
    # (one-cycle-delayed enables), which matches how a timing counter
    # is enabled by a registered state in RTL practice.
    # ------------------------------------------------------------------
    # Registered state indicators do not exist until the FSM does, so
    # the build order is:
    #   1. counters driven by placeholder enables (const0)
    #   2. FSM with guards over counter outputs
    #   3. rewire counter enables/clears to FSM state bits
    from repro.circuits.fsm import _rewire_input  # shared rewiring helper

    placeholder = reset  # temporary input, rewired below

    def deferred_net() -> int:
        """A BUF gate whose input is patched later."""
        return builder.buf(placeholder)

    enable_init = deferred_net()
    enable_trp = deferred_net()
    enable_trfc = deferred_net()
    enable_tmrd = deferred_net()
    enable_trcd = deferred_net()
    enable_burst = deferred_net()

    def patch(buffer_net: int, real_net: int) -> None:
        _rewire_input(builder, buffer_net, port_position=0, new_net=real_net)

    init_ctr = up_counter(builder, 4, reset, enable=enable_init,
                          clear=builder.not_(enable_init))
    trp_ctr = up_counter(builder, 2, reset, enable=enable_trp,
                         clear=builder.not_(enable_trp))
    trfc_ctr = up_counter(builder, 3, reset, enable=enable_trfc,
                          clear=builder.not_(enable_trfc))
    tmrd_ctr = up_counter(builder, 1, reset, enable=enable_tmrd,
                          clear=builder.not_(enable_tmrd))
    trcd_ctr = up_counter(builder, 2, reset, enable=enable_trcd,
                          clear=builder.not_(enable_trcd))
    burst_ctr = up_counter(builder, 2, reset, enable=enable_burst,
                           clear=builder.not_(enable_burst))

    init_done = builder.equals_const(init_ctr.value, INIT_WAIT_CYCLES)
    trp_done = builder.equals_const(trp_ctr.value, T_RP)
    trfc_done = builder.equals_const(trfc_ctr.value, T_RFC)
    tmrd_done = builder.equals_const(tmrd_ctr.value, T_MRD)
    trcd_done = builder.equals_const(trcd_ctr.value, T_RCD)
    burst_done = builder.equals_const(burst_ctr.value, BURST_LENGTH - 1)

    # Refresh scheduler: free-running interval counter sets a request
    # flag; the flag clears when the REFRESH state is entered.
    refresh_tick_ctr = up_counter(builder, 6, reset)
    refresh_tick = builder.equals_const(
        refresh_tick_ctr.value, REFRESH_INTERVAL
    )
    refresh_ack = deferred_net()  # patched to the REFRESH state bit
    refresh_req_next = builder.and_(
        builder.or_(refresh_tick, deferred_refresh := builder.buf(placeholder)),
        builder.not_(refresh_ack),
    )
    refresh_req = builder.dffr(refresh_req_next, reset)
    patch(deferred_refresh, refresh_req)

    # Latched request attributes (captured when IDLE accepts a request).
    accept = deferred_net()  # patched to IDLE & req & ~refresh pending
    we_latched = builder.dffe(we, accept)
    col_latched = builder.register(col, enable=accept)
    row_latched = builder.register(row, enable=accept)
    bank_latched = builder.register(bank, enable=accept)

    spec = FsmSpec("sdram_fsm", states=STATES, reset_state="INIT_WAIT")
    spec.transition("INIT_WAIT", "INIT_PRE", when="init_done")
    spec.transition("INIT_PRE", "INIT_REF1", when="trp_done")
    spec.transition("INIT_REF1", "INIT_REF2", when="trfc_done")
    spec.transition("INIT_REF2", "INIT_MODE", when="trfc_done")
    spec.transition("INIT_MODE", "IDLE", when="tmrd_done")
    spec.transition("IDLE", "REFRESH", when="refresh_req")
    spec.transition("IDLE", "ACTIVATE", when="req & ~refresh_req")
    spec.transition("REFRESH", "IDLE", when="trfc_done")
    spec.transition("ACTIVATE", "WRITE", when="trcd_done & we_latched")
    spec.transition("ACTIVATE", "READ", when="trcd_done & ~we_latched")
    spec.transition("READ", "PRECHARGE", when="burst_done")
    spec.transition("WRITE", "PRECHARGE", when="burst_done")
    spec.transition("PRECHARGE", "IDLE", when="trp_done")
    spec.moore_output("ready", states=["IDLE"])
    spec.moore_output(
        "busy",
        states=[s for s in STATES if s != "IDLE"],
    )

    fsm = synthesize_fsm(
        spec,
        builder,
        inputs={
            "init_done": init_done,
            "trp_done": trp_done,
            "trfc_done": trfc_done,
            "tmrd_done": tmrd_done,
            "trcd_done": trcd_done,
            "burst_done": burst_done,
            "refresh_req": refresh_req,
            "req": req,
            "we_latched": we_latched,
        },
        reset=reset,
        encoding=encoding,
    )
    state = fsm.state_bits

    # Wire the deferred counter enables / handshakes to the state bits.
    patch(enable_init, state["INIT_WAIT"])
    patch(enable_trp, builder.or_(state["INIT_PRE"], state["PRECHARGE"]))
    patch(
        enable_trfc,
        builder.or_(state["INIT_REF1"], state["INIT_REF2"],
                    state["REFRESH"]),
    )
    patch(enable_tmrd, state["INIT_MODE"])
    patch(enable_trcd, state["ACTIVATE"])
    patch(enable_burst, builder.or_(state["READ"], state["WRITE"]))
    patch(refresh_ack, state["REFRESH"])
    patch(
        accept,
        builder.and_(state["IDLE"], req, builder.not_(refresh_req)),
    )

    # ------------------------------------------------------------------
    # SDRAM command generation.  Commands assert on the first cycle of
    # their state (counter still zero).
    # ------------------------------------------------------------------
    trp_zero = builder.is_zero(trp_ctr.value)
    trfc_zero = builder.is_zero(trfc_ctr.value)
    tmrd_zero = builder.is_zero(tmrd_ctr.value)
    trcd_zero = builder.is_zero(trcd_ctr.value)
    burst_zero = builder.is_zero(burst_ctr.value)

    cmd_precharge = builder.or_(
        builder.and_(state["INIT_PRE"], trp_zero),
        builder.and_(state["PRECHARGE"], trp_zero),
    )
    cmd_refresh = builder.and_(
        builder.or_(state["INIT_REF1"], state["INIT_REF2"],
                    state["REFRESH"]),
        trfc_zero,
    )
    cmd_mode = builder.and_(state["INIT_MODE"], tmrd_zero)
    cmd_active = builder.and_(state["ACTIVATE"], trcd_zero)
    cmd_read = builder.and_(state["READ"], burst_zero)
    cmd_write = builder.and_(state["WRITE"], burst_zero)

    # Command truth table (cs_n, ras_n, cas_n, we_n), NOP = 0111:
    #   PRECHARGE 0010, REFRESH 0001, MODE 0000, ACTIVE 0011,
    #   READ 0101, WRITE 0100.
    any_cmd = builder.or_(
        cmd_precharge, cmd_refresh, cmd_mode, cmd_active, cmd_read, cmd_write
    )
    cs_n = builder.not_(any_cmd)
    ras_n = builder.or_(cmd_read, cmd_write)  # high for READ/WRITE, NOP
    ras_n = builder.or_(ras_n, builder.not_(any_cmd))
    cas_n = builder.or_(cmd_precharge, cmd_active,
                        builder.not_(any_cmd))
    we_n = builder.or_(cmd_refresh, cmd_active, cmd_read,
                       builder.not_(any_cmd))

    # ------------------------------------------------------------------
    # Address pin multiplexer.
    # ------------------------------------------------------------------
    col_addr = list(col_latched) + builder.constant(0, ROW_BITS - COL_BITS)
    precharge_all = builder.constant(1 << 10, ROW_BITS)  # A10 = 1
    mode_word = builder.constant(MODE_REGISTER_VALUE, ROW_BITS)
    zero_addr = builder.constant(0, ROW_BITS)

    rw_state = builder.or_(cmd_read, cmd_write)
    a_pins = builder.bmux_many(
        [cmd_active, rw_state, cmd_precharge, cmd_mode,
         builder.nor(cmd_active, rw_state, cmd_precharge, cmd_mode)],
        [row_latched, col_addr, precharge_all, mode_word, zero_addr],
    )

    # cke low only during the initial power-up wait; dqm masks data
    # until initialization completes.
    init_phase = builder.or_(
        state["INIT_WAIT"], state["INIT_PRE"], state["INIT_REF1"],
        state["INIT_REF2"], state["INIT_MODE"],
    )
    cke = builder.not_(state["INIT_WAIT"])
    dqm = init_phase

    ack = builder.and_(state["IDLE"], req, builder.not_(refresh_req))
    data_valid = builder.and_(state["READ"],
                              builder.not_(we_latched))

    # ------------------------------------------------------------------
    # Primary outputs.
    # ------------------------------------------------------------------
    builder.output(cs_n, "cs_n")
    builder.output(ras_n, "ras_n")
    builder.output(cas_n, "cas_n")
    builder.output(we_n, "we_n")
    builder.output(cke, "cke")
    builder.output(dqm, "dqm")
    builder.output_bus(bank_latched, "ba")
    builder.output_bus(a_pins, "a")
    builder.output(fsm.outputs["ready"], "ready")
    builder.output(fsm.outputs["busy"], "busy")
    builder.output(ack, "ack")
    builder.output(data_valid, "data_valid")

    return builder.netlist
