"""Word-level circuit builder.

:class:`CircuitBuilder` plays the role of the RTL-to-gate synthesis
step in the paper's flow (Synopsys Design Vision): designs are described
with word-level operations (buses, muxes, adders, comparators,
registers) and elaborated directly into gates over the
:mod:`repro.netlist.cells` library.

A *bus* is a plain list of net indices, least-significant bit first.
All operations return new nets; the builder never mutates an existing
bus in place.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Sequence

from repro.netlist.netlist import Netlist
from repro.utils.errors import NetlistError

Bus = List[int]


class CircuitBuilder:
    """Builds a :class:`~repro.netlist.netlist.Netlist` from word-level
    operations.

    >>> builder = CircuitBuilder("adder4")
    >>> a = builder.input_bus("a", 4)
    >>> b = builder.input_bus("b", 4)
    >>> total, carry = builder.add(a, b)
    >>> builder.output_bus(total, "sum")
    >>> builder.output(carry, "carry")
    >>> builder.netlist.n_gates > 0
    True
    """

    def __init__(self, name: str):
        self.netlist = Netlist(name)

    @contextmanager
    def bulk(self):
        """Deferred-invalidation construction mode.

        Wrap long build programs so the per-gate
        ``invalidate_structure`` calls collapse into one deferred cache
        drop (see :meth:`Netlist.building`); large generators go from
        quadratic cache churn to linear construction.
        """
        with self.netlist.building():
            yield self

    # ------------------------------------------------------------------
    # ports and constants
    # ------------------------------------------------------------------
    def input(self, name: str) -> int:
        """Declare a 1-bit primary input."""
        return self.netlist.add_input(name)

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a ``width``-bit input bus named ``name_0 .. name_{w-1}``."""
        return [self.netlist.add_input(f"{name}_{i}") for i in range(width)]

    def output(self, net: int, name: str) -> None:
        """Export a 1-bit primary output."""
        self.netlist.add_output(net, name)

    def output_bus(self, bus: Bus, name: str) -> None:
        """Export every bit of ``bus`` as ``name_0 .. name_{w-1}``."""
        for index, net in enumerate(bus):
            self.netlist.add_output(net, f"{name}_{index}")

    def const0(self) -> int:
        """A constant-0 net (one shared TIE0 per netlist)."""
        if not hasattr(self, "_const0"):
            self._const0 = self.netlist.add_gate("TIE0", [])
        return self._const0

    def const1(self) -> int:
        """A constant-1 net (one shared TIE1 per netlist)."""
        if not hasattr(self, "_const1"):
            self._const1 = self.netlist.add_gate("TIE1", [])
        return self._const1

    def constant(self, value: int, width: int) -> Bus:
        """A ``width``-bit constant bus holding ``value``."""
        if value < 0 or value >= (1 << width):
            raise NetlistError(f"constant {value} does not fit in {width} bits")
        return [
            self.const1() if (value >> i) & 1 else self.const0()
            for i in range(width)
        ]

    # ------------------------------------------------------------------
    # bitwise primitives
    # ------------------------------------------------------------------
    def not_(self, net: int) -> int:
        return self.netlist.add_gate("IV", [net])

    def buf(self, net: int) -> int:
        return self.netlist.add_gate("BUF", [net])

    def _gate2plus(self, base: str, nets: Sequence[int]) -> int:
        """N-ary gate built as a tree of 2-4 input library cells."""
        nets = list(nets)
        if not nets:
            raise NetlistError(f"{base} of zero nets")
        if len(nets) == 1:
            return nets[0]
        while len(nets) > 1:
            grouped: List[int] = []
            index = 0
            while index < len(nets):
                chunk = nets[index:index + 4]
                index += 4
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(
                        self.netlist.add_gate(f"{base}{len(chunk)}", chunk)
                    )
            nets = grouped
        return nets[0]

    def and_(self, *nets: int) -> int:
        """AND of any number of nets (tree of AN2-AN4)."""
        return self._gate2plus("AN", self._flatten(nets))

    def or_(self, *nets: int) -> int:
        """OR of any number of nets (tree of OR2-OR4)."""
        return self._gate2plus("OR", self._flatten(nets))

    def nand(self, *nets: int) -> int:
        """NAND of 2-4 nets (single ND cell) or inverted AND tree."""
        nets_list = self._flatten(nets)
        if 2 <= len(nets_list) <= 4:
            return self.netlist.add_gate(f"ND{len(nets_list)}", nets_list)
        return self.not_(self.and_(*nets_list))

    def nor(self, *nets: int) -> int:
        """NOR of 2-4 nets (single NR cell) or inverted OR tree."""
        nets_list = self._flatten(nets)
        if 2 <= len(nets_list) <= 4:
            return self.netlist.add_gate(f"NR{len(nets_list)}", nets_list)
        return self.not_(self.or_(*nets_list))

    def xor(self, a: int, b: int) -> int:
        return self.netlist.add_gate("XOR2", [a, b])

    def xnor(self, a: int, b: int) -> int:
        return self.netlist.add_gate("XNR2", [a, b])

    def aoi22(self, a: int, b: int, c: int, d: int) -> int:
        """~((a & b) | (c & d)) as a single complex cell."""
        return self.netlist.add_gate("AO2", [a, b, c, d])

    def aoi21(self, a: int, b: int, c: int) -> int:
        """~((a & b) | c) as a single complex cell."""
        return self.netlist.add_gate("AO3", [a, b, c])

    def oai22(self, a: int, b: int, c: int, d: int) -> int:
        """~((a | b) & (c | d)) as a single complex cell."""
        return self.netlist.add_gate("OA2", [a, b, c, d])

    def oai21(self, a: int, b: int, c: int) -> int:
        """~((a | b) & c) as a single complex cell."""
        return self.netlist.add_gate("OA3", [a, b, c])

    def mux(self, select: int, when0: int, when1: int) -> int:
        """1-bit 2:1 mux: ``select ? when1 : when0``."""
        return self.netlist.add_gate("MUX2", [when0, when1, select])

    @staticmethod
    def _flatten(nets: Sequence) -> List[int]:
        flat: List[int] = []
        for net in nets:
            if isinstance(net, (list, tuple)):
                flat.extend(net)
            else:
                flat.append(net)
        return flat

    # ------------------------------------------------------------------
    # word-level operators
    # ------------------------------------------------------------------
    @staticmethod
    def _check_same_width(a: Bus, b: Bus) -> None:
        if len(a) != len(b):
            raise NetlistError(f"bus width mismatch: {len(a)} vs {len(b)}")

    def bnot(self, bus: Bus) -> Bus:
        return [self.not_(net) for net in bus]

    def band(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.and_(x, y) for x, y in zip(a, b)]

    def bor(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.or_(x, y) for x, y in zip(a, b)]

    def bxor(self, a: Bus, b: Bus) -> Bus:
        self._check_same_width(a, b)
        return [self.xor(x, y) for x, y in zip(a, b)]

    def bmux(self, select: int, when0: Bus, when1: Bus) -> Bus:
        """Word-level 2:1 mux."""
        self._check_same_width(when0, when1)
        return [self.mux(select, x, y) for x, y in zip(when0, when1)]

    def bmux_many(self, selects: Sequence[int], words: Sequence[Bus]) -> Bus:
        """One-hot mux: ``words[i]`` when ``selects[i]`` is high.

        Built as an AND-OR network; exactly one select is expected high.
        """
        if len(selects) != len(words):
            raise NetlistError("bmux_many: selects/words length mismatch")
        if not words:
            raise NetlistError("bmux_many: empty mux")
        width = len(words[0])
        out: Bus = []
        for bit in range(width):
            terms = [
                self.and_(select, word[bit])
                for select, word in zip(selects, words)
            ]
            out.append(self.or_(*terms) if len(terms) > 1 else terms[0])
        return out

    def add(self, a: Bus, b: Bus, carry_in: Optional[int] = None,
            carry_out: bool = True):
        """Ripple-carry adder; returns ``(sum_bus, carry_out_net)``.

        Carries are built from AOI22 complex cells
        (``carry = ~AOI22(a, b, carry, a^b)``), matching how a technology
        mapper covers a full adder's majority function.  With
        ``carry_out=False`` the final carry gate is not built (avoiding
        dangling logic) and ``None`` is returned in its place.
        """
        self._check_same_width(a, b)
        carry = carry_in if carry_in is not None else self.const0()
        total: Bus = []
        last = len(a) - 1
        for position, (x, y) in enumerate(zip(a, b)):
            propagate = self.xor(x, y)
            total.append(self.xor(propagate, carry))
            if position < last or carry_out:
                carry = self.not_(self.aoi22(x, y, carry, propagate))
        return total, (carry if carry_out else None)

    def increment(self, bus: Bus, enable: Optional[int] = None,
                  carry_out: bool = True):
        """``bus + 1`` (or ``+ enable``); returns ``(sum_bus, carry_out_net)``.

        With ``carry_out=False`` the final carry gate is skipped and
        ``None`` is returned in its place.
        """
        carry = enable if enable is not None else self.const1()
        total: Bus = []
        last = len(bus) - 1
        for position, net in enumerate(bus):
            total.append(self.xor(net, carry))
            if position < last or carry_out:
                carry = self.and_(net, carry)
        return total, (carry if carry_out else None)

    def equals_const(self, bus: Bus, value: int) -> int:
        """1 when ``bus`` holds the constant ``value``."""
        if value < 0 or value >= (1 << len(bus)):
            raise NetlistError(f"{value} does not fit in {len(bus)} bits")
        literals = [
            net if (value >> i) & 1 else self.not_(net)
            for i, net in enumerate(bus)
        ]
        return self.and_(*literals) if len(literals) > 1 else literals[0]

    def equals(self, a: Bus, b: Bus) -> int:
        """1 when buses ``a`` and ``b`` are bit-for-bit equal."""
        self._check_same_width(a, b)
        matches = [self.xnor(x, y) for x, y in zip(a, b)]
        return self.and_(*matches) if len(matches) > 1 else matches[0]

    def is_zero(self, bus: Bus) -> int:
        """1 when every bit of ``bus`` is 0."""
        return self.nor(*bus) if len(bus) > 1 else self.not_(bus[0])

    def decode(self, bus: Bus, count: Optional[int] = None) -> Bus:
        """Binary decoder: output ``i`` is high when ``bus == i``."""
        total = count if count is not None else (1 << len(bus))
        if total > (1 << len(bus)):
            raise NetlistError("decode: count exceeds address space")
        return [self.equals_const(bus, value) for value in range(total)]

    # ------------------------------------------------------------------
    # state elements
    # ------------------------------------------------------------------
    def dff(self, data: int, instance: Optional[str] = None) -> int:
        """Plain D flip-flop."""
        return self.netlist.add_gate("DFF", [data], instance=instance)

    def dffr(self, data: int, reset: int, instance: Optional[str] = None) -> int:
        """D flip-flop with synchronous reset-to-0."""
        return self.netlist.add_gate("DFFR", [data, reset], instance=instance)

    def dffe(self, data: int, enable: int, instance: Optional[str] = None) -> int:
        """D flip-flop with clock-enable (holds value when enable=0)."""
        return self.netlist.add_gate("DFFE", [data, enable], instance=instance)

    def register(
        self,
        data: Bus,
        reset: Optional[int] = None,
        enable: Optional[int] = None,
    ) -> Bus:
        """Word register with optional synchronous reset and enable.

        With both reset and enable, reset wins (``reset`` clears even
        when ``enable`` is low), matching conventional RTL priority.
        """
        out: Bus = []
        for net in data:
            if reset is not None and enable is not None:
                gated = self.and_(net, self.not_(reset))
                load = self.or_(enable, reset)
                out.append(self.dffe(gated, load))
            elif reset is not None:
                out.append(self.dffr(net, reset))
            elif enable is not None:
                out.append(self.dffe(net, enable))
            else:
                out.append(self.dff(net))
        return out
