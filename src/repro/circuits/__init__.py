"""Design generators: the RTL-to-gates substrate, the paper's three
evaluation designs (SDRAM controller, OR1200 IF, OR1200 ICFSM), and
the additional UART validation subject."""

from repro.circuits.builder import Bus, CircuitBuilder
from repro.circuits.fsm import FsmInstance, FsmSpec, parse_guard, synthesize_fsm
from repro.circuits.grid import build_fsm_grid
from repro.circuits.library import (
    CounterPorts,
    FifoPorts,
    fifo_controller,
    TimerPorts,
    down_timer,
    lfsr,
    shift_register,
    up_counter,
)
from repro.circuits.or1200_icfsm import build_or1200_icfsm
from repro.circuits.or1200_if import build_or1200_if
from repro.circuits.random_circuits import random_netlist
from repro.circuits.sdram import build_sdram_controller
from repro.circuits.uart import build_uart

__all__ = [
    "Bus",
    "CircuitBuilder",
    "FsmInstance",
    "FsmSpec",
    "parse_guard",
    "synthesize_fsm",
    "CounterPorts",
    "FifoPorts",
    "fifo_controller",
    "TimerPorts",
    "down_timer",
    "lfsr",
    "shift_register",
    "up_counter",
    "build_fsm_grid",
    "build_or1200_icfsm",
    "build_or1200_if",
    "random_netlist",
    "build_sdram_controller",
    "build_uart",
]


def build_design(name: str, **kwargs):
    """Build a bundled design by short name.

    Accepted names: ``"sdram"``, ``"or1200_if"``, ``"or1200_icfsm"``
    (the paper's three evaluation designs) and ``"uart"`` (the
    additional validation subject).
    """
    builders = {
        "sdram": build_sdram_controller,
        "or1200_if": build_or1200_if,
        "or1200_icfsm": build_or1200_icfsm,
        "uart": build_uart,
    }
    if name not in builders:
        raise KeyError(
            f"unknown design {name!r}; choose from {sorted(builders)}"
        )
    return builders[name](**kwargs)
