"""UART transceiver (additional design, beyond the paper's three).

A classic asynchronous serial port used as the framework's
"user-supplied design" validation subject: a transmitter and receiver
sharing a programmable baud divider, 8N1 framing plus even parity,
frame/parity error detection, and a loopback-friendly interface.

Transmitter: ``tx_start`` latches ``tx_data`` and shifts out
START(0) + 8 data bits (LSB first) + even parity + STOP(1) at the baud
rate; ``tx_busy`` covers the frame, ``tx_done`` pulses at completion.

Receiver: detects the start edge on ``rxd``, samples each bit at the
baud tick, checks parity and the stop bit, and presents the byte on
``rx_data`` with a one-cycle ``rx_valid`` pulse (``rx_frame_err`` /
``rx_parity_err`` otherwise).

The divisor is fixed small (:data:`BAUD_DIVISOR`) so whole frames fit
in short fault-injection workloads.
"""

from __future__ import annotations

from repro.circuits.builder import CircuitBuilder
from repro.circuits.fsm import FsmSpec, _rewire_input, synthesize_fsm
from repro.circuits.library import up_counter
from repro.netlist.netlist import Netlist

DATA_BITS = 8
#: Clock cycles per bit period.
BAUD_DIVISOR = 4
#: Cycles per full frame (start + data + parity + stop).
FRAME_CYCLES = BAUD_DIVISOR * (DATA_BITS + 3)


def build_uart() -> Netlist:
    """Elaborate the UART; returns the gate-level netlist."""
    builder = CircuitBuilder("uart")
    reset = builder.input("reset")
    tx_start = builder.input("tx_start")
    tx_data = builder.input_bus("tx_data", DATA_BITS)
    rxd = builder.input("rxd")

    # ------------------------------------------------------------------
    # Transmitter
    # ------------------------------------------------------------------
    tx_tick_enable = builder.buf(reset)  # patched to ~IDLE below
    tx_baud = up_counter(builder, 2, reset, enable=tx_tick_enable,
                         clear=builder.not_(tx_tick_enable))
    tx_tick = builder.equals_const(tx_baud.value, BAUD_DIVISOR - 1)

    tx_bit_enable = builder.buf(reset)  # patched: counting data bits
    tx_bits = up_counter(
        builder, 3, reset,
        enable=builder.and_(tx_bit_enable, tx_tick),
        clear=builder.not_(tx_bit_enable),
    )
    tx_last_bit = builder.and_(
        builder.equals_const(tx_bits.value, DATA_BITS - 1), tx_tick
    )

    # Shift register loaded on accept, shifted each DATA-state tick.
    tx_accept = builder.buf(reset)  # patched: IDLE & tx_start
    tx_shift_enable = builder.buf(reset)
    shift = []
    for bit in range(DATA_BITS):
        flop = builder.netlist.add_gate("DFFR", [reset, reset])
        shift.append(flop)
    for bit in range(DATA_BITS):
        upper = shift[bit + 1] if bit + 1 < DATA_BITS else builder.const0()
        shifted = builder.mux(tx_shift_enable, shift[bit], upper)
        loaded = builder.mux(tx_accept, shifted, tx_data[bit])
        _rewire_input(builder, shift[bit], 0, loaded)

    # Even parity accumulated over the transmitted bits.
    tx_parity_flop = builder.netlist.add_gate("DFFR", [reset, reset])
    tx_parity_next = builder.mux(
        tx_shift_enable,
        builder.mux(tx_accept, tx_parity_flop, builder.const0()),
        builder.xor(tx_parity_flop, shift[0]),
    )
    _rewire_input(builder, tx_parity_flop, 0, tx_parity_next)

    tx_spec = FsmSpec(
        "uart_tx",
        states=["IDLE", "START", "DATA", "PARITY", "STOP"],
        reset_state="IDLE",
    )
    tx_spec.transition("IDLE", "START", when="tx_start")
    tx_spec.transition("START", "DATA", when="tick")
    tx_spec.transition("DATA", "PARITY", when="last_bit")
    tx_spec.transition("PARITY", "STOP", when="tick")
    tx_spec.transition("STOP", "IDLE", when="tick")
    tx_spec.moore_output("busy", states=["START", "DATA", "PARITY",
                                         "STOP"])
    tx_spec.mealy_output("done", [("STOP", "tick")])
    tx_fsm = synthesize_fsm(
        tx_spec, builder,
        inputs={"tx_start": tx_start, "tick": tx_tick,
                "last_bit": tx_last_bit},
        reset=reset, encoding="one-hot",
    )
    tx_state = tx_fsm.state_bits

    _rewire_input(builder, tx_tick_enable, 0,
                  builder.not_(tx_state["IDLE"]))
    _rewire_input(builder, tx_bit_enable, 0, tx_state["DATA"])
    _rewire_input(builder, tx_accept, 0,
                  builder.and_(tx_state["IDLE"], tx_start))
    _rewire_input(builder, tx_shift_enable, 0,
                  builder.and_(tx_state["DATA"], tx_tick))

    # Line value per state: idle/stop high, start low, data = LSB of
    # the shifter, parity = accumulated parity.
    txd = builder.bmux_many(
        [tx_state["IDLE"], tx_state["START"], tx_state["DATA"],
         tx_state["PARITY"], tx_state["STOP"]],
        [[builder.const1()], [builder.const0()], [shift[0]],
         [tx_parity_flop], [builder.const1()]],
    )[0]

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    rxd_sync = builder.dffr(builder.dffr(rxd, reset), reset)

    rx_tick_enable = builder.buf(reset)
    rx_baud = up_counter(builder, 2, reset, enable=rx_tick_enable,
                         clear=builder.not_(rx_tick_enable))
    # Sample mid-bit: the phase counter restarts on the start edge.
    rx_sample = builder.equals_const(rx_baud.value,
                                     BAUD_DIVISOR // 2 - 1)
    rx_tick = builder.equals_const(rx_baud.value, BAUD_DIVISOR - 1)

    rx_bit_enable = builder.buf(reset)
    rx_bits = up_counter(
        builder, 3, reset,
        enable=builder.and_(rx_bit_enable, rx_tick),
        clear=builder.not_(rx_bit_enable),
    )
    rx_last_bit = builder.and_(
        builder.equals_const(rx_bits.value, DATA_BITS - 1), rx_tick
    )

    rx_capture = builder.buf(reset)  # patched: DATA & sample point
    rx_shift = []
    for bit in range(DATA_BITS):
        flop = builder.netlist.add_gate("DFFR", [reset, reset])
        rx_shift.append(flop)
    for bit in range(DATA_BITS):
        upper = (rx_shift[bit + 1] if bit + 1 < DATA_BITS
                 else rxd_sync)
        shifted = builder.mux(rx_capture, rx_shift[bit], upper)
        _rewire_input(builder, rx_shift[bit], 0, shifted)

    rx_parity_flop = builder.netlist.add_gate("DFFR", [reset, reset])
    rx_in_start = builder.buf(reset)  # patched: START state (clears)
    rx_parity_next = builder.mux(
        rx_in_start,
        builder.mux(rx_capture, rx_parity_flop,
                    builder.xor(rx_parity_flop, rxd_sync)),
        builder.const0(),
    )
    _rewire_input(builder, rx_parity_flop, 0, rx_parity_next)

    rx_spec = FsmSpec(
        "uart_rx",
        states=["IDLE", "START", "DATA", "PARITY", "STOP"],
        reset_state="IDLE",
    )
    rx_spec.transition("IDLE", "START", when="~line")
    rx_spec.transition("START", "IDLE", when="sample & line")  # glitch
    rx_spec.transition("START", "DATA", when="tick")
    rx_spec.transition("DATA", "PARITY", when="last_bit")
    rx_spec.transition("PARITY", "STOP", when="tick")
    rx_spec.transition("STOP", "IDLE", when="tick")
    rx_fsm = synthesize_fsm(
        rx_spec, builder,
        inputs={"line": rxd_sync, "tick": rx_tick,
                "sample": rx_sample, "last_bit": rx_last_bit},
        reset=reset, encoding="one-hot",
    )
    rx_state = rx_fsm.state_bits

    _rewire_input(builder, rx_tick_enable, 0,
                  builder.not_(rx_state["IDLE"]))
    _rewire_input(builder, rx_bit_enable, 0, rx_state["DATA"])
    _rewire_input(builder, rx_capture, 0,
                  builder.and_(rx_state["DATA"], rx_sample))
    _rewire_input(builder, rx_in_start, 0, rx_state["START"])

    # Parity/stop sampling and completion flags.
    parity_sampled = builder.dffe(
        rxd_sync, builder.and_(rx_state["PARITY"], rx_sample)
    )
    stop_sampled = builder.dffe(
        rxd_sync, builder.and_(rx_state["STOP"], rx_sample)
    )
    frame_done = builder.and_(rx_state["STOP"], rx_tick)
    rx_valid_raw = builder.dffr(frame_done, reset)
    parity_ok = builder.xnor(parity_sampled, rx_parity_flop)
    rx_parity_err = builder.and_(rx_valid_raw, builder.not_(parity_ok))
    rx_frame_err = builder.and_(rx_valid_raw,
                                builder.not_(stop_sampled))
    rx_valid = builder.and_(rx_valid_raw, parity_ok, stop_sampled)

    # Received byte registered at frame completion.
    rx_data = builder.register(rx_shift, enable=frame_done)

    # ------------------------------------------------------------------
    # Primary outputs
    # ------------------------------------------------------------------
    builder.output(txd, "txd")
    builder.output(tx_fsm.outputs["busy"], "tx_busy")
    builder.output(tx_fsm.outputs["done"], "tx_done")
    builder.output_bus(rx_data, "rx_data")
    builder.output(rx_valid, "rx_valid")
    builder.output(rx_frame_err, "rx_frame_err")
    builder.output(rx_parity_err, "rx_parity_err")
    builder.output(rx_state["IDLE"], "rx_idle")

    return builder.netlist
