"""ASCII table rendering for benchmark reports."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def render_table(
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
    columns: Optional[List[str]] = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = columns or list(rows[0].keys())
    widths = {
        column: max(
            len(str(column)),
            *(len(str(row.get(column, ""))) for row in rows),
        )
        for column in columns
    }
    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (widths[c] + 2) for c in columns) + "+"

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line("-"))
    out.append(
        "|" + "|".join(f" {column:<{widths[column]}} " for column in columns)
        + "|"
    )
    out.append(line("="))
    for row in rows:
        out.append(
            "|" + "|".join(
                f" {str(row.get(column, '')):<{widths[column]}} "
                for column in columns
            ) + "|"
        )
    out.append(line("-"))
    return "\n".join(out)
