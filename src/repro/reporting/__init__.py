"""Terminal rendering for benchmark reports: tables, bar charts, ROC."""

from repro.reporting.figures import bar_chart, grouped_bar_chart, roc_ascii
from repro.reporting.tables import render_table

__all__ = ["bar_chart", "grouped_bar_chart", "roc_ascii", "render_table"]
