"""ASCII chart rendering: bar charts (Figure 3/5 style) and ROC curves
(Figure 4 style) for terminal benchmark output."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
    maximum: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart of labeled values."""
    if not values:
        return (title + "\n" if title else "") + "(no data)"
    peak = maximum if maximum is not None else max(values.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = int(round(width * value / peak))
        lines.append(
            f"  {label:<{label_width}} |{'#' * filled:<{width}}| "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Bar chart with one section per group (Figure 3 layout:
    designs x classifiers)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(
        (value for group in groups.values() for value in group.values()),
        default=1.0,
    )
    for group_name, values in groups.items():
        lines.append(f"{group_name}:")
        lines.append(bar_chart(values, width=width, unit=unit,
                               maximum=peak))
    return "\n".join(lines)


def roc_ascii(
    curves: Mapping[str, "object"],
    title: Optional[str] = None,
    width: int = 61,
    height: int = 21,
) -> str:
    """Plot ROC curves (objects with ``fpr``/``tpr``/``auc``) on one
    ASCII canvas, one marker character per classifier."""
    markers = "o*x+#@%&"
    canvas = [[" "] * width for _ in range(height)]
    # Diagonal reference.
    for position in range(min(width, height * 3)):
        row = height - 1 - int(position * (height - 1) / (width - 1))
        if 0 <= row < height:
            canvas[row][position] = "."

    legend: List[str] = []
    for index, (name, curve) in enumerate(curves.items()):
        marker = markers[index % len(markers)]
        fpr_dense = np.linspace(0.0, 1.0, width)
        tpr_dense = np.interp(fpr_dense, curve.fpr, curve.tpr)
        for column, tpr in enumerate(tpr_dense):
            row = height - 1 - int(round(tpr * (height - 1)))
            canvas[row][column] = marker
        legend.append(f"  {marker} {name} (AUC={curve.auc:.2f})")

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("TPR")
    for row in canvas:
        lines.append(" |" + "".join(row))
    lines.append(" +" + "-" * width + "> FPR")
    lines.extend(legend)
    return "\n".join(lines)
