"""Random-forest classifier (RFC) baseline: CART trees with Gini
impurity, bootstrap sampling, and per-split random feature subsets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.models.base import BaseClassifier, register_classifier
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng


@dataclass
class _Node:
    """One decision-tree node (leaf when ``feature`` is None)."""

    probability: float  # P(class 1) from training rows at this node
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class DecisionTree:
    """A single CART tree (Gini split criterion)."""

    def __init__(self, max_depth: int = 8, min_leaf: int = 2,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        self.root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_weights: Optional[np.ndarray] = None) -> "DecisionTree":
        weights = (
            np.ones(len(y)) if sample_weights is None
            else np.asarray(sample_weights, dtype=np.float64)
        )
        self.root = self._grow(np.asarray(x, dtype=np.float64),
                               np.asarray(y, dtype=np.float64),
                               weights, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray,
              weights: np.ndarray, depth: int) -> _Node:
        total = weights.sum()
        probability = float((weights * y).sum() / total)
        node = _Node(probability=probability)
        if (depth >= self.max_depth or len(y) < 2 * self.min_leaf
                or probability in (0.0, 1.0)):
            return node

        best = self._best_split(x, y, weights)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], weights[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], weights[~mask],
                                depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray,
                    weights: np.ndarray):
        n_features = x.shape[1]
        candidates = np.arange(n_features)
        if self.max_features and self.max_features < n_features:
            candidates = self.rng.choice(
                n_features, self.max_features, replace=False
            )

        best_score, best = np.inf, None
        total = weights.sum()
        for feature in candidates:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            labels = y[order]
            row_weights = weights[order]

            weight_left = np.cumsum(row_weights)
            positive_left = np.cumsum(row_weights * labels)
            weight_right = total - weight_left
            positive_right = positive_left[-1] - positive_left

            # Valid split points: value changes, both sides non-trivial.
            changed = values[:-1] < values[1:]
            counts_left = np.arange(1, len(values))
            valid = changed & (counts_left >= self.min_leaf) & (
                len(values) - counts_left >= self.min_leaf
            )
            if not valid.any():
                continue

            wl = weight_left[:-1][valid]
            wr = weight_right[:-1][valid]
            pl = positive_left[:-1][valid] / wl
            pr = positive_right[:-1][valid] / np.maximum(wr, 1e-12)
            gini = (wl * 2 * pl * (1 - pl) + wr * 2 * pr * (1 - pr)) / total

            best_index = int(np.argmin(gini))
            if gini[best_index] < best_score:
                best_score = float(gini[best_index])
                position = np.flatnonzero(valid)[best_index]
                threshold = 0.5 * (values[position] + values[position + 1])
                best = (int(feature), float(threshold))
        return best

    def predict_proba_one(self, row: np.ndarray) -> float:
        node = self.root
        if node is None:
            raise ModelError("predict before fit")
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else (
                node.right
            )
        return node.probability

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.array([self.predict_proba_one(row) for row in x])


@register_classifier("RFC")
class RandomForestClassifier(BaseClassifier):
    """Bootstrap ensemble of CART trees."""

    def __init__(self, n_trees: int = 50, max_depth: int = 8,
                 min_leaf: int = 2, seed: SeedLike = 0,
                 balanced: bool = True):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self.balanced = balanced
        self.trees: List[DecisionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        self._check_training_data(x, y)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        rng = derive_rng(self.seed, "random-forest")

        sample_weights = np.ones(len(y))
        if self.balanced:
            counts = np.bincount(y, minlength=2).astype(float)
            counts[counts == 0.0] = 1.0
            class_weights = counts.sum() / (2.0 * counts)
            sample_weights = class_weights[y]

        max_features = max(1, int(np.sqrt(x.shape[1])))
        self.trees = []
        for _ in range(self.n_trees):
            rows = rng.integers(0, len(y), size=len(y))
            tree = DecisionTree(
                max_depth=self.max_depth, min_leaf=self.min_leaf,
                max_features=max_features, rng=rng,
            )
            tree.fit(x[rows], y[rows], sample_weights[rows])
            self.trees.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise ModelError("predict before fit")
        positive = np.mean(
            [tree.predict_proba(x) for tree in self.trees], axis=0
        )
        return np.column_stack([1.0 - positive, positive])
