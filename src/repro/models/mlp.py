"""Multi-layer-perceptron baseline.

Same training machinery as the GCN but with plain ``Linear`` layers —
the node sees only its own features, no message passing.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.base import BaseClassifier, register_classifier
from repro.nn.modules import Dropout, Linear, LogSoftmax, ReLU, Sequential
from repro.nn.training import TrainingConfig, train_classifier
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng


@register_classifier("MLP")
class MLPClassifier(BaseClassifier):
    """Feed-forward classifier on per-node features."""

    def __init__(
        self,
        hidden_dims: Sequence[int] = (16, 32, 64),
        dropout: float = 0.3,
        seed: SeedLike = 0,
        config: Optional[TrainingConfig] = None,
    ):
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.seed = seed
        self.config = config or TrainingConfig(epochs=300, patience=60)
        self.model: Optional[Sequential] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        self._check_training_data(x, y)
        rng = derive_rng(self.seed, "mlp-init")
        modules = []
        previous = x.shape[1]
        for position, width in enumerate(self.hidden_dims):
            modules.append(Linear(previous, width, seed=rng))
            modules.append(ReLU())
            if self.dropout > 0.0 and position == 1:
                modules.append(Dropout(self.dropout, seed=rng))
            previous = width
        modules.append(Linear(previous, 2, seed=rng))
        modules.append(LogSoftmax())
        self.model = Sequential(*modules)

        mask = np.ones(len(x), dtype=bool)
        train_classifier(self.model, np.asarray(x, dtype=np.float64),
                         np.asarray(y, dtype=np.int64), mask, None,
                         self.config)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise ModelError("predict before fit")
        self.model.eval()
        return np.exp(self.model.forward(np.asarray(x, dtype=np.float64)))
