"""The paper's GCN models.

:class:`GCNClassifier` is the exact Table 1 network::

    Layer 1  Graph convolutional layer   In -> 16
    Layer 2  ReLU
    Layer 3  Graph convolutional layer   16 -> 32
    Layer 4  ReLU
    Layer 5  Dropout                     p = 0.3
    Layer 6  Graph convolutional layer   32 -> 64
    Layer 7  ReLU
    Layer 8  Graph convolutional layer   64 -> 2
    Layer 9  LogSoftmax

:class:`GCNRegressor` (§3.4) is the same stack with the log-softmax
removed and the output dimensionality changed from 2 to 1, producing
continuous criticality scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.data import GraphData
from repro.graph.split import Split
from repro.nn.modules import (
    Dropout,
    GCNConv,
    LogSoftmax,
    Module,
    ReLU,
    SAGEConv,
    Sequential,
)
from repro.nn.training import (
    TrainingConfig,
    TrainingHistory,
    train_classifier,
    train_regressor,
)
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng

#: Table 1 hidden widths.
DEFAULT_HIDDEN_DIMS: Tuple[int, ...] = (16, 32, 64)
#: Table 1 dropout probability (layer 5).
DEFAULT_DROPOUT = 0.3
#: Dropout sits after the second convolution, as in Table 1.
DROPOUT_AFTER_LAYER = 2


def build_gcn_stack(
    in_features: int,
    out_features: int,
    a_norm: sp.csr_matrix,
    hidden_dims: Sequence[int] = DEFAULT_HIDDEN_DIMS,
    dropout: float = DEFAULT_DROPOUT,
    log_softmax: bool = True,
    seed: SeedLike = 0,
    conv: str = "gcn",
) -> Sequential:
    """Assemble a Table 1-style stack with configurable widths.

    ``conv`` selects the convolution: ``"gcn"`` (Eq. 2, the paper) or
    ``"sage"`` (GraphSAGE mean aggregation, for the architecture
    ablation — pass the row-normalized, no-self-loop adjacency then).
    """
    if conv not in ("gcn", "sage"):
        raise ModelError(f"unknown convolution {conv!r}")
    layer = GCNConv if conv == "gcn" else SAGEConv
    rng = derive_rng(seed, "gcn-init")
    modules: List[Module] = []
    previous = in_features
    for position, width in enumerate(hidden_dims):
        modules.append(layer(previous, width, a_norm, seed=rng))
        modules.append(ReLU())
        if dropout > 0.0 and position + 1 == DROPOUT_AFTER_LAYER:
            modules.append(Dropout(dropout, seed=rng))
        previous = width
    modules.append(layer(previous, out_features, a_norm, seed=rng))
    if log_softmax:
        modules.append(LogSoftmax())
    return Sequential(*modules)


class GCNClassifier:
    """Critical-node classifier (§3.3, Table 1 architecture)."""

    name = "GCN"

    def __init__(
        self,
        hidden_dims: Sequence[int] = DEFAULT_HIDDEN_DIMS,
        dropout: float = DEFAULT_DROPOUT,
        adjacency_mode: str = "symmetric",
        self_loops: bool = True,
        seed: SeedLike = 0,
        config: Optional[TrainingConfig] = None,
        conv: str = "gcn",
    ):
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.conv = conv
        if conv == "sage":
            # Mean aggregation: row-normalized, no self-loops (the
            # node's own features flow through the separate self path).
            adjacency_mode, self_loops = "row", False
        self.adjacency_mode = adjacency_mode
        self.self_loops = self_loops
        self.seed = seed
        self.config = config or TrainingConfig()
        self.model: Optional[Sequential] = None
        self.history: Optional[TrainingHistory] = None
        self._data: Optional[GraphData] = None

    def fit(self, data: GraphData, split: Split) -> "GCNClassifier":
        """Train transductively on the design graph's training fold."""
        a_norm = data.a_norm(self.adjacency_mode, self.self_loops)
        self.model = build_gcn_stack(
            data.n_features, 2, a_norm,
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            log_softmax=True, seed=self.seed, conv=self.conv,
        )
        self.history = train_classifier(
            self.model, data.x, data.y_class,
            split.train_mask, split.val_mask, self.config,
            cache=data.propagation_cache(),
        )
        self._data = data
        return self

    def _require_fitted(self) -> Sequential:
        if self.model is None:
            raise ModelError("predict before fit")
        return self.model

    def log_probs(self, data: Optional[GraphData] = None) -> np.ndarray:
        """``(N, 2)`` log class probabilities for all nodes."""
        model = self._require_fitted()
        data = data if data is not None else self._data
        model.eval()
        return model.forward(data.x)

    def predict_proba(self, data: Optional[GraphData] = None) -> np.ndarray:
        """``(N, 2)`` class probabilities for all nodes."""
        return np.exp(self.log_probs(data))

    def predict(self, data: Optional[GraphData] = None) -> np.ndarray:
        """``argmax(GCN(x))`` hard labels for all nodes (§3.3.1)."""
        return self.log_probs(data).argmax(axis=1)

    def accuracy(self, mask: np.ndarray,
                 data: Optional[GraphData] = None) -> float:
        """Accuracy over a node mask."""
        data = data if data is not None else self._data
        predictions = self.predict(data)
        return float(
            (predictions[mask] == data.y_class[mask]).mean()
        )

    def transfer_to(self, data: GraphData) -> "GCNClassifier":
        """Bind the trained weights to a *different* design's graph.

        GCN weights are graph-independent (they act on features; the
        propagation matrix is data), so a model trained on one design
        can classify another — the cross-design transfer experiment.
        The target must share the feature set.
        """
        self._require_fitted()
        source_in = self.model.parameters()[0].shape[0]
        if data.n_features != source_in:
            raise ModelError(
                f"transfer target has {data.n_features} features, "
                f"model was trained on {source_in}"
            )
        clone = GCNClassifier(
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            adjacency_mode=self.adjacency_mode,
            self_loops=self.self_loops, seed=self.seed,
            config=self.config, conv=self.conv,
        )
        clone.model = build_gcn_stack(
            data.n_features, 2,
            data.a_norm(self.adjacency_mode, self.self_loops),
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            log_softmax=True, seed=self.seed, conv=self.conv,
        )
        for target, source in zip(clone.model.parameters(),
                                  self.model.parameters()):
            target.value[:] = source.value
        clone.model.eval()
        clone._data = data
        return clone


class GCNRegressor:
    """Criticality-score regressor (§3.4).

    Identical to the classifier except the log-softmax is removed and
    the head outputs one continuous score per node.
    """

    name = "GCN-regressor"

    def __init__(
        self,
        hidden_dims: Sequence[int] = DEFAULT_HIDDEN_DIMS,
        dropout: float = DEFAULT_DROPOUT,
        adjacency_mode: str = "symmetric",
        self_loops: bool = True,
        seed: SeedLike = 0,
        config: Optional[TrainingConfig] = None,
    ):
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.adjacency_mode = adjacency_mode
        self.self_loops = self_loops
        self.seed = seed
        self.config = config or TrainingConfig(lr=0.005, epochs=400)
        self.model: Optional[Sequential] = None
        self.history: Optional[TrainingHistory] = None
        self._data: Optional[GraphData] = None

    def fit(self, data: GraphData, split: Split) -> "GCNRegressor":
        """Train on the training fold's continuous criticality scores."""
        a_norm = data.a_norm(self.adjacency_mode, self.self_loops)
        self.model = build_gcn_stack(
            data.n_features, 1, a_norm,
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            log_softmax=False, seed=self.seed,
        )
        self.history = train_regressor(
            self.model, data.x, data.y_score,
            split.train_mask, split.val_mask, self.config,
            cache=data.propagation_cache(),
        )
        self._data = data
        return self

    def predict(self, data: Optional[GraphData] = None) -> np.ndarray:
        """Continuous criticality scores, clipped to [0, 1]."""
        if self.model is None:
            raise ModelError("predict before fit")
        data = data if data is not None else self._data
        self.model.eval()
        return np.clip(self.model.forward(data.x).reshape(-1), 0.0, 1.0)

    def transfer_to(self, data: GraphData) -> "GCNRegressor":
        """Bind the trained weights to a *different* design's graph.

        Same contract as :meth:`GCNClassifier.transfer_to`: the weights
        are graph-independent, the propagation matrix comes from
        ``data``, and the target must share the feature set.
        """
        if self.model is None:
            raise ModelError("predict before fit")
        source_in = self.model.parameters()[0].shape[0]
        if data.n_features != source_in:
            raise ModelError(
                f"transfer target has {data.n_features} features, "
                f"model was trained on {source_in}"
            )
        clone = GCNRegressor(
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            adjacency_mode=self.adjacency_mode,
            self_loops=self.self_loops, seed=self.seed,
            config=self.config,
        )
        clone.model = build_gcn_stack(
            data.n_features, 1,
            data.a_norm(self.adjacency_mode, self.self_loops),
            hidden_dims=self.hidden_dims, dropout=self.dropout,
            log_softmax=False, seed=self.seed,
        )
        for target, source in zip(clone.model.parameters(),
                                  self.model.parameters()):
            target.value[:] = source.value
        clone.model.eval()
        clone._data = data
        return clone
