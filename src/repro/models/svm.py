"""Support-vector-machine baseline (kernelized Pegasos).

Pegasos (Shalev-Shwartz et al., 2011) solves the SVM objective by
stochastic sub-gradient steps; the kernelized variant keeps per-sample
dual coefficients, supporting RBF and linear kernels without a QP
solver.  Probabilities come from Platt scaling (a 1-D logistic fit on
the decision values).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import BaseClassifier, register_classifier
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix between row sets ``a`` and ``b``."""
    squared = (
        (a ** 2).sum(axis=1)[:, None]
        + (b ** 2).sum(axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-gamma * np.maximum(squared, 0.0))


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Plain dot-product kernel (gamma unused)."""
    return a @ b.T


@register_classifier("SVM")
class SVMClassifier(BaseClassifier):
    """Binary SVM with RBF (default) or linear kernel."""

    def __init__(self, kernel: str = "rbf", gamma: float = 0.5,
                 regularization: float = 1e-3, epochs: int = 20,
                 seed: SeedLike = 0, balanced: bool = True):
        if kernel not in ("rbf", "linear"):
            raise ModelError(f"unknown kernel {kernel!r}")
        self.kernel_name = kernel
        self.gamma = gamma
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self.balanced = balanced
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._y_signed: Optional[np.ndarray] = None
        self._steps = 0
        self._platt = (1.0, 0.0)  # (scale, offset)

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        kernel = rbf_kernel if self.kernel_name == "rbf" else linear_kernel
        return kernel(a, b, self.gamma)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVMClassifier":
        self._check_training_data(x, y)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        y_signed = 2.0 * y - 1.0
        rng = derive_rng(self.seed, "svm-pegasos")

        repeat = np.ones(len(y), dtype=np.int64)
        if self.balanced:
            # Oversample the minority class in the visit schedule.
            counts = np.bincount(y, minlength=2)
            minority = int(np.argmin(counts))
            ratio = max(1, int(round(counts[1 - minority]
                                     / max(counts[minority], 1))))
            repeat[y == minority] = ratio
        schedule = np.repeat(np.arange(len(y)), repeat)

        gram = self._kernel(x, x)
        alpha = np.zeros(len(y))
        step = 0
        for _ in range(self.epochs):
            rng.shuffle(schedule)
            for index in schedule:
                step += 1
                margin = y_signed[index] * (
                    (alpha * y_signed) @ gram[:, index]
                ) / (self.regularization * step)
                if margin < 1.0:
                    alpha[index] += 1.0

        self._x = x
        self._alpha = alpha
        self._y_signed = y_signed
        self._steps = step
        self._fit_platt(y)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._alpha is None:
            raise ModelError("predict before fit")
        kernel = self._kernel(np.asarray(x, dtype=np.float64), self._x)
        return kernel @ (self._alpha * self._y_signed) / (
            self.regularization * self._steps
        )

    def _fit_platt(self, y: np.ndarray) -> None:
        """1-D logistic fit mapping decision values to probabilities."""
        decisions = self.decision_function(self._x)
        scale, offset = 1.0, 0.0
        lr = 0.1
        for _ in range(200):
            probability = 1.0 / (
                1.0 + np.exp(-np.clip(scale * decisions + offset, -60, 60))
            )
            residual = probability - y
            grad_scale = (residual * decisions).mean()
            grad_offset = residual.mean()
            scale -= lr * grad_scale
            offset -= lr * grad_offset
        self._platt = (scale, offset)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scale, offset = self._platt
        decisions = self.decision_function(x)
        positive = 1.0 / (
            1.0 + np.exp(-np.clip(scale * decisions + offset, -60, 60))
        )
        return np.column_stack([1.0 - positive, positive])
