"""Explainable Boosting Machine (EBM) baseline.

A generalized additive model fit by cyclic gradient boosting: each
feature owns a piecewise-constant shape function over quantile bins;
boosting rounds cycle through the features, each round fitting a small
step toward the logistic-loss gradient on that feature's bins.  This is
the glass-box model of Lou et al. / InterpretML that the paper lists as
the EBM baseline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import BaseClassifier, register_classifier
from repro.utils.errors import ModelError


@register_classifier("EBM")
class ExplainableBoostingMachine(BaseClassifier):
    """Cyclic-boosted additive model with per-feature bin tables."""

    def __init__(self, n_bins: int = 16, rounds: int = 150,
                 learning_rate: float = 0.2, balanced: bool = True):
        self.n_bins = n_bins
        self.rounds = rounds
        self.learning_rate = learning_rate
        self.balanced = balanced
        self._edges: List[np.ndarray] = []
        self._tables: Optional[np.ndarray] = None  # (F, n_bins)
        self._intercept = 0.0

    def _bin(self, column: np.ndarray, edges: np.ndarray) -> np.ndarray:
        return np.clip(
            np.searchsorted(edges, column, side="right"),
            0, self.n_bins - 1,
        )

    def fit(self, x: np.ndarray, y: np.ndarray
            ) -> "ExplainableBoostingMachine":
        self._check_training_data(x, y)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n_rows, n_features = x.shape

        sample_weights = np.ones(n_rows)
        if self.balanced:
            counts = np.bincount(y.astype(np.int64), minlength=2
                                 ).astype(float)
            counts[counts == 0.0] = 1.0
            class_weights = counts.sum() / (2.0 * counts)
            sample_weights = class_weights[y.astype(np.int64)]

        # Quantile bin edges per feature (n_bins-1 interior edges).
        self._edges = []
        bins = np.zeros((n_rows, n_features), dtype=np.int64)
        for feature in range(n_features):
            quantiles = np.quantile(
                x[:, feature],
                np.linspace(0, 1, self.n_bins + 1)[1:-1],
            )
            edges = np.unique(quantiles)
            self._edges.append(edges)
            bins[:, feature] = self._bin(x[:, feature], edges)

        self._tables = np.zeros((n_features, self.n_bins))
        positive_rate = float(
            (sample_weights * y).sum() / sample_weights.sum()
        )
        positive_rate = min(max(positive_rate, 1e-6), 1 - 1e-6)
        self._intercept = float(np.log(positive_rate / (1 - positive_rate)))

        logits = np.full(n_rows, self._intercept)
        for _ in range(self.rounds):
            for feature in range(n_features):
                probability = 1.0 / (
                    1.0 + np.exp(-np.clip(logits, -60, 60))
                )
                residual = (y - probability) * sample_weights
                # Weighted mean residual per bin -> Newton-ish step.
                hessian = probability * (1 - probability) * sample_weights
                numerator = np.bincount(
                    bins[:, feature], weights=residual,
                    minlength=self.n_bins,
                )
                denominator = np.bincount(
                    bins[:, feature], weights=hessian,
                    minlength=self.n_bins,
                ) + 1e-9
                step = self.learning_rate * numerator / denominator
                self._tables[feature] += step
                logits += step[bins[:, feature]]
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._tables is None:
            raise ModelError("predict before fit")
        x = np.asarray(x, dtype=np.float64)
        logits = np.full(len(x), self._intercept)
        for feature in range(x.shape[1]):
            binned = self._bin(x[:, feature], self._edges[feature])
            logits += self._tables[feature][binned]
        return logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self.decision_function(x)
        positive = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return np.column_stack([1.0 - positive, positive])

    def feature_contributions(self, x: np.ndarray) -> np.ndarray:
        """Per-feature additive logit contributions, shape (N, F) —
        the glass-box explanation an EBM offers."""
        if self._tables is None:
            raise ModelError("predict before fit")
        x = np.asarray(x, dtype=np.float64)
        contributions = np.zeros_like(x)
        for feature in range(x.shape[1]):
            binned = self._bin(x[:, feature], self._edges[feature])
            contributions[:, feature] = self._tables[feature][binned]
        return contributions
