"""Models: the paper's GCN classifier/regressor plus the five
feature-vector baselines (MLP, LoR, RFC, SVM, EBM)."""

from repro.models.base import (
    BaseClassifier,
    make_classifier,
    register_classifier,
    registered_classifiers,
)
from repro.models.ebm import ExplainableBoostingMachine
from repro.models.gcn import (
    DEFAULT_DROPOUT,
    DEFAULT_HIDDEN_DIMS,
    GCNClassifier,
    GCNRegressor,
    build_gcn_stack,
)
from repro.models.logistic import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.random_forest import DecisionTree, RandomForestClassifier
from repro.models.sgc import SGCClassifier
from repro.models.svm import SVMClassifier, linear_kernel, rbf_kernel

#: Baseline names in the order Figure 3 plots them.
BASELINE_NAMES = ("MLP", "LoR", "RFC", "SVM", "EBM")

__all__ = [
    "BaseClassifier",
    "make_classifier",
    "register_classifier",
    "registered_classifiers",
    "ExplainableBoostingMachine",
    "DEFAULT_DROPOUT",
    "DEFAULT_HIDDEN_DIMS",
    "GCNClassifier",
    "GCNRegressor",
    "build_gcn_stack",
    "LogisticRegression",
    "MLPClassifier",
    "DecisionTree",
    "RandomForestClassifier",
    "SGCClassifier",
    "SVMClassifier",
    "linear_kernel",
    "rbf_kernel",
    "BASELINE_NAMES",
]
