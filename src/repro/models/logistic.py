"""Logistic-regression (LoR) baseline, trained by full-batch gradient
descent with L2 regularization and inverse-frequency class weighting."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import BaseClassifier, register_classifier
from repro.utils.errors import ModelError


@register_classifier("LoR")
class LogisticRegression(BaseClassifier):
    """Binary logistic regression."""

    def __init__(self, lr: float = 0.1, epochs: int = 500,
                 l2: float = 1e-3, balanced: bool = True):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.balanced = balanced
        self.weights: Optional[np.ndarray] = None
        self.bias = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        self._check_training_data(x, y)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)

        sample_weights = np.ones(len(y))
        if self.balanced:
            counts = np.bincount(y.astype(np.int64), minlength=2).astype(float)
            counts[counts == 0.0] = 1.0
            class_weights = counts.sum() / (2.0 * counts)
            sample_weights = class_weights[y.astype(np.int64)]
        normalizer = sample_weights.sum()

        self.weights = np.zeros(x.shape[1])
        self.bias = 0.0
        for _ in range(self.epochs):
            logits = x @ self.weights + self.bias
            probability = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
            residual = (probability - y) * sample_weights / normalizer
            grad_w = x.T @ residual + self.l2 * self.weights
            grad_b = residual.sum()
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ModelError("predict before fit")
        return np.asarray(x, dtype=np.float64) @ self.weights + self.bias

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self.decision_function(x)
        positive = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return np.column_stack([1.0 - positive, positive])
