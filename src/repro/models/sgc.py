"""Simplified Graph Convolution (SGC) — extension model.

The paper's GCN background cites Wu et al., "Simplifying graph
convolutional networks" (ICML 2019): collapse the GCN's K propagation
steps into a single fixed feature transform ``S = A*^K X`` followed by
logistic regression.  SGC sits between the baselines (no structure) and
the full GCN (learned nonlinear propagation), making it the natural
probe for *how much of the GCN's advantage is plain neighborhood
smoothing* — reported in the extension benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.data import GraphData
from repro.graph.split import Split
from repro.models.logistic import LogisticRegression
from repro.utils.errors import ModelError


class SGCClassifier:
    """``softmax(A*^K X W)`` node classifier."""

    name = "SGC"

    def __init__(self, k: int = 3, adjacency_mode: str = "symmetric",
                 self_loops: bool = True, lr: float = 0.1,
                 epochs: int = 500, l2: float = 1e-3):
        if k < 1:
            raise ModelError("SGC needs at least one propagation step")
        self.k = k
        self.adjacency_mode = adjacency_mode
        self.self_loops = self_loops
        self._head = LogisticRegression(lr=lr, epochs=epochs, l2=l2)
        self._data: Optional[GraphData] = None
        self._smoothed: Optional[np.ndarray] = None

    def _propagate(self, data: GraphData) -> np.ndarray:
        a_norm = data.a_norm(self.adjacency_mode, self.self_loops)
        # Each step draws from the design's shared PropagationCache, so
        # the K products are computed once per (data, mode) and shared
        # with the GCN training engine's fast-math first layer.  The
        # result is read-only (cached) — callers must not mutate it.
        cache = data.propagation_cache()
        smoothed = data.x
        for _ in range(self.k):
            smoothed = cache.get(a_norm, smoothed)
        return smoothed

    def fit(self, data: GraphData, split: Split) -> "SGCClassifier":
        """Precompute K-step propagation, fit the logistic head."""
        self._data = data
        self._smoothed = self._propagate(data)
        self._head.fit(self._smoothed[split.train_mask],
                       data.y_class[split.train_mask])
        return self

    def _require_fitted(self) -> np.ndarray:
        if self._smoothed is None:
            raise ModelError("predict before fit")
        return self._smoothed

    def predict_proba(self, data: Optional[GraphData] = None) -> np.ndarray:
        smoothed = (
            self._propagate(data) if data is not None
            else self._require_fitted()
        )
        return self._head.predict_proba(smoothed)

    def predict(self, data: Optional[GraphData] = None) -> np.ndarray:
        return self.predict_proba(data).argmax(axis=1)

    def accuracy(self, mask: np.ndarray,
                 data: Optional[GraphData] = None) -> float:
        """Accuracy over a node mask."""
        reference = data if data is not None else self._data
        predictions = self.predict(data)
        return float(
            (predictions[mask] == reference.y_class[mask]).mean()
        )
